"""Event simulators driving the Reefer application (Section 5).

Order, ship and anomaly simulators run on a dedicated component that the
fault-injection harness never kills (like the paper's simulator node), so
submitted orders are never lost client-side and invariants stay checkable.
"""

from __future__ import annotations

from repro.core import ActorMethodError, Component, actor_proxy
from repro.core.errors import KarError
from repro.reefer.domain import ROUTES, OrderSpec
from repro.reefer.metrics import ReeferMetrics

__all__ = ["AnomalySimulator", "OrderSimulator", "ShipSimulator"]

_ORDER_MANAGER = actor_proxy("OrderManager", "singleton")
_SCHEDULE_MANAGER = actor_proxy("ScheduleManager", "singleton")
_ANOMALY_ROUTER = actor_proxy("AnomalyRouter", "singleton")


class OrderSimulator:
    """Generates client orders at a configurable rate; measures latency."""

    def __init__(
        self,
        component: Component,
        metrics: ReeferMetrics,
        rate: float = 1.0,
        max_quantity: int = 3,
    ):
        self.component = component
        self.metrics = metrics
        self.rate = rate
        self.max_quantity = max_quantity
        self.running = False
        self._sequence = 0

    def start(self) -> None:
        self.running = True
        kernel = self.component.kernel
        kernel.spawn(
            self._generate(), self.component.process, name="order-simulator"
        )

    def stop(self) -> None:
        self.running = False

    async def _generate(self) -> None:
        kernel = self.component.kernel
        while self.running:
            await kernel.sleep(kernel.rng.expovariate(self.rate))
            if not self.running:
                return
            self._sequence += 1
            order_id = f"O-{self._sequence:06d}"
            route = kernel.rng.choice(ROUTES)
            spec = OrderSpec(
                customer=f"customer-{kernel.rng.randrange(100):02d}",
                product="bananas",
                origin=route.origin,
                destination=route.destination,
                quantity=kernel.rng.randint(1, self.max_quantity),
            )
            kernel.spawn(
                self._submit(order_id, spec),
                self.component.process,
                name=f"submit:{order_id}",
            )

    async def _submit(self, order_id: str, spec: OrderSpec) -> None:
        self.metrics.order_submitted(order_id)
        payload = {
            "order_id": order_id,
            "customer": spec.customer,
            "product": spec.product,
            "origin": spec.origin,
            "destination": spec.destination,
            "quantity": spec.quantity,
        }
        try:
            result = await self.component.invoke(
                None, _ORDER_MANAGER, "book", (payload,), True
            )
            self.metrics.order_completed(order_id, result.get("status", "ok"))
        except ActorMethodError as error:
            self.metrics.order_completed(order_id, f"error:{error.message}")
        except KarError:
            self.metrics.order_completed(order_id, "cancelled")


class ShipSimulator:
    """Departs and arrives voyages on schedule; broadcasts positions."""

    def __init__(self, component: Component, metrics: ReeferMetrics,
                 tick: float = 2.0, horizon: float = 90.0):
        self.component = component
        self.metrics = metrics
        self.tick = tick
        self.horizon = horizon
        self.running = False
        self.departed: set[str] = set()
        self.arrived: set[str] = set()

    def start(self) -> None:
        self.running = True
        self.component.kernel.spawn(
            self._drive(), self.component.process, name="ship-simulator"
        )

    def stop(self) -> None:
        self.running = False

    async def _drive(self) -> None:
        kernel = self.component.kernel
        while self.running:
            await kernel.sleep(self.tick)
            if not self.running:
                return
            now = kernel.now
            try:
                plans = await self.component.invoke(
                    None, _SCHEDULE_MANAGER, "schedule_horizon",
                    (now + self.horizon,), True,
                )
            except KarError:
                continue
            for plan in plans:
                voyage_id = plan["voyage_id"]
                voyage = actor_proxy("Voyage", voyage_id)
                try:
                    if plan["departure"] <= now and voyage_id not in self.departed:
                        await self.component.invoke(
                            None, voyage, "depart", (), True
                        )
                        self.departed.add(voyage_id)
                        self.metrics.departures_seen += 1
                    elif (
                        voyage_id in self.departed
                        and voyage_id not in self.arrived
                        and plan["arrival"] > now
                    ):
                        fraction = (now - plan["departure"]) / (
                            plan["arrival"] - plan["departure"]
                        )
                        await self.component.invoke(
                            None, voyage, "position",
                            (round(min(max(fraction, 0.0), 1.0), 3),), True,
                        )
                    if plan["arrival"] <= now and voyage_id not in self.arrived:
                        if voyage_id not in self.departed:
                            await self.component.invoke(
                                None, voyage, "depart", (), True
                            )
                            self.departed.add(voyage_id)
                            self.metrics.departures_seen += 1
                        await self.component.invoke(
                            None, voyage, "arrive", (), True
                        )
                        self.arrived.add(voyage_id)
                        self.metrics.arrivals_seen += 1
                except KarError:
                    continue  # outage window: retry on the next tick


class AnomalySimulator:
    """Injects refrigeration anomalies on random known containers."""

    def __init__(self, component: Component, inventory, rate: float = 0.05):
        self.component = component
        self.inventory = inventory
        self.rate = rate
        self.running = False
        self.injected: list[str] = []

    def start(self) -> None:
        if self.rate <= 0:
            return
        self.running = True
        self.component.kernel.spawn(
            self._inject(), self.component.process, name="anomaly-simulator"
        )

    def stop(self) -> None:
        self.running = False

    async def _inject(self) -> None:
        kernel = self.component.kernel
        client = self.inventory.client(self.component.member_id)
        while self.running:
            await kernel.sleep(kernel.rng.expovariate(self.rate))
            if not self.running:
                return
            locations = await client.hgetall("containers")
            candidates = sorted(
                cid
                for cid, loc in locations.items()
                if tuple(loc) != ("damaged",)
            )
            if not candidates:
                continue
            container = kernel.rng.choice(candidates)
            try:
                await self.component.invoke(
                    None, _ANOMALY_ROUTER, "anomaly", (container,), True
                )
                self.injected.append(container)
            except KarError:
                continue
