"""Domain model: ports, routes, voyages, orders, containers.

Times are simulated seconds. The container *inventory* is an external
stateful service (a plain key-value store the Depot actors interface with
directly -- KAR's separation principle), mapping each container id to its
location:

- ``("depot", port)`` -- available at a port depot;
- ``("order", order_id, voyage_id)`` -- allocated to an order on a voyage;
- ``("damaged",)`` -- out of service after a refrigeration anomaly.

Locations are *assignments*, so re-running an interrupted allocation is
idempotent: a retry first reclaims containers already tagged with its order
id, then allocates the remainder (recovery-conscious code in the style the
paper advocates; see Section 2.3's discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "OrderSpec",
    "OrderState",
    "ROUTES",
    "Route",
    "VoyageState",
    "container_id",
    "voyage_plan",
]


class OrderState:
    """Lifecycle of an order (persisted in the Order actor)."""

    PENDING = "pending"
    BOOKED = "booked"
    INTRANSIT = "in-transit"
    DELIVERED = "delivered"
    SPOILED = "spoiled"

    TERMINAL = (DELIVERED, SPOILED)


class VoyageState:
    SCHEDULED = "scheduled"
    DEPARTED = "departed"
    ARRIVED = "arrived"


@dataclass(frozen=True)
class Route:
    """A shipping lane with a fixed transit time and sailing cadence."""

    origin: str
    destination: str
    transit_seconds: float
    cadence_seconds: float  # departure every this many seconds
    ship_capacity: int  # containers per sailing


#: The simulated shipping network (compact but multi-route, so depots,
#: voyages and anomalies interleave).
ROUTES: tuple[Route, ...] = (
    Route("Elizabeth", "Oakland", 60.0, 30.0, 20),
    Route("Oakland", "Shanghai", 90.0, 45.0, 24),
    Route("Shanghai", "Singapore", 45.0, 30.0, 16),
)

PORTS: tuple[str, ...] = ("Elizabeth", "Oakland", "Shanghai", "Singapore")


@dataclass(frozen=True)
class OrderSpec:
    """A client booking request (route + containers needed)."""

    customer: str
    product: str
    origin: str
    destination: str
    quantity: int  # refrigerated containers required


def container_id(port: str, index: int) -> str:
    return f"C-{port[:3].upper()}-{index:04d}"


def voyage_plan(route: Route, ordinal: int, first_departure: float) -> dict:
    """Deterministic schedule entry for the ``ordinal``-th sailing."""
    departure = first_departure + ordinal * route.cadence_seconds
    return {
        "voyage_id": f"V-{route.origin[:3].upper()}{route.destination[:3].upper()}-{ordinal:04d}",
        "origin": route.origin,
        "destination": route.destination,
        "departure": departure,
        "arrival": departure + route.transit_seconds,
        "capacity": route.ship_capacity,
    }
