"""The Container Shipping ("Reefer") application of Section 5.

A maritime shipping company: clients book orders for temperature-sensitive
goods on scheduled ship voyages; refrigerated containers are allocated from
port depots; ships depart, broadcast positions, and arrive; containers can
suffer refrigeration anomalies triggering business logic that depends on
where the container is.

The core business logic is implemented as KAR actors (Figure 5a): ``Order``,
``Voyage``, ``Depot``, the ``AnomalyRouter`` singleton and the
``OrderManager`` / ``VoyageManager`` / ``DepotManager`` / ``ScheduleManager``
singletons. Order booking follows Figure 6: a tail-call chain spanning five
actor types with one synchronous reentrant sub-orchestration (notifying the
WebAPI) and one asynchronous tell (updating the ScheduleManager).

Simulators (order / ship / anomaly) drive the application from a component
that the fault-injection harness never kills, so application-level
invariants (no lost orders, conservation of containers, schedule adherence)
remain checkable across failures.
"""

from repro.reefer.app import ReeferApplication, ReeferConfig
from repro.reefer.domain import OrderSpec, OrderState, VoyageState
from repro.reefer.invariants import InvariantViolation, check_invariants
from repro.reefer.metrics import ReeferMetrics

__all__ = [
    "InvariantViolation",
    "OrderSpec",
    "OrderState",
    "ReeferApplication",
    "ReeferConfig",
    "ReeferMetrics",
    "VoyageState",
    "check_invariants",
]
