"""The AnomalyRouter singleton: routes refrigeration anomalies.

Maintains a container-location map (fed by tells from the depots) so an
anomaly event can be routed to the right party: the voyage carrying the
container (cargo spoils) or the depot holding it (unit to maintenance).
"""

from __future__ import annotations

from repro.core import Actor, actor_proxy

__all__ = ["AnomalyRouter"]


class AnomalyRouter(Actor):
    async def containers_assigned(self, ctx, containers: list,
                                  voyage_id: str, order_id: str):
        table = dict(await ctx.state.get("where", {}))
        for container in containers:
            table[container] = ("voyage", voyage_id, order_id)
        await ctx.state.set("where", table)

    async def containers_at_depot(self, ctx, containers: list, port: str):
        table = dict(await ctx.state.get("where", {}))
        for container in containers:
            table[container] = ("depot", port)
        await ctx.state.set("where", table)

    async def container_damaged(self, ctx, container: str):
        table = dict(await ctx.state.get("where", {}))
        table[container] = ("damaged",)
        await ctx.state.set("where", table)

    async def anomaly(self, ctx, container: str):
        """Route one anomaly event based on the container's last location."""
        table = await ctx.state.get("where", {})
        location = table.get(container)
        if location is None:
            return "unknown"
        location = tuple(location)
        if location[0] == "voyage":
            _tag, voyage_id, order_id = location
            return await ctx.call(
                actor_proxy("Voyage", voyage_id),
                "reefer_anomaly",
                container,
                order_id,
            )
        if location[0] == "depot":
            return await ctx.call(
                actor_proxy("Depot", location[1]), "reefer_anomaly", container
            )
        return "already-damaged"

    async def locations(self, ctx):
        return await ctx.state.get("where", {})
