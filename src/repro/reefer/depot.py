"""The Depot actor: container inventory management for one port.

Depots interface *directly* with the external inventory service (KAR's
separation principle: no common transactional store). Allocation is written
to recover cleanly: container locations are assignments keyed by order id,
so a retried allocation first reclaims containers it already tagged, then
allocates the remainder -- no container is leaked or double-booked across
failures. The inventory service is fenced for failed components, so a
lingering write from a dead depot cannot land (Section 2.3).
"""

from __future__ import annotations

from repro.core import Actor, actor_proxy

__all__ = ["Depot", "INVENTORY_KEY"]

from repro.reefer.managers import SERVICES

INVENTORY_KEY = "containers"


class Depot(Actor):
    """Instance id = port name."""

    def _inventory(self, ctx):
        return ctx.external(SERVICES["inventory"])

    async def reserve_containers(self, ctx, order_id: str, voyage_id: str,
                                 quantity: int):
        """Allocate ``quantity`` containers to the order (shaded box in
        Figure 6: an external state update isolated in one tail-call link)."""
        inventory = self._inventory(ctx)
        port = ctx.self_ref.id
        locations = await inventory.hgetall(INVENTORY_KEY)
        mine = ("order", order_id, voyage_id)
        allocated = sorted(
            cid for cid, loc in locations.items() if tuple(loc) == mine
        )
        available = sorted(
            cid
            for cid, loc in locations.items()
            if tuple(loc) == ("depot", port)
        )
        needed = quantity - len(allocated)
        if needed > len(available):
            # Release anything reclaimed, then reject *through the voyage*
            # so its capacity reservation is released and the order leaves
            # the manifest (idempotent: a retry re-runs the same writes).
            for cid in allocated:
                await inventory.hset(INVENTORY_KEY, cid, ("depot", port))
            return ctx.tail_call(
                actor_proxy("Voyage", voyage_id),
                "release_reservation",
                order_id,
                f"not enough containers at {port}",
            )
        chosen = allocated + available[: max(needed, 0)]
        for cid in chosen:
            await inventory.hset(INVENTORY_KEY, cid, mine)
        await ctx.tell(
            actor_proxy("AnomalyRouter", "singleton"),
            "containers_assigned",
            chosen,
            voyage_id,
            order_id,
        )
        await ctx.tell(
            actor_proxy("DepotManager", "singleton"),
            "containers_moved",
            port,
            len(chosen),
            "allocated",
        )
        return ctx.tail_call(
            actor_proxy("Order", order_id), "booked", voyage_id, chosen
        )

    async def receive_containers(self, ctx, voyage_id: str, order_ids: list):
        """Arrival: containers of the voyage's orders land at this depot."""
        inventory = self._inventory(ctx)
        port = ctx.self_ref.id
        locations = await inventory.hgetall(INVENTORY_KEY)
        landed = []
        for cid, loc in sorted(locations.items()):
            loc = tuple(loc)
            if len(loc) == 3 and loc[0] == "order" and loc[2] == voyage_id:
                await inventory.hset(INVENTORY_KEY, cid, ("depot", port))
                landed.append(cid)
        if landed:
            await ctx.tell(
                actor_proxy("AnomalyRouter", "singleton"),
                "containers_at_depot",
                landed,
                port,
            )
            await ctx.tell(
                actor_proxy("DepotManager", "singleton"),
                "containers_moved",
                port,
                len(landed),
                "received",
            )
        return {"voyage_id": voyage_id, "landed": len(landed)}

    async def reefer_anomaly(self, ctx, container: str):
        """A refrigeration failure in the yard: the unit goes to
        maintenance (removed from the available pool)."""
        inventory = self._inventory(ctx)
        port = ctx.self_ref.id
        location = await inventory.hget(INVENTORY_KEY, container)
        if location is None or tuple(location) != ("depot", port):
            return "not-here"
        await inventory.hset(INVENTORY_KEY, container, ("damaged",))
        await ctx.tell(
            actor_proxy("AnomalyRouter", "singleton"),
            "container_damaged",
            container,
        )
        await ctx.tell(
            actor_proxy("DepotManager", "singleton"),
            "container_damaged",
            container,
            port,
        )
        return "damaged"

    async def available(self, ctx):
        inventory = self._inventory(ctx)
        port = ctx.self_ref.id
        locations = await inventory.hgetall(INVENTORY_KEY)
        return sorted(
            cid
            for cid, loc in locations.items()
            if tuple(loc) == ("depot", port)
        )
