"""Application-level metrics: order latencies and lifecycle accounting.

Feeds Figure 7b (maximum order latency around failures) and the no-lost-
orders invariant of Section 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim import Kernel

__all__ = ["OrderRecord", "ReeferMetrics"]


@dataclass
class OrderRecord:
    order_id: str
    submitted_at: float
    completed_at: float | None = None
    status: str | None = None

    @property
    def latency(self) -> float | None:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


@dataclass
class ReeferMetrics:
    kernel: Kernel
    orders: dict[str, OrderRecord] = field(default_factory=dict)
    departures_seen: int = 0
    arrivals_seen: int = 0

    # ------------------------------------------------------------------
    def order_submitted(self, order_id: str) -> None:
        self.orders[order_id] = OrderRecord(order_id, self.kernel.now)

    def order_completed(self, order_id: str, status: str) -> None:
        record = self.orders.get(order_id)
        if record is None:  # pragma: no cover - submit always precedes
            record = OrderRecord(order_id, self.kernel.now)
            self.orders[order_id] = record
        record.completed_at = self.kernel.now
        record.status = status

    # ------------------------------------------------------------------
    @property
    def submitted(self) -> list[str]:
        return sorted(self.orders)

    @property
    def completed(self) -> list[OrderRecord]:
        return [r for r in self.orders.values() if r.completed_at is not None]

    @property
    def in_flight(self) -> list[str]:
        return sorted(
            order_id
            for order_id, record in self.orders.items()
            if record.completed_at is None
        )

    def latencies(self) -> list[float]:
        return [record.latency for record in self.completed]

    def max_latency_in_window(self, start: float, end: float) -> float | None:
        """Maximum booking latency among orders whose lifetime intersects
        the window -- the per-failure series of Figure 7b."""
        worst = None
        for record in self.completed:
            if record.submitted_at <= end and record.completed_at >= start:
                latency = record.latency
                if worst is None or latency > worst:
                    worst = latency
        return worst

    def summary(self) -> dict:
        latencies = sorted(self.latencies())
        if not latencies:
            return {"count": 0}
        mid = len(latencies) // 2
        return {
            "count": len(latencies),
            "in_flight": len(self.in_flight),
            "median_latency": latencies[mid],
            "max_latency": latencies[-1],
            "mean_latency": sum(latencies) / len(latencies),
        }
