"""The Order actor: one instance per client order (Figure 6's hub).

``create`` -> (sync call to ScheduleManager.find_voyage) -> tail call to
Voyage.reserve; the chain later re-enters this actor at ``booked``, which
runs the reentrant sub-orchestration (synchronous call back up through
OrderManager to the WebAPI), fires the asynchronous schedule update, and
tail-calls the final OrderManager step whose return value answers the
original client request.
"""

from __future__ import annotations

from repro.core import Actor, actor_proxy
from repro.reefer.domain import OrderState

__all__ = ["Order"]


class Order(Actor):
    async def activate(self, ctx):
        self.status = await ctx.state.get("status")

    # ------------------------------------------------------------------
    # the booking chain
    # ------------------------------------------------------------------
    async def create(self, ctx, spec: dict):
        """Persist the order, pick a voyage, continue the tail chain."""
        await ctx.state.set_multiple(
            {
                "status": OrderState.PENDING,
                "spec": spec,
            }
        )
        self.status = OrderState.PENDING
        plan = await ctx.call(
            actor_proxy("ScheduleManager", "singleton"),
            "find_voyage",
            spec["origin"],
            spec["destination"],
            spec["quantity"],
            ctx.now,
        )
        return ctx.tail_call(
            actor_proxy("Voyage", plan["voyage_id"]),
            "reserve",
            spec["order_id"],
            spec["quantity"],
            plan,
        )

    async def booked(self, ctx, voyage_id: str, containers: list):
        """Containers are allocated: record, notify, finish the chain.

        The synchronous ``order_accepted`` call is the reentrant
        sub-orchestration of Figure 6; the ScheduleManager update is the
        asynchronous tell; the tail call produces the client's answer.
        """
        spec = await ctx.state.get("spec", {})
        await ctx.state.set_multiple(
            {
                "status": OrderState.BOOKED,
                "voyage_id": voyage_id,
                "containers": list(containers),
            }
        )
        self.status = OrderState.BOOKED
        await ctx.call(
            actor_proxy("OrderManager", "singleton"),
            "order_accepted",
            spec.get("order_id", ctx.self_ref.id),
        )
        await ctx.tell(
            actor_proxy("ScheduleManager", "singleton"),
            "voyage_booked",
            voyage_id,
            len(containers),
            ctx.self_ref.id,
        )
        return ctx.tail_call(
            actor_proxy("OrderManager", "singleton"),
            "order_booked",
            ctx.self_ref.id,
            voyage_id,
            list(containers),
        )

    async def rejected(self, ctx, reason: str):
        """No capacity / no containers: terminal rejection."""
        await ctx.state.set("status", "rejected")
        self.status = "rejected"
        return ctx.tail_call(
            actor_proxy("OrderManager", "singleton"),
            "order_rejected",
            ctx.self_ref.id,
            reason,
        )

    # ------------------------------------------------------------------
    # lifecycle events from the Voyage actor
    # ------------------------------------------------------------------
    async def departed(self, ctx):
        if self.status in (*OrderState.TERMINAL, "rejected"):
            return
        await ctx.state.set("status", OrderState.INTRANSIT)
        self.status = OrderState.INTRANSIT
        await ctx.tell(
            actor_proxy("OrderManager", "singleton"),
            "order_departed",
            ctx.self_ref.id,
        )

    async def delivered(self, ctx):
        if self.status in (OrderState.SPOILED, "rejected"):
            return  # spoiled or rejected cargo is not delivered
        await ctx.state.set("status", OrderState.DELIVERED)
        self.status = OrderState.DELIVERED
        # The paper removes order state upon arrival at the destination
        # port (Section 5); the manager keeps the record of existence.
        await ctx.state.remove("spec")
        return ctx.tail_call(
            actor_proxy("OrderManager", "singleton"),
            "order_delivered",
            ctx.self_ref.id,
        )

    async def spoiled(self, ctx):
        if self.status in (OrderState.DELIVERED, "rejected"):
            return
        await ctx.state.set("status", OrderState.SPOILED)
        self.status = OrderState.SPOILED
        await ctx.tell(
            actor_proxy("OrderManager", "singleton"),
            "order_spoiled",
            ctx.self_ref.id,
        )

    async def describe(self, ctx):
        return await ctx.state.get_all()
