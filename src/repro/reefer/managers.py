"""Singleton manager actors: OrderManager, ScheduleManager, VoyageManager,
DepotManager.

Every method is written to be *retry-safe*: state transitions are keyed by
stable ids (order / voyage ids supplied by the caller), so re-executing an
interrupted method converges instead of duplicating effects -- the
recovery-conscious discipline the paper's programming model enables.
"""

from __future__ import annotations

from repro.core import Actor, actor_proxy
from repro.reefer.domain import ROUTES, OrderState, voyage_plan

__all__ = ["DepotManager", "OrderManager", "ScheduleManager", "VoyageManager"]

#: External services are injected at application assembly time.
SERVICES: dict = {}


class OrderManager(Actor):
    """Tracks every order's lifecycle; entry point of the booking workflow
    (Figure 6): ``book`` tail-calls into the Order actor's chain."""

    async def book(self, ctx, spec: dict):
        """Root of the Figure 6 workflow. ``spec`` carries a client-chosen
        ``order_id`` so retries of ``book`` are idempotent."""
        order_id = spec["order_id"]
        await ctx.state.set(order_id, OrderState.PENDING)
        return ctx.tail_call(
            actor_proxy("Order", order_id), "create", spec
        )

    async def order_accepted(self, ctx, order_id: str):
        """The reentrant sub-orchestration target: called synchronously by
        Order.booked while the chain holds the order's stack; notifies the
        WebAPI (an external state update -- a shaded box in Figure 6)."""
        webapi = ctx.external(SERVICES["webapi"])
        await webapi.post("order-accepted", {"order_id": order_id})
        return "accepted"

    async def order_booked(self, ctx, order_id: str, voyage_id: str,
                           containers: list):
        await self._transition(ctx, order_id, OrderState.BOOKED)
        return {
            "order_id": order_id,
            "voyage_id": voyage_id,
            "containers": list(containers),
            "status": OrderState.BOOKED,
        }

    async def order_departed(self, ctx, order_id: str):
        await self._transition(ctx, order_id, OrderState.INTRANSIT)

    async def order_delivered(self, ctx, order_id: str):
        await self._transition(ctx, order_id, OrderState.DELIVERED)
        return {"order_id": order_id, "status": OrderState.DELIVERED}

    async def order_spoiled(self, ctx, order_id: str):
        await self._transition(ctx, order_id, OrderState.SPOILED)

    async def order_rejected(self, ctx, order_id: str, reason: str):
        await self._transition(ctx, order_id, "rejected")
        return {"order_id": order_id, "status": "rejected", "reason": reason}

    async def _transition(self, ctx, order_id: str, status: str) -> None:
        """Record a transition, flagging illegal terminal->terminal moves
        (the invariant checker reads the violation log)."""
        current = await ctx.state.get(order_id)
        terminal = (*OrderState.TERMINAL, "rejected")
        if current in terminal and status != current:
            violations = await ctx.state.get("_violations", [])
            violations = list(violations) + [
                {"order_id": order_id, "from": current, "to": status}
            ]
            await ctx.state.set("_violations", violations)
            return
        await ctx.state.set(order_id, status)

    async def statuses(self, ctx):
        everything = await ctx.state.get_all()
        return {
            key: value
            for key, value in everything.items()
            if not key.startswith("_")
        }

    async def violations(self, ctx):
        return await ctx.state.get("_violations", [])


class ScheduleManager(Actor):
    """Owns the sailing schedule: deterministic voyage plans per route."""

    FIRST_DEPARTURE = 20.0  # seconds after simulation start

    async def find_voyage(self, ctx, origin: str, destination: str,
                          quantity: int, after: float):
        """Earliest plan on the route departing after ``after`` with spare
        capacity (as last told to us); extends the schedule as needed.
        Retries may legitimately pick a later voyage -- decisions are
        allowed to differ across attempts (Section 1)."""
        route = _route(origin, destination)
        if route is None:
            raise ValueError(f"no route {origin} -> {destination}")
        booked = await ctx.state.get("booked", {})
        count = await ctx.state.get(f"count:{origin}:{destination}", 0)
        ordinal = 0
        while True:
            if ordinal >= count:
                count = ordinal + 1
                await ctx.state.set(f"count:{origin}:{destination}", count)
            plan = voyage_plan(route, ordinal, self.FIRST_DEPARTURE)
            if plan["departure"] > after and (
                booked.get(plan["voyage_id"], 0) + quantity <= plan["capacity"]
            ):
                return plan
            ordinal += 1
            if ordinal > 10_000:  # pragma: no cover - runaway guard
                raise RuntimeError("schedule exhausted")

    async def voyage_booked(self, ctx, voyage_id: str, quantity: int,
                            order_id: str):
        """Async stats update (the dotted tell in Figure 6). Keyed by order
        id so re-delivered updates stay idempotent."""
        seen = await ctx.state.get("seen", {})
        if order_id in seen:
            return
        seen = dict(seen)
        seen[order_id] = voyage_id
        booked = dict(await ctx.state.get("booked", {}))
        booked[voyage_id] = booked.get(voyage_id, 0) + quantity
        await ctx.state.set("booked", booked)
        await ctx.state.set("seen", seen)

    async def schedule_horizon(self, ctx, until: float):
        """All plans departing up to ``until`` (drives the ship simulator)."""
        plans = []
        for route in ROUTES:
            ordinal = 0
            while True:
                plan = voyage_plan(route, ordinal, self.FIRST_DEPARTURE)
                if plan["departure"] > until:
                    break
                plans.append(plan)
                ordinal += 1
        key = "count:{}:{}"
        for route in ROUTES:
            horizon_count = max(
                0, int((until - self.FIRST_DEPARTURE) // route.cadence_seconds) + 1
            )
            existing = await ctx.state.get(
                key.format(route.origin, route.destination), 0
            )
            if horizon_count > existing:
                await ctx.state.set(
                    key.format(route.origin, route.destination), horizon_count
                )
        return plans


class VoyageManager(Actor):
    """Global voyage statistics (departures, arrivals, positions)."""

    async def voyage_departed(self, ctx, voyage_id: str, when: float):
        departed = dict(await ctx.state.get("departed", {}))
        departed.setdefault(voyage_id, when)
        await ctx.state.set("departed", departed)

    async def voyage_arrived(self, ctx, voyage_id: str, when: float):
        arrived = dict(await ctx.state.get("arrived", {}))
        arrived.setdefault(voyage_id, when)
        await ctx.state.set("arrived", arrived)

    async def position(self, ctx, voyage_id: str, fraction: float):
        positions = dict(await ctx.state.get("positions", {}))
        positions[voyage_id] = fraction
        await ctx.state.set("positions", positions)

    async def stats(self, ctx):
        return {
            "departed": await ctx.state.get("departed", {}),
            "arrived": await ctx.state.get("arrived", {}),
            "positions": await ctx.state.get("positions", {}),
        }


class DepotManager(Actor):
    """Global container statistics (allocations, returns, damage)."""

    async def containers_moved(self, ctx, port: str, count: int, kind: str):
        moves = dict(await ctx.state.get("moves", {}))
        key = f"{port}:{kind}"
        moves[key] = moves.get(key, 0) + count
        await ctx.state.set("moves", moves)

    async def container_damaged(self, ctx, container: str, port: str):
        damaged = dict(await ctx.state.get("damaged", {}))
        damaged.setdefault(container, port)
        await ctx.state.set("damaged", damaged)

    async def stats(self, ctx):
        return {
            "moves": await ctx.state.get("moves", {}),
            "damaged": await ctx.state.get("damaged", {}),
        }


def _route(origin: str, destination: str):
    for route in ROUTES:
        if route.origin == origin and route.destination == destination:
            return route
    return None
