"""Assembly of the Reefer application on the KAR runtime.

Reproduces the deployment of Figure 5b: Order / Voyage / Depot actors on a
replicated "actors" server, the singleton actors on a replicated
"singletons" server, plus a WebAPI component and a simulator component. The
fault-injection harness kills "victim" components (actors/singletons
replicas) and never the simulators, exactly like the paper's victim nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import KarApplication, KarConfig, actor_proxy
from repro.kvstore import KVStore
from repro.reefer.anomaly import AnomalyRouter
from repro.reefer.depot import INVENTORY_KEY, Depot
from repro.reefer.domain import PORTS, container_id
from repro.reefer.managers import (
    SERVICES,
    DepotManager,
    OrderManager,
    ScheduleManager,
    VoyageManager,
)
from repro.reefer.metrics import ReeferMetrics
from repro.reefer.order import Order
from repro.reefer.simulators import (
    AnomalySimulator,
    OrderSimulator,
    ShipSimulator,
)
from repro.reefer.voyage import Voyage
from repro.reefer.webapi import WebAPIService
from repro.sim import Kernel, Latency

__all__ = ["ReeferApplication", "ReeferConfig"]

ACTOR_TYPES = ("Order", "Voyage", "Depot")
SINGLETON_TYPES = (
    "OrderManager",
    "ScheduleManager",
    "VoyageManager",
    "DepotManager",
    "AnomalyRouter",
)


@dataclass(frozen=True)
class ReeferConfig:
    """Workload knobs (the BrowserUI sliders of Section 5)."""

    order_rate: float = 1.0  # orders per simulated second
    anomaly_rate: float = 0.05  # anomalies per simulated second
    containers_per_depot: int = 80
    max_order_quantity: int = 3
    ship_tick: float = 2.0
    replicas: int = 2  # replicas of each victim component kind


class ReeferApplication:
    """The full application: infrastructure, actors, simulators, metrics."""

    def __init__(
        self,
        kernel: Kernel,
        kar_config: KarConfig | None = None,
        config: ReeferConfig | None = None,
    ):
        self.kernel = kernel
        self.config = config or ReeferConfig()
        self.app = KarApplication(kernel, kar_config, name="reefer")
        self.metrics = ReeferMetrics(kernel)

        for actor_class in (
            Order, Voyage, Depot, OrderManager, ScheduleManager,
            VoyageManager, DepotManager, AnomalyRouter,
        ):
            self.app.register_actor(actor_class)

        # External services (fenced on component failure).
        self.webapi = self.app.register_external_service(
            WebAPIService(kernel)
        )
        self.inventory = self.app.register_external_service(
            KVStore(kernel, Latency.fixed(0.0005))
        )
        SERVICES["webapi"] = self.webapi
        SERVICES["inventory"] = self.inventory

        self.total_containers = 0
        self._seed_inventory()

        # Victim components (Figure 5b's replicated servers).
        self.victims: list[str] = []
        for index in range(self.config.replicas):
            name = f"actors-{index}"
            self.app.add_component(name, ACTOR_TYPES)
            self.victims.append(name)
        for index in range(self.config.replicas):
            name = f"singletons-{index}"
            self.app.add_component(name, SINGLETON_TYPES)
            self.victims.append(name)

        # The simulator component is never killed (Section 6.1).
        self.simulator_component = self.app.add_component("simulators")
        self.order_simulator = OrderSimulator(
            self.simulator_component,
            self.metrics,
            rate=self.config.order_rate,
            max_quantity=self.config.max_order_quantity,
        )
        self.ship_simulator = ShipSimulator(
            self.simulator_component, self.metrics, tick=self.config.ship_tick
        )
        self.anomaly_simulator = AnomalySimulator(
            self.simulator_component, self.inventory,
            rate=self.config.anomaly_rate,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _seed_inventory(self) -> None:
        for port in PORTS:
            for index in range(self.config.containers_per_depot):
                cid = container_id(port, index)
                self.inventory._hset(INVENTORY_KEY, cid, ("depot", port))
                self.total_containers += 1

    def start(self) -> "ReeferApplication":
        self.app.settle()
        self.order_simulator.start()
        self.ship_simulator.start()
        self.anomaly_simulator.start()
        return self

    def run_for(self, seconds: float) -> None:
        self.kernel.run(until=self.kernel.now + seconds)

    def gateway(self, host: str = "127.0.0.1", port: int = 0, **kwargs):
        """The HTTP serving edge for this deployment (Figure 5a's WebAPI)."""
        from repro.reefer.webapi import ReeferWebAPI

        return ReeferWebAPI(self, host=host, port=port, **kwargs)

    def stop_workload(self) -> None:
        self.order_simulator.stop()
        self.anomaly_simulator.stop()

    def drain(self, max_wait: float = 300.0, idle_for: float = 10.0) -> bool:
        """Stop generating orders, then run until in-flight work settles."""
        self.stop_workload()
        deadline = self.kernel.now + max_wait
        while self.kernel.now < deadline:
            if not self.metrics.in_flight and not self.app.coordinator.paused:
                self.kernel.run(until=self.kernel.now + idle_for)
                if not self.metrics.in_flight:
                    return True
            self.kernel.run(until=self.kernel.now + 2.0)
        return not self.metrics.in_flight

    # ------------------------------------------------------------------
    # failure injection (the harness drives these)
    # ------------------------------------------------------------------
    def kill(self, component_name: str) -> None:
        self.app.kill_component(component_name)

    def restart(self, component_name: str) -> None:
        self.app.restart_component(component_name)

    # ------------------------------------------------------------------
    # ground-truth accessors for the invariant checker
    # ------------------------------------------------------------------
    def order_statuses(self) -> dict:
        return self._call_singleton("OrderManager", "statuses")

    def order_violations(self) -> list:
        return self._call_singleton("OrderManager", "violations")

    def voyage_stats(self) -> dict:
        return self._call_singleton("VoyageManager", "stats")

    def depot_stats(self) -> dict:
        return self._call_singleton("DepotManager", "stats")

    def container_locations(self) -> dict:
        return dict(self.inventory._hgetall(INVENTORY_KEY))

    def _call_singleton(self, actor_type: str, method: str):
        component = self.simulator_component
        task = self.kernel.spawn(
            component.invoke(
                None, actor_proxy(actor_type, "singleton"), method, (), True
            ),
            component.process,
            name=f"inspect:{actor_type}.{method}",
        )
        return self.kernel.run_until_complete(task, timeout=600.0)
