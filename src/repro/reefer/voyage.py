"""The Voyage actor: one instance per scheduled sailing.

Reservation is idempotent by order id (a retried ``reserve`` never
double-books capacity); departure and arrival are idempotent by state.
"""

from __future__ import annotations

from repro.core import Actor, actor_proxy
from repro.reefer.domain import VoyageState

__all__ = ["Voyage"]


class Voyage(Actor):
    async def activate(self, ctx):
        self.plan = await ctx.state.get("plan")
        self.state = await ctx.state.get("state", VoyageState.SCHEDULED)

    async def reserve(self, ctx, order_id: str, quantity: int, plan: dict):
        """Reserve capacity for an order; continue to the origin depot."""
        if self.plan is None:
            await ctx.state.set("plan", plan)
            self.plan = plan
        orders = dict(await ctx.state.get("orders", {}))
        if order_id not in orders:
            used = sum(orders.values())
            if used + quantity > self.plan["capacity"]:
                return ctx.tail_call(
                    actor_proxy("Order", order_id),
                    "rejected",
                    f"voyage {ctx.self_ref.id} full",
                )
            orders[order_id] = quantity
            await ctx.state.set("orders", orders)
        return ctx.tail_call(
            actor_proxy("Depot", self.plan["origin"]),
            "reserve_containers",
            order_id,
            ctx.self_ref.id,
            quantity,
        )

    async def release_reservation(self, ctx, order_id: str, reason: str):
        """Undo a reservation whose container allocation failed: the order
        must leave the manifest before it is rejected, or arrival would
        "deliver" cargo that never shipped."""
        orders = dict(await ctx.state.get("orders", {}))
        if order_id in orders:
            del orders[order_id]
            await ctx.state.set("orders", orders)
        return ctx.tail_call(
            actor_proxy("Order", order_id), "rejected", reason
        )

    async def depart(self, ctx):
        """Idempotent against both redelivery and *partial* execution: a
        retry interrupted between the state write and the notifications
        must finish notifying. Receivers are idempotent, so the method
        re-tells until the completion flag (written last) is set."""
        if self.state == VoyageState.ARRIVED:
            return self.state
        if not await ctx.state.get("depart_done", False):
            orders = await ctx.state.get("orders", {})
            for order_id in sorted(orders):
                await ctx.tell(actor_proxy("Order", order_id), "departed")
            await ctx.tell(
                actor_proxy("VoyageManager", "singleton"),
                "voyage_departed",
                ctx.self_ref.id,
                ctx.now,
            )
            await ctx.state.set("state", VoyageState.DEPARTED)
            self.state = VoyageState.DEPARTED
            await ctx.state.set("depart_done", True)
        return VoyageState.DEPARTED

    async def position(self, ctx, fraction: float):
        """Periodic in-transit position broadcast."""
        await ctx.state.set("position", fraction)
        await ctx.tell(
            actor_proxy("VoyageManager", "singleton"),
            "position",
            ctx.self_ref.id,
            fraction,
        )

    async def arrive(self, ctx):
        """Same partial-execution discipline as ``depart``; the final tail
        call to the destination depot re-runs harmlessly (a second
        ``receive_containers`` finds nothing left to move)."""
        if self.state == VoyageState.SCHEDULED:
            return self.state  # cannot arrive before departing
        orders = await ctx.state.get("orders", {})
        if not await ctx.state.get("arrive_done", False):
            for order_id in sorted(orders):
                await ctx.tell(actor_proxy("Order", order_id), "delivered")
            await ctx.tell(
                actor_proxy("VoyageManager", "singleton"),
                "voyage_arrived",
                ctx.self_ref.id,
                ctx.now,
            )
            await ctx.state.set("state", VoyageState.ARRIVED)
            self.state = VoyageState.ARRIVED
            await ctx.state.set("arrive_done", True)
        if not self.plan:
            return VoyageState.ARRIVED
        return ctx.tail_call(
            actor_proxy("Depot", self.plan["destination"]),
            "receive_containers",
            ctx.self_ref.id,
            sorted(orders),
        )

    async def reefer_anomaly(self, ctx, container: str, order_id: str):
        """A container failed at sea: the order's cargo spoils."""
        orders = await ctx.state.get("orders", {})
        if order_id not in orders:
            return "unknown-order"
        await ctx.tell(actor_proxy("Order", order_id), "spoiled")
        return "spoiled"

    async def describe(self, ctx):
        return {
            "state": self.state,
            "plan": self.plan,
            "orders": await ctx.state.get("orders", {}),
            "position": await ctx.state.get("position"),
        }
