"""The WebAPI: a stateless external service receiving actor notifications.

In the paper's architecture (Figure 5a) the WebAPI pushes order updates to
the browser UI. Here it is an external stateful-interface service (it
records notifications) with *forceful disconnection*: a fenced component's
late notifications are refused, exercising the requirement of Section 2.3
for every service KAR components interact with.
"""

from __future__ import annotations

from typing import Any

from repro.kvstore.errors import FencedClientError
from repro.sim import Kernel, Latency

__all__ = ["WebAPIService"]


class WebAPIService:
    """Notification sink with per-client fencing and latency."""

    def __init__(self, kernel: Kernel, latency: Latency = Latency.fixed(0.0005)):
        self.kernel = kernel
        self.latency = latency
        self.notifications: list[tuple[float, str, Any]] = []
        self._fenced: set[str] = set()

    def fence(self, client_id: str) -> None:
        self._fenced.add(client_id)

    def unfence(self, client_id: str) -> None:
        self._fenced.discard(client_id)

    def client(self, client_id: str) -> "WebAPIClient":
        return WebAPIClient(self, client_id)

    def events(self, kind: str) -> list[Any]:
        return [payload for _t, k, payload in self.notifications if k == kind]


class WebAPIClient:
    def __init__(self, service: WebAPIService, client_id: str):
        self.service = service
        self.client_id = client_id

    async def post(self, kind: str, payload: Any) -> None:
        await self.service.kernel.sleep(
            self.service.latency.sample(self.service.kernel.rng)
        )
        if self.client_id in self.service._fenced:
            raise FencedClientError(self.client_id)
        self.service.notifications.append(
            (self.service.kernel.now, kind, payload)
        )
