"""The WebAPI: the reefer demo's browser-facing edge.

In the paper's architecture (Figure 5a) the WebAPI pushes order updates to
the browser UI. Two halves live here:

- :class:`WebAPIService` -- the in-simulation notification sink the actors
  post to, with *forceful disconnection*: a fenced component's late
  notifications are refused, exercising the requirement of Section 2.3 for
  every service KAR components interact with.
- :class:`ReeferWebAPI` -- the real HTTP face: a
  :class:`~repro.net.gateway.KarGateway` over the reefer application, so
  external clients reach the managers through the ordinary sidecar routes
  (``POST /actor/OrderManager/singleton/call/statuses`` and friends) plus
  two read-only reefer views over the recorded notification stream and the
  order metrics (``GET /reefer/notifications``, ``GET /reefer/orders``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Awaitable, Callable

from repro.kvstore.errors import FencedClientError
from repro.net.gateway import KarGateway, _Reply, _Request
from repro.sim import Kernel, Latency

if TYPE_CHECKING:
    from repro.reefer.app import ReeferApplication

__all__ = ["ReeferWebAPI", "WebAPIService"]


class WebAPIService:
    """Notification sink with per-client fencing and latency."""

    def __init__(self, kernel: Kernel, latency: Latency = Latency.fixed(0.0005)):
        self.kernel = kernel
        self.latency = latency
        self.notifications: list[tuple[float, str, Any]] = []
        self._fenced: set[str] = set()

    def fence(self, client_id: str) -> None:
        self._fenced.add(client_id)

    def unfence(self, client_id: str) -> None:
        self._fenced.discard(client_id)

    def client(self, client_id: str) -> "WebAPIClient":
        return WebAPIClient(self, client_id)

    def events(self, kind: str) -> list[Any]:
        return [payload for _t, k, payload in self.notifications if k == kind]


class WebAPIClient:
    def __init__(self, service: WebAPIService, client_id: str):
        self.service = service
        self.client_id = client_id

    async def post(self, kind: str, payload: Any) -> None:
        await self.service.kernel.sleep(
            self.service.latency.sample(self.service.kernel.rng)
        )
        if self.client_id in self.service._fenced:
            raise FencedClientError(self.client_id)
        self.service.notifications.append(
            (self.service.kernel.now, kind, payload)
        )


class ReeferWebAPI(KarGateway):
    """The reefer demo served over the sidecar gateway.

    Adds two read-only routes on top of the standard surface::

        GET /reefer/notifications[?kind=K&limit=N]  -> the WebAPI stream
        GET /reefer/orders                          -> order metrics summary

    Actor-facing traffic (order status, voyage/depot stats) uses the plain
    sidecar routes against the singleton manager actors.
    """

    def __init__(self, reefer: "ReeferApplication", **kwargs: Any):
        super().__init__(reefer.app, **kwargs)
        self.reefer = reefer

    def _match(
        self, request: _Request
    ) -> tuple[str, str | None, str | None, Callable[[], Awaitable[_Reply]]] | None:
        matched = super()._match(request)
        if matched is not None:
            return matched
        parts = [part for part in request.path.split("/") if part]
        if request.method != "GET" or not parts or parts[0] != "reefer":
            return None
        if parts[1:] == ["notifications"]:
            return (
                "GET /reefer/notifications",
                None,
                None,
                lambda: self._do_notifications(request),
            )
        if parts[1:] == ["orders"]:
            return "GET /reefer/orders", None, None, self._do_orders
        return None

    @staticmethod
    def _query(request: _Request) -> dict[str, str]:
        params: dict[str, str] = {}
        for pair in request.query.split("&"):
            name, sep, value = pair.partition("=")
            if sep:
                params[name] = value
        return params

    async def _do_notifications(self, request: _Request) -> _Reply:
        params = self._query(request)
        kind = params.get("kind")
        try:
            limit = int(params.get("limit", "100"))
        except ValueError:
            limit = 100
        webapi = self.reefer.webapi
        rows = [
            {"at": at, "kind": k, "payload": payload}
            for at, k, payload in webapi.notifications
            if kind is None or k == kind
        ]
        return _Reply(
            200, {"total": len(rows), "notifications": rows[-limit:]}
        )

    async def _do_orders(self) -> _Reply:
        metrics = self.reefer.metrics
        return _Reply(200, metrics.summary())
