"""Application-level invariants checked across fault injection (Section 6.1).

The paper validates that across 1,000 node failures: submitted orders are
never lost; ships arrive and depart as scheduled carrying their expected
cargo; ships and containers neither disappear nor appear out of thin air;
and simulation time continuously advances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.reefer.domain import OrderState

if TYPE_CHECKING:
    from repro.reefer.app import ReeferApplication

__all__ = ["InvariantReport", "InvariantViolation", "check_invariants"]


class InvariantViolation(AssertionError):
    """At least one application invariant failed."""


@dataclass
class InvariantReport:
    checked: int = 0
    violations: list[str] = field(default_factory=list)
    details: dict = field(default_factory=dict)

    def ok(self) -> bool:
        return not self.violations

    def raise_if_violated(self) -> None:
        if self.violations:
            raise InvariantViolation("\n".join(self.violations))


def check_invariants(
    reefer: "ReeferApplication", require_terminal: bool = False
) -> InvariantReport:
    """Check every invariant; call with the workload stopped.

    With ``require_terminal`` every submitted order must have reached a
    terminal state (use after a drain period); otherwise non-terminal
    orders must at least be *known* to the OrderManager or still in flight.
    """
    report = InvariantReport()
    app = reefer.app
    metrics = reefer.metrics

    # ------------------------------------------------------------------
    # 1. No submitted order is lost.
    # ------------------------------------------------------------------
    report.checked += 1
    statuses = reefer.order_statuses()
    in_flight = set(metrics.in_flight)
    for order_id in metrics.submitted:
        if order_id in statuses:
            continue
        if order_id in in_flight:
            continue  # request still being processed (or retried)
        record = metrics.orders[order_id]
        if record.status and record.status.startswith("error"):
            continue  # rejected orders carry their own terminal record
        report.violations.append(f"order {order_id} lost (unknown to manager)")
    if require_terminal:
        terminal = (*OrderState.TERMINAL, "rejected")
        stuck = [
            order_id
            for order_id, status in statuses.items()
            if status not in terminal
        ]
        if stuck:
            report.violations.append(
                f"{len(stuck)} orders not terminal after drain: {stuck[:5]}"
            )

    # No illegal terminal transitions were recorded by the manager.
    report.checked += 1
    violations = reefer.order_violations()
    for item in violations:
        report.violations.append(f"illegal transition: {item}")

    # ------------------------------------------------------------------
    # 2. Containers are conserved (none created or destroyed).
    # ------------------------------------------------------------------
    report.checked += 1
    locations = reefer.container_locations()
    if len(locations) != reefer.total_containers:
        report.violations.append(
            f"container count changed: {len(locations)} != "
            f"{reefer.total_containers}"
        )
    valid_heads = {"depot", "order", "damaged"}
    for container, location in locations.items():
        if tuple(location)[0] not in valid_heads:
            report.violations.append(
                f"container {container} in invalid location {location!r}"
            )

    # ------------------------------------------------------------------
    # 3. Ships depart before arriving; arrivals follow the schedule.
    # ------------------------------------------------------------------
    report.checked += 1
    voyage_stats = reefer.voyage_stats()
    departed = voyage_stats.get("departed", {})
    arrived = voyage_stats.get("arrived", {})
    for voyage_id, arrival_time in arrived.items():
        departure_time = departed.get(voyage_id)
        if departure_time is None:
            report.violations.append(
                f"voyage {voyage_id} arrived without departing"
            )
        elif arrival_time < departure_time:
            report.violations.append(
                f"voyage {voyage_id} arrived before departing"
            )

    # ------------------------------------------------------------------
    # 4. Simulation time advances (order completions are causal).
    # ------------------------------------------------------------------
    report.checked += 1
    for record in metrics.completed:
        if record.completed_at < record.submitted_at:
            report.violations.append(
                f"order {record.order_id} completed before submission"
            )

    report.details = {
        "orders_submitted": len(metrics.submitted),
        "orders_completed": len(metrics.completed),
        "orders_in_flight": len(in_flight),
        "statuses": _tally(statuses),
        "containers": len(locations),
        "voyages_departed": len(departed),
        "voyages_arrived": len(arrived),
    }
    return report


def _tally(statuses: dict) -> dict:
    counts: dict[str, int] = {}
    for status in statuses.values():
        counts[status] = counts.get(status, 0) + 1
    return dict(sorted(counts.items()))
