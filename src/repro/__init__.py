"""Reproduction of *Reliable Actors with Retry Orchestration* (KAR, PLDI 2023).

The package is organised bottom-up:

- :mod:`repro.sim` -- deterministic discrete-event simulation kernel.
- :mod:`repro.mq` -- simulated Kafka (queues, consumer groups, fencing).
- :mod:`repro.kvstore` -- simulated Redis (KV + CAS + fencing).
- :mod:`repro.net` -- direct, non-reliable transport baseline.
- :mod:`repro.core` -- the KAR runtime: actors, tail calls, retry
  orchestration, reconciliation.
- :mod:`repro.semantics` -- the paper's process calculus, executable, with a
  bounded model checker for Theorems 3.1-3.4.
- :mod:`repro.reefer` -- the Container Shipping enterprise application.
- :mod:`repro.bench` -- harnesses regenerating every table and figure.
"""

__version__ = "1.0.0"

from repro.core import (  # noqa: F401
    Actor,
    ActorRef,
    KarApplication,
    KarConfig,
    TailCall,
)
from repro.sim import Kernel, SimProcess  # noqa: F401

__all__ = [
    "Actor",
    "ActorRef",
    "KarApplication",
    "KarConfig",
    "Kernel",
    "SimProcess",
    "TailCall",
    "__version__",
]
