"""Reproduction of *Reliable Actors with Retry Orchestration* (KAR, PLDI 2023).

The package is organised bottom-up:

- :mod:`repro.sim` -- deterministic discrete-event simulation kernel.
- :mod:`repro.mq` -- simulated Kafka (queues, consumer groups, fencing).
- :mod:`repro.kvstore` -- simulated Redis (KV + CAS + fencing).
- :mod:`repro.net` -- the serving edge (asyncio HTTP gateway exposing the
  sidecar API) and the direct, non-reliable transport baseline.
- :mod:`repro.core` -- the KAR runtime: actors, tail calls, retry
  orchestration, reconciliation.
- :mod:`repro.semantics` -- the paper's process calculus, executable, with a
  bounded model checker for Theorems 3.1-3.4.
- :mod:`repro.reefer` -- the Container Shipping enterprise application.
- :mod:`repro.bench` -- harnesses regenerating every table and figure.

The names exported here are the supported public surface: build an
application (:class:`KarApplication` / :class:`KarCluster`,
:class:`KarConfig`), write actors (:class:`Actor`, :class:`ActorContext`,
:class:`ActorRef`, :func:`actor_proxy`, :class:`TailCall`), and serve them
over HTTP (:class:`KarGateway`, or programmatically via :class:`KarApi`).
"""

__version__ = "1.1.0"

from repro.core import (  # noqa: F401
    Actor,
    ActorContext,
    ActorRef,
    KarApi,
    KarApplication,
    KarCluster,
    KarConfig,
    TailCall,
    actor_proxy,
)
from repro.net import KarGateway  # noqa: F401
from repro.sim import Kernel, SimProcess  # noqa: F401

__all__ = [
    "Actor",
    "ActorContext",
    "ActorRef",
    "KarApi",
    "KarApplication",
    "KarCluster",
    "KarConfig",
    "KarGateway",
    "Kernel",
    "SimProcess",
    "TailCall",
    "__version__",
    "actor_proxy",
]
