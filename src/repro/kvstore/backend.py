"""Store backends: where the simulated Redis keeps its bytes.

:class:`KVStore` models the *service* (latency, fencing, round trips);
a :class:`StoreBackend` is its storage engine. The memory backend keeps
the original dict-of-dicts layout. The SQLite backend writes a WAL-mode
database file (one per application), encoding values through the persist
codec so the contents survive a real process death; the multi-field
operations (``hset_many`` / ``hget_many`` / ``hgetall``) execute as single
batched transactions, mirroring the single-round-trip store primitives
they back.

Backends are synchronous and single-threaded by design: the simulation
kernel serializes every store operation, so atomicity (e.g. for CAS) is a
property of the calling layer, not of the engine.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterable

from repro.persist import codec, framing

__all__ = ["MemoryStoreBackend", "SqliteStoreBackend", "StoreBackend"]


class StoreBackend:
    """Abstract storage engine behind :class:`KVStore`.

    Flat keys and hash keys live in separate namespaces, exactly like the
    ``_data`` / ``_hashes`` split of the original in-memory store.
    """

    def get(self, key: str) -> Any:
        raise NotImplementedError

    def set(self, key: str, value: Any) -> None:
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        raise NotImplementedError

    def hget(self, key: str, field: str) -> Any:
        raise NotImplementedError

    def hset(self, key: str, field: str, value: Any) -> None:
        raise NotImplementedError

    def hset_many(self, key: str, mapping: dict[str, Any]) -> None:
        raise NotImplementedError

    def hget_many(self, key: str, fields: tuple[str, ...]) -> dict[str, Any]:
        raise NotImplementedError

    def hgetall(self, key: str) -> dict[str, Any]:
        raise NotImplementedError

    def hdel(self, key: str, field: str) -> bool:
        raise NotImplementedError

    def delete_hash(self, key: str) -> bool:
        raise NotImplementedError

    def keys(self, prefix: str = "") -> list[str]:
        raise NotImplementedError

    def begin_batch(self) -> None:
        """Bracket a pipelined batch: operations until ``end_batch`` belong
        to one round trip (SQLite wraps them in a single transaction)."""

    def end_batch(self) -> None:
        """Close the bracket opened by ``begin_batch``."""

    def flush(self) -> None:
        """Durability barrier: persist everything accepted so far."""

    def close(self) -> None:
        """Release file handles; the stored data must remain recoverable."""


class MemoryStoreBackend(StoreBackend):
    """The original dict-backed engine; survives only as a live object."""

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self._hashes: dict[str, dict[str, Any]] = {}

    def get(self, key: str) -> Any:
        return self._data.get(key)

    def set(self, key: str, value: Any) -> None:
        self._data[key] = value

    def delete(self, key: str) -> bool:
        return self._data.pop(key, None) is not None

    def hget(self, key: str, field: str) -> Any:
        return self._hashes.get(key, {}).get(field)

    def hset(self, key: str, field: str, value: Any) -> None:
        self._hashes.setdefault(key, {})[field] = value

    def hset_many(self, key: str, mapping: dict[str, Any]) -> None:
        self._hashes.setdefault(key, {}).update(mapping)

    def hget_many(self, key: str, fields: tuple[str, ...]) -> dict[str, Any]:
        bucket = self._hashes.get(key, {})
        return {field: bucket.get(field) for field in fields}

    def hgetall(self, key: str) -> dict[str, Any]:
        return dict(self._hashes.get(key, {}))

    def hdel(self, key: str, field: str) -> bool:
        bucket = self._hashes.get(key)
        if bucket is None:
            return False
        return bucket.pop(field, None) is not None

    def delete_hash(self, key: str) -> bool:
        return self._hashes.pop(key, None) is not None

    def keys(self, prefix: str = "") -> list[str]:
        return sorted(key for key in self._data if key.startswith(prefix))


class SqliteStoreBackend(StoreBackend):
    """WAL-mode SQLite engine: one database file per application.

    Values round-trip through the persist layer, so reads return
    reconstructed copies rather than the original objects -- the semantics
    of any real out-of-process store. ``codec="json"`` stores tagged-JSON
    text (the legacy format); ``codec="binary"`` stores headered binary
    frames as BLOBs. Reads sniff the stored type (SQLite preserves the
    storage class regardless of column affinity), so a database written
    under either codec -- or a mix, across a codec switch -- always decodes.
    """

    def __init__(
        self,
        path: str,
        synchronous: str = "NORMAL",
        codec: str = "binary",
    ):
        self.path = path
        self.codec = codec
        self._closed = False
        self._in_batch = False
        self._binary = codec == "binary"
        if codec not in ("json", "binary"):
            raise ValueError(f"unknown store codec {codec!r}")
        self._frame_cache = framing.FrameCache()
        self._conn = sqlite3.connect(path, isolation_level=None)
        if synchronous.upper() not in ("OFF", "NORMAL", "FULL", "EXTRA"):
            raise ValueError(f"bad synchronous pragma {synchronous!r}")
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(f"PRAGMA synchronous={synchronous.upper()}")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS kv ("
            " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS kv_hash ("
            " key TEXT NOT NULL, field TEXT NOT NULL, value TEXT NOT NULL,"
            " PRIMARY KEY (key, field))"
        )

    def get(self, key: str) -> Any:
        row = self._conn.execute(
            "SELECT value FROM kv WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else self._decode(row[0])

    def set(self, key: str, value: Any) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO kv (key, value) VALUES (?, ?)",
            (key, self._encode(value)),
        )

    def delete(self, key: str) -> bool:
        cursor = self._conn.execute("DELETE FROM kv WHERE key = ?", (key,))
        return cursor.rowcount > 0

    def hget(self, key: str, field: str) -> Any:
        row = self._conn.execute(
            "SELECT value FROM kv_hash WHERE key = ? AND field = ?",
            (key, field),
        ).fetchone()
        return None if row is None else self._decode(row[0])

    def hset(self, key: str, field: str, value: Any) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO kv_hash (key, field, value)"
            " VALUES (?, ?, ?)",
            (key, field, self._encode(value)),
        )

    def hset_many(self, key: str, mapping: dict[str, Any]) -> None:
        # One transaction: the batched write behind the single-round-trip
        # ``hset_many`` store primitive. Inside a pipelined batch the
        # bracketing transaction is already open, so join it instead of
        # nesting.
        rows = [
            (key, field, self._encode(value)) for field, value in mapping.items()
        ]
        if self._in_batch:
            self._conn.executemany(
                "INSERT OR REPLACE INTO kv_hash (key, field, value)"
                " VALUES (?, ?, ?)",
                rows,
            )
            return
        self._conn.execute("BEGIN")
        try:
            self._conn.executemany(
                "INSERT OR REPLACE INTO kv_hash (key, field, value)"
                " VALUES (?, ?, ?)",
                rows,
            )
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")

    def hget_many(self, key: str, fields: tuple[str, ...]) -> dict[str, Any]:
        found = self._fetch_fields(key, fields)
        return {field: found.get(field) for field in fields}

    def hgetall(self, key: str) -> dict[str, Any]:
        rows = self._conn.execute(
            "SELECT field, value FROM kv_hash WHERE key = ?", (key,)
        ).fetchall()
        return {field: self._decode(value) for field, value in rows}

    def hdel(self, key: str, field: str) -> bool:
        cursor = self._conn.execute(
            "DELETE FROM kv_hash WHERE key = ? AND field = ?", (key, field)
        )
        return cursor.rowcount > 0

    def delete_hash(self, key: str) -> bool:
        cursor = self._conn.execute("DELETE FROM kv_hash WHERE key = ?", (key,))
        return cursor.rowcount > 0

    def keys(self, prefix: str = "") -> list[str]:
        rows = self._conn.execute("SELECT key FROM kv").fetchall()
        return sorted(key for (key,) in rows if key.startswith(prefix))

    def begin_batch(self) -> None:
        # One transaction per pipelined round trip: SQLite pays its page
        # bookkeeping once for the whole batch.
        self._conn.execute("BEGIN")
        self._in_batch = True

    def end_batch(self) -> None:
        self._in_batch = False
        self._conn.execute("COMMIT")

    def flush(self) -> None:
        self._conn.execute("PRAGMA wal_checkpoint(PASSIVE)")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._conn.commit()
        self._conn.close()

    def _fetch_fields(self, key: str, fields: Iterable[str]) -> dict[str, Any]:
        names = tuple(fields)
        if not names:
            return {}
        placeholders = ",".join("?" for _ in names)
        rows = self._conn.execute(
            "SELECT field, value FROM kv_hash"
            f" WHERE key = ? AND field IN ({placeholders})",
            (key, *names),
        ).fetchall()
        return {field: self._decode(value) for field, value in rows}

    def _encode(self, value: Any) -> "bytes | str":
        if self._binary:
            return framing.dumps_frame(value, cache=self._frame_cache)
        return codec.dumps(value)

    @staticmethod
    def _decode(stored: "bytes | str") -> Any:
        # loads_frame dispatches on the stored form: BLOBs carry a frame
        # header, TEXT is legacy tagged JSON.
        return framing.loads_frame(stored)
