"""Pipelined store I/O: one round trip for a turn's worth of operations.

PR 4's send outbox removed the per-envelope produce round trip; this module
does the same for the store. A :class:`PipelinedStoreClient` is a drop-in
replacement for :class:`~repro.kvstore.store.StoreClient` that enqueues
each operation with its own future and lets a flusher coalesce everything
issued within the same event-loop turn into a single backend round trip --
on SQLite one transaction, on the memory backend one call run.

Semantics are those of the unpipelined client:

- every operation still resolves (or fails) individually through its own
  future, so callers keep their sequential ``await`` style untouched;
- *dependent* operations never reorder: a caller only issues its next
  operation after the previous one resolved, which lands it in a later
  round trip by construction, and operations within one round trip apply
  in FIFO issue order inside a single kernel event -- CAS read-compare-
  write stays atomic exactly as before;
- fencing is still checked server-side per operation *when it lands*, so
  an operation issued before the fence but landing after it fails, and a
  fence mid-batch fails that operation and every later one in the batch
  while the earlier results stand (the lingering-client contract).

The win is round trips, which is the one cost simulated time can see: a
component that issues N independent placement reads and evidence writes in
one turn pays one store latency instead of N.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    from repro.kvstore.store import KVStore
    from repro.sim import SimProcess

__all__ = ["PipelinedStoreClient"]


class _PendingOp:
    """One queued operation and the future resolved when it lands."""

    __slots__ = ("apply", "args", "future")

    def __init__(self, apply: Callable[..., Any], args: tuple, future: Any):
        self.apply = apply
        self.args = args
        self.future = future


class PipelinedStoreClient:
    """A store connection that coalesces same-turn operations.

    API-compatible with :class:`~repro.kvstore.store.StoreClient`; built by
    ``Component.start`` when ``KarConfig.store_pipeline`` is on. The
    flusher task runs on the owning component's failure domain, so a dead
    component's queued operations die with it -- just like its outbox.
    """

    def __init__(
        self,
        store: "KVStore",
        client_id: str,
        process: "SimProcess | None" = None,
        batch_max: int = 64,
    ):
        self.store = store
        self.client_id = client_id
        self.process = process
        self.batch_max = batch_max
        self._queue: list[_PendingOp] = []
        self._flusher_running = False
        # Evidence counters for the throughput benchmarks.
        self.batches_flushed = 0
        self.ops_pipelined = 0
        self.largest_batch = 0

    # ------------------------------------------------------------------
    # the pipeline
    # ------------------------------------------------------------------
    def _submit(self, apply: Callable[..., Any], *args: Any) -> Any:
        """Enqueue one operation; returns the future of its result."""
        future = self.store.kernel.create_future()
        self._queue.append(_PendingOp(apply, args, future))
        if not self._flusher_running:
            self._flusher_running = True
            self.store.kernel.spawn(
                self._flush(),
                self.process,
                name=f"store-pipeline:{self.client_id}",
            )
        return future

    async def _flush(self) -> None:
        """Drain the queue in FIFO batches, one round trip per batch.

        The zero-delay sleep runs after everything already scheduled at
        this instant, so operations issued anywhere in the current turn
        share the first batch without adding simulated latency.
        """
        await self.store.kernel.sleep(0.0)
        while self._queue:
            limit = max(1, self.batch_max)
            batch = self._queue[:limit]
            del self._queue[: len(batch)]
            await self._round_trip()
            self._apply_batch(batch)
        self._flusher_running = False

    async def _round_trip(self) -> None:
        await self.store.connection_round_trip(self.client_id)

    def _apply_batch(self, batch: list[_PendingOp]) -> None:
        """Apply one batch inside a single kernel event.

        The backend brackets the batch (SQLite: one transaction); each
        operation still passes the server-side fence check and resolves
        its own future, in issue order.
        """
        self.batches_flushed += 1
        self.ops_pipelined += len(batch)
        self.largest_batch = max(self.largest_batch, len(batch))
        backend = self.store.backend
        backend.begin_batch()
        try:
            for op in batch:
                try:
                    self.store._check(self.client_id)
                    result = op.apply(*op.args)
                except Exception as error:  # noqa: BLE001 - routed to caller
                    if not op.future.done():
                        op.future.set_exception(error)
                else:
                    if not op.future.done():
                        op.future.set_result(result)
        finally:
            backend.end_batch()

    # ------------------------------------------------------------------
    # the StoreClient surface
    # ------------------------------------------------------------------
    async def get(self, key: str) -> Any:
        return await self._submit(self.store._get, key)

    async def set(self, key: str, value: Any) -> None:
        return await self._submit(self.store._set, key, value)

    async def delete(self, key: str) -> bool:
        return await self._submit(self.store._delete, key)

    async def cas(self, key: str, expected: Any, value: Any) -> bool:
        return await self._submit(self.store._cas, key, expected, value)

    async def hget(self, key: str, field: str) -> Any:
        return await self._submit(self.store._hget, key, field)

    async def hset(self, key: str, field: str, value: Any) -> None:
        return await self._submit(self.store._hset, key, field, value)

    async def hset_many(self, key: str, mapping: dict[str, Any]) -> None:
        return await self._submit(self.store._hset_many, key, dict(mapping))

    async def hget_many(
        self, key: str, fields: tuple[str, ...]
    ) -> dict[str, Any]:
        return await self._submit(self.store._hget_many, key, tuple(fields))

    async def hgetall(self, key: str) -> dict[str, Any]:
        return await self._submit(self.store._hgetall, key)

    async def hdel(self, key: str, field: str) -> bool:
        return await self._submit(self.store._hdel, key, field)

    async def delete_hash(self, key: str) -> bool:
        return await self._submit(self.store._del_hash, key)
