"""Simulated Redis with latency, CAS, hashes, client fencing -- and
pluggable storage.

The store itself lives outside any application failure domain (the paper
assumes the data store survives up to catastrophic failures, Section 3.3).
Clients connect with an identity; fencing an identity makes every later
operation from it fail, which implements forceful disconnection.

The *service* behavior (round trips, fencing, operation accounting) lives
here; the bytes live in a :class:`~repro.kvstore.backend.StoreBackend` --
in-memory dicts by default, a WAL-mode SQLite file for durable runs. The
fenced set is deliberately volatile service state: it guards against
*lingering* clients, and no client outlives a cold restart.
"""

from __future__ import annotations

from typing import Any

from repro.kvstore.backend import MemoryStoreBackend, StoreBackend
from repro.kvstore.errors import FencedClientError
from repro.sim import Kernel, Latency

__all__ = ["KVStore", "StoreClient"]


class KVStore:
    """The service: flat keys, hash keys, CAS, deterministic latency."""

    def __init__(
        self,
        kernel: Kernel,
        latency: Latency = Latency.fixed(0.0005),
        backend: StoreBackend | None = None,
    ):
        self.kernel = kernel
        self.latency = latency
        self.backend = backend if backend is not None else MemoryStoreBackend()
        self._fenced: set[str] = set()
        self.operation_count = 0
        #: Latency-paying round trips clients made (each may carry a
        #: pipelined batch of operations).
        self.round_trips = 0
        #: Per-connection busy horizon (see ``connection_round_trip``).
        self._conn_free: dict[str, float] = {}

    # ------------------------------------------------------------------
    # connections and fencing
    # ------------------------------------------------------------------
    def client(self, client_id: str) -> "StoreClient":
        return StoreClient(self, client_id)

    def fence(self, client_id: str) -> None:
        """Forcefully disconnect ``client_id``: all later operations fail."""
        self._fenced.add(client_id)

    def unfence(self, client_id: str) -> None:
        """Re-admit an identity (a restarted component gets a fresh epoch)."""
        self._fenced.discard(client_id)

    def is_fenced(self, client_id: str) -> bool:
        return client_id in self._fenced

    async def connection_round_trip(self, client_id: str) -> None:
        """One latency-paying round trip on ``client_id``'s connection.

        A client's connection is serial -- one request/response in flight
        at a time, like a real Redis connection: concurrent operations
        from the same client queue behind each other. That queueing is
        exactly the per-operation cost the pipelined client amortizes by
        packing a whole event-loop turn's operations into one trip.
        """
        self.round_trips += 1
        latency = self.latency.sample(self.kernel.rng)
        now = self.kernel.now
        start = self._conn_free.get(client_id, 0.0)
        if start < now:
            start = now
        finish = start + latency
        self._conn_free[client_id] = finish
        await self.kernel.sleep(finish - now)

    # ------------------------------------------------------------------
    # synchronous core (used by clients after the latency wait)
    # ------------------------------------------------------------------
    def _check(self, client_id: str) -> None:
        self.operation_count += 1
        if client_id in self._fenced:
            raise FencedClientError(client_id)

    def _get(self, key: str) -> Any:
        return self.backend.get(key)

    def _set(self, key: str, value: Any) -> None:
        self.backend.set(key, value)

    def _delete(self, key: str) -> bool:
        return self.backend.delete(key)

    def _cas(self, key: str, expected: Any, value: Any) -> bool:
        """Atomically set ``key`` to ``value`` iff it currently equals
        ``expected`` (``None`` meaning absent). Returns success.

        The read-compare-write runs inside one kernel event, so it is
        atomic regardless of the backend engine.
        """
        current = self.backend.get(key)
        if current != expected:
            return False
        self.backend.set(key, value)
        return True

    def _hget(self, key: str, field: str) -> Any:
        return self.backend.hget(key, field)

    def _hset(self, key: str, field: str, value: Any) -> None:
        self.backend.hset(key, field, value)

    def _hset_many(self, key: str, mapping: dict[str, Any]) -> None:
        self.backend.hset_many(key, mapping)

    def _hget_many(self, key: str, fields: tuple[str, ...]) -> dict[str, Any]:
        return self.backend.hget_many(key, fields)

    def _hgetall(self, key: str) -> dict[str, Any]:
        return self.backend.hgetall(key)

    def _hdel(self, key: str, field: str) -> bool:
        return self.backend.hdel(key, field)

    def _del_hash(self, key: str) -> bool:
        return self.backend.delete_hash(key)

    def keys(self, prefix: str = "") -> list[str]:
        """Snapshot of flat keys with the given prefix (test/inspection)."""
        return self.backend.keys(prefix)


class StoreClient:
    """A connection bound to a client identity; every op costs one RTT.

    The fencing check happens server-side *when the operation lands*, so an
    operation issued before the fence but arriving after it is rejected --
    exactly the lingering-write scenario of Section 2.3.
    """

    def __init__(self, store: KVStore, client_id: str):
        self.store = store
        self.client_id = client_id

    async def _round_trip(self) -> None:
        await self.store.connection_round_trip(self.client_id)

    async def get(self, key: str) -> Any:
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._get(key)

    async def set(self, key: str, value: Any) -> None:
        await self._round_trip()
        self.store._check(self.client_id)
        self.store._set(key, value)

    async def delete(self, key: str) -> bool:
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._delete(key)

    async def cas(self, key: str, expected: Any, value: Any) -> bool:
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._cas(key, expected, value)

    async def hget(self, key: str, field: str) -> Any:
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._hget(key, field)

    async def hset(self, key: str, field: str, value: Any) -> None:
        await self._round_trip()
        self.store._check(self.client_id)
        self.store._hset(key, field, value)

    async def hset_many(self, key: str, mapping: dict[str, Any]) -> None:
        """Set several hash fields in one round trip (Redis HSET/HMSET)."""
        await self._round_trip()
        self.store._check(self.client_id)
        self.store._hset_many(key, dict(mapping))

    async def hget_many(self, key: str, fields: tuple[str, ...]) -> dict[str, Any]:
        """Read several hash fields in one round trip (Redis HMGET);
        missing fields map to ``None``."""
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._hget_many(key, tuple(fields))

    async def hgetall(self, key: str) -> dict[str, Any]:
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._hgetall(key)

    async def hdel(self, key: str, field: str) -> bool:
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._hdel(key, field)

    async def delete_hash(self, key: str) -> bool:
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._del_hash(key)
