"""In-memory simulated Redis with latency, CAS, hashes, and client fencing.

The store itself lives outside any application failure domain (the paper
assumes the data store survives up to catastrophic failures, Section 3.3).
Clients connect with an identity; fencing an identity makes every later
operation from it fail, which implements forceful disconnection.
"""

from __future__ import annotations

from typing import Any

from repro.kvstore.errors import FencedClientError
from repro.sim import Kernel, Latency

__all__ = ["KVStore", "StoreClient"]


class KVStore:
    """The service: flat keys, hash keys, CAS, deterministic latency."""

    def __init__(self, kernel: Kernel, latency: Latency = Latency.fixed(0.0005)):
        self.kernel = kernel
        self.latency = latency
        self._data: dict[str, Any] = {}
        self._hashes: dict[str, dict[str, Any]] = {}
        self._fenced: set[str] = set()
        self.operation_count = 0

    # ------------------------------------------------------------------
    # connections and fencing
    # ------------------------------------------------------------------
    def client(self, client_id: str) -> "StoreClient":
        return StoreClient(self, client_id)

    def fence(self, client_id: str) -> None:
        """Forcefully disconnect ``client_id``: all later operations fail."""
        self._fenced.add(client_id)

    def unfence(self, client_id: str) -> None:
        """Re-admit an identity (a restarted component gets a fresh epoch)."""
        self._fenced.discard(client_id)

    def is_fenced(self, client_id: str) -> bool:
        return client_id in self._fenced

    # ------------------------------------------------------------------
    # synchronous core (used by clients after the latency wait)
    # ------------------------------------------------------------------
    def _check(self, client_id: str) -> None:
        self.operation_count += 1
        if client_id in self._fenced:
            raise FencedClientError(client_id)

    def _get(self, key: str) -> Any:
        return self._data.get(key)

    def _set(self, key: str, value: Any) -> None:
        self._data[key] = value

    def _delete(self, key: str) -> bool:
        return self._data.pop(key, None) is not None

    def _cas(self, key: str, expected: Any, value: Any) -> bool:
        """Atomically set ``key`` to ``value`` iff it currently equals
        ``expected`` (``None`` meaning absent). Returns success."""
        current = self._data.get(key)
        if current != expected:
            return False
        self._data[key] = value
        return True

    def _hget(self, key: str, field: str) -> Any:
        return self._hashes.get(key, {}).get(field)

    def _hset(self, key: str, field: str, value: Any) -> None:
        self._hashes.setdefault(key, {})[field] = value

    def _hset_many(self, key: str, mapping: dict[str, Any]) -> None:
        self._hashes.setdefault(key, {}).update(mapping)

    def _hget_many(self, key: str, fields: tuple[str, ...]) -> dict[str, Any]:
        bucket = self._hashes.get(key, {})
        return {field: bucket.get(field) for field in fields}

    def _hgetall(self, key: str) -> dict[str, Any]:
        return dict(self._hashes.get(key, {}))

    def _hdel(self, key: str, field: str) -> bool:
        bucket = self._hashes.get(key)
        if bucket is None:
            return False
        return bucket.pop(field, None) is not None

    def _del_hash(self, key: str) -> bool:
        return self._hashes.pop(key, None) is not None

    def keys(self, prefix: str = "") -> list[str]:
        """Snapshot of flat keys with the given prefix (test/inspection)."""
        return sorted(key for key in self._data if key.startswith(prefix))


class StoreClient:
    """A connection bound to a client identity; every op costs one RTT.

    The fencing check happens server-side *when the operation lands*, so an
    operation issued before the fence but arriving after it is rejected --
    exactly the lingering-write scenario of Section 2.3.
    """

    def __init__(self, store: KVStore, client_id: str):
        self.store = store
        self.client_id = client_id

    async def _round_trip(self) -> None:
        await self.store.kernel.sleep(self.store.latency.sample(self.store.kernel.rng))

    async def get(self, key: str) -> Any:
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._get(key)

    async def set(self, key: str, value: Any) -> None:
        await self._round_trip()
        self.store._check(self.client_id)
        self.store._set(key, value)

    async def delete(self, key: str) -> bool:
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._delete(key)

    async def cas(self, key: str, expected: Any, value: Any) -> bool:
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._cas(key, expected, value)

    async def hget(self, key: str, field: str) -> Any:
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._hget(key, field)

    async def hset(self, key: str, field: str, value: Any) -> None:
        await self._round_trip()
        self.store._check(self.client_id)
        self.store._hset(key, field, value)

    async def hset_many(self, key: str, mapping: dict[str, Any]) -> None:
        """Set several hash fields in one round trip (Redis HSET/HMSET)."""
        await self._round_trip()
        self.store._check(self.client_id)
        self.store._hset_many(key, dict(mapping))

    async def hget_many(self, key: str, fields: tuple[str, ...]) -> dict[str, Any]:
        """Read several hash fields in one round trip (Redis HMGET);
        missing fields map to ``None``."""
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._hget_many(key, tuple(fields))

    async def hgetall(self, key: str) -> dict[str, Any]:
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._hgetall(key)

    async def hdel(self, key: str, field: str) -> bool:
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._hdel(key, field)

    async def delete_hash(self, key: str) -> bool:
        await self._round_trip()
        self.store._check(self.client_id)
        return self.store._del_hash(key)
