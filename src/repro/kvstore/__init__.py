"""Simulated Redis: a persistent key-value service with CAS and fencing.

KAR uses Redis for two things (Section 4.2): coordinating actor placement
with a compare-and-swap, and backing the ``actor.state`` persistence API.
Crucially, the store must support *forceful disconnection* -- once a client
is deemed failed, the store refuses all further operations from it, so a
lingering write from a dead component can never race a replacement.
"""

from repro.kvstore.backend import (
    MemoryStoreBackend,
    SqliteStoreBackend,
    StoreBackend,
)
from repro.kvstore.errors import FencedClientError, StoreError
from repro.kvstore.pipeline import PipelinedStoreClient
from repro.kvstore.store import KVStore, StoreClient

__all__ = [
    "FencedClientError",
    "KVStore",
    "MemoryStoreBackend",
    "PipelinedStoreClient",
    "SqliteStoreBackend",
    "StoreBackend",
    "StoreClient",
    "StoreError",
]
