"""Errors raised by the simulated key-value store."""

__all__ = ["FencedClientError", "StoreError"]


class StoreError(Exception):
    """Base class for store failures."""


class FencedClientError(StoreError):
    """The client was forcefully disconnected and may no longer operate.

    This is the store-side half of the paper's forceful-disconnection
    requirement (Sections 1, 4.2): surviving components fence failed ones
    before resuming, so delayed operations from the past cannot corrupt state.
    """
