"""A minimal direct request/response transport.

Models the Table 2 "Direct HTTP" baseline: a non-resilient POST over an
established connection between two processes on different worker nodes.
No queues, no durability -- if either side dies, the request is simply lost,
which is exactly why the paper contrasts it against reliable messaging.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim import Kernel, Latency

__all__ = ["DirectHttpBaseline"]


class DirectHttpBaseline:
    """One server endpoint with a fixed round-trip cost.

    ``rtt`` may be a float (seconds, split evenly between the two legs) or a
    :class:`Latency` sampled per leg.
    """

    def __init__(
        self,
        kernel: Kernel,
        rtt: float | Latency,
        handler: Callable[[Any], Any],
    ):
        self.kernel = kernel
        if isinstance(rtt, Latency):
            self._leg = rtt.scaled(0.5)
        else:
            self._leg = Latency.fixed(rtt / 2)
        self.handler = handler
        self.requests_served = 0

    async def request(self, payload: Any) -> Any:
        """Client call: one network leg, handler, one leg back."""
        await self.kernel.sleep(self._leg.sample(self.kernel.rng))
        self.requests_served += 1
        response = self.handler(payload)
        await self.kernel.sleep(self._leg.sample(self.kernel.rng))
        return response
