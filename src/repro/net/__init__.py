"""Direct, non-reliable transport: the paper's baseline for Table 2."""

from repro.net.http import HttpEndpoint

__all__ = ["HttpEndpoint"]
