"""Network edges: the resilient serving gateway and the non-resilient baseline.

- :class:`KarGateway` -- asyncio HTTP/1.1 REST server exposing the KAR
  sidecar API (actor calls/tells, state, reminders, system views) over a
  real socket, bridged onto the simulation kernel by :class:`KernelBridge`.
- :class:`GatewayMetrics` -- per-route counters and latency histograms,
  surfaced at ``GET /system/stats`` and ``app.stats("gateway")``.
- :class:`DirectHttpBaseline` -- the paper's Table 2 "Direct HTTP"
  baseline: a non-resilient request/response transport inside the
  simulation (formerly ``HttpEndpoint``, still importable from
  :mod:`repro.net.http`).
"""

from repro.net.baseline import DirectHttpBaseline
from repro.net.gateway import ERROR_STATUS, KarGateway, KernelBridge, map_error
from repro.net.metrics import GatewayMetrics, LatencyHistogram

__all__ = [
    "DirectHttpBaseline",
    "ERROR_STATUS",
    "GatewayMetrics",
    "KarGateway",
    "KernelBridge",
    "LatencyHistogram",
    "map_error",
]
