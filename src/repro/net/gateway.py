"""The serving edge: an asyncio HTTP/1.1 gateway over a KAR application.

This is the REST surface of the KAR sidecar (Section 2 of the paper): actor
calls and tells, actor state CRUD, reminder CRUD, and the system views --
exposed over a real TCP socket by a hand-rolled HTTP/1.1 server (stdlib
only; keep-alive, ``Content-Length`` bodies, JSON in and out).

Two worlds meet here. HTTP clients live on real asyncio wall-clock time;
the KAR runtime lives entirely on the deterministic simulation kernel.
:class:`KernelBridge` joins them without threads: a single asyncio "pump"
task repeatedly advances the kernel by a small slice of simulated time and
then yields to the event loop, so socket I/O and simulation interleave
cooperatively on one thread. ``submit()`` hands a simulation coroutine to
the kernel and returns an asyncio future that the pump resolves when the
simulation side settles. While requests are in flight the pump spins hot
(simulated time races ahead of wall time, which is what makes a 100k-key
benchmark finish in seconds); when idle it naps between slices.

Failures map to a stable JSON error envelope::

    {"error": {"code": "breaker_open", "message": "..."}}

with typed codes and, for backpressure-style rejections, a ``Retry-After``
header derived from the runtime's own backoff policy or the breaker's
remaining cooldown -- clients are told *when* to come back, not just to go
away.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from typing import TYPE_CHECKING, Any, Awaitable, Callable, Coroutine

from repro.core.errors import (
    ActorMethodError,
    BreakerOpenError,
    InvocationCancelled,
    KarError,
    NoPlacementError,
    UnknownActorTypeError,
)
from repro.core.overload import BackoffPolicy
from repro.kvstore.errors import FencedClientError
from repro.mq.errors import FencedMemberError, StaleRouteError
from repro.net.metrics import GatewayMetrics
from repro.sim.kernel import Kernel, TaskKilled

if TYPE_CHECKING:
    from repro.core.app import KarApplication

__all__ = ["ERROR_STATUS", "KarGateway", "KernelBridge", "map_error"]


# ----------------------------------------------------------------------
# error mapping
# ----------------------------------------------------------------------

#: Exception type -> (HTTP status, envelope error code). Order matters:
#: the first ``isinstance`` match wins, so subclasses precede bases.
ERROR_STATUS: tuple[tuple[type[BaseException], int, str], ...] = (
    (UnknownActorTypeError, 404, "unknown_actor_type"),
    (BreakerOpenError, 503, "breaker_open"),
    (NoPlacementError, 503, "no_placement"),
    (StaleRouteError, 503, "stale_route"),
    (FencedClientError, 409, "fenced"),
    (FencedMemberError, 409, "fenced"),
    (ActorMethodError, 500, "actor_error"),
    (InvocationCancelled, 500, "invocation_cancelled"),
    (TaskKilled, 503, "component_lost"),
    (KarError, 500, "kar_error"),
)


def map_error(
    error: BaseException, app: "KarApplication"
) -> tuple[int, str, str, float | None]:
    """Map a runtime exception to ``(status, code, message, retry_after)``.

    ``retry_after`` (seconds, or ``None``) comes from the breaker's own
    remaining cooldown when one is open, and from the application's retry
    backoff policy for transient routing failures -- the gateway never
    invents a delay the runtime would not itself wait.
    """
    for exc_type, status, code in ERROR_STATUS:
        if isinstance(error, exc_type):
            retry_after: float | None = None
            if isinstance(error, BreakerOpenError):
                retry_after = error.retry_after
            elif status == 503 and not isinstance(error, TaskKilled):
                policy = BackoffPolicy(
                    app.config.retry_backoff_base, app.config.retry_backoff_cap
                )
                retry_after = policy.bound(1)
            return status, code, str(error), retry_after
    return 500, "internal", str(error), None


# ----------------------------------------------------------------------
# the asyncio <-> simulation-kernel bridge
# ----------------------------------------------------------------------


class KernelBridge:
    """Drives a simulation kernel from inside a real asyncio event loop.

    Single-threaded by construction: the pump task calls
    ``kernel.run(until=now + slice)`` -- which executes simulation callbacks
    inline -- then yields to asyncio so sockets make progress. Completion
    callbacks registered by :meth:`submit` therefore always fire on the
    event-loop thread, and may resolve asyncio futures directly.
    """

    def __init__(
        self,
        kernel: Kernel,
        busy_slice: float = 0.25,
        idle_slice: float = 0.05,
        idle_sleep: float = 0.002,
    ):
        self.kernel = kernel
        self.busy_slice = busy_slice
        self.idle_slice = idle_slice
        self.idle_sleep = idle_sleep
        self._pending = 0
        self._pump_task: asyncio.Task[None] | None = None
        self._running = False

    @property
    def pending(self) -> int:
        """Submitted simulation coroutines that have not settled yet."""
        return self._pending

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._pump_task = asyncio.get_running_loop().create_task(
            self._pump(), name="kernel-bridge-pump"
        )

    async def stop(self) -> None:
        self._running = False
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None

    def submit(
        self, coro: Coroutine[Any, Any, Any], process: Any = None
    ) -> "asyncio.Future[Any]":
        """Run a simulation coroutine; resolve an asyncio future with it.

        Exceptions raised by the coroutine resolve the future rather than
        being recorded as kernel crashes (a rejected HTTP request is an
        answer, not a simulation fault). If the hosting process is killed
        mid-flight the future fails with :class:`TaskKilled`.
        """
        if not self._running:
            raise RuntimeError("bridge is not running")
        loop = asyncio.get_running_loop()
        future: asyncio.Future[Any] = loop.create_future()
        self._pending += 1

        def settle(result: Any, error: BaseException | None) -> None:
            self._pending -= 1
            if future.done():
                return
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(result)

        async def runner() -> None:
            try:
                result = await coro
            except Exception as error:  # noqa: BLE001 - protocol boundary
                settle(None, error)
            else:
                settle(result, None)

        task = self.kernel.spawn(runner(), process=process, name="gateway-op")

        def on_completion(sim_future: Any) -> None:
            # Normal completion already settled inside ``runner``; this
            # catches the fail-stop path where the task was killed before
            # (or instead of) finishing.
            if future.done():
                return
            error = sim_future.exception()
            settle(None, error if error is not None else None)

        task.completion.add_done_callback(on_completion)
        return future

    async def _pump(self) -> None:
        while self._running:
            if self._pending:
                self.kernel.run(until=self.kernel.now + self.busy_slice)
                await asyncio.sleep(0)
            else:
                self.kernel.run(until=self.kernel.now + self.idle_slice)
                await asyncio.sleep(self.idle_sleep)


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------

_JSON_HEADERS = "Content-Type: application/json\r\n"
_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    """A protocol-level rejection decided before/while parsing the request."""

    def __init__(self, status: int, code: str, message: str, close: bool = False):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.close = close


class _Request:
    __slots__ = ("method", "path", "query", "headers", "body", "keep_alive")

    def __init__(
        self,
        method: str,
        path: str,
        query: str,
        headers: dict[str, str],
        body: bytes,
        keep_alive: bool,
    ):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive

    def json(self) -> Any:
        """The request body as JSON; ``None`` when empty."""
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except ValueError as error:
            raise _HttpError(400, "bad_json", f"invalid JSON body: {error}") from error


class _Reply:
    __slots__ = ("status", "payload", "retry_after")

    def __init__(
        self, status: int, payload: Any, retry_after: float | None = None
    ):
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


def _unquote(segment: str) -> str:
    """Percent-decode one path segment (no external imports needed)."""
    if "%" not in segment:
        return segment
    from urllib.parse import unquote

    return unquote(segment)


# ----------------------------------------------------------------------
# the gateway
# ----------------------------------------------------------------------

#: Handler signature: receives the path parameters and the parsed request.
_Handler = Callable[..., Awaitable[_Reply]]


class KarGateway:
    """HTTP/1.1 REST server exposing one application's sidecar API.

    Routes (all request/response bodies are JSON)::

        POST   /actor/{type}/{id}/call/{method}        -> 200 {"value": ...}
        POST   /actor/{type}/{id}/tell/{method}        -> 202
        GET    /actor/{type}/{id}/state                -> 200 {"state": {...}}
        GET    /actor/{type}/{id}/state/{key}          -> 200 {"value": ...} | 404
        PUT    /actor/{type}/{id}/state/{key}          -> 200
        DELETE /actor/{type}/{id}/state/{key}          -> 200 | 404
        PUT    /actor/{type}/{id}/reminders/{rid}      -> 201
        GET    /actor/{type}/{id}/reminders            -> 200 {"reminders": [...]}
        DELETE /actor/{type}/{id}/reminders/{rid}      -> 200 | 404
        GET    /system/health                          -> 200 | 503
        GET    /system/stats[/{family}]                -> 200
        GET    /system/actors                          -> 200

    Construct over a settled :class:`~repro.core.app.KarApplication` (or
    cluster), then ``await start()`` inside a running event loop. The
    gateway owns the kernel pump for its lifetime: nothing else should
    step the kernel while the gateway is serving.
    """

    def __init__(
        self,
        app: "KarApplication",
        host: str = "127.0.0.1",
        port: int = 0,
        max_body: int = 1 << 20,
        client_name: str = "gateway",
        sync_timeout: float | None = 30.0,
    ):
        self.app = app
        self.api = app.api(client_name)
        self.host = host
        self.port = port
        self.max_body = max_body
        self.sync_timeout = sync_timeout
        self.metrics = GatewayMetrics()
        app.gateway_metrics = self.metrics
        self.bridge = KernelBridge(app.kernel)
        self._server: asyncio.Server | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("gateway is not started")
        sockname = self._server.sockets[0].getsockname()
        return str(sockname[0]), int(sockname[1])

    async def start(self) -> tuple[str, int]:
        self.bridge.start()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port, limit=1 << 16
        )
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.bridge.stop()

    async def serve_forever(self) -> None:
        """Start (if needed) and block until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            await self.stop()
            raise

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as error:
                    self._write_error(writer, error, keep_alive=not error.close)
                    await writer.drain()
                    if error.close:
                        break
                    continue
                if request is None:
                    break
                keep_alive = await self._handle(request, writer)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> _Request | None:
        """Parse one request off the wire; ``None`` on clean EOF."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise _HttpError(
                400, "bad_request", "truncated request head", close=True
            ) from error
        except asyncio.LimitOverrunError as error:
            raise _HttpError(
                400, "bad_request", "request head too large", close=True
            ) from error

        try:
            text = head.decode("latin-1")
        except ValueError as error:  # pragma: no cover - latin-1 never fails
            raise _HttpError(400, "bad_request", "undecodable head", close=True) from error
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(
                400, "bad_request", f"malformed request line: {lines[0]!r}", close=True
            )
        method, target, version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(
                    400, "bad_request", f"malformed header line: {line!r}", close=True
                )
            headers[name.strip().lower()] = value.strip()

        connection = headers.get("connection", "").lower()
        keep_alive = connection != "close" and version != "HTTP/1.0"

        length_header = headers.get("content-length", "0")
        try:
            length = int(length_header)
        except ValueError as error:
            raise _HttpError(
                400, "bad_request", f"bad Content-Length: {length_header!r}", close=True
            ) from error
        if length < 0:
            raise _HttpError(400, "bad_request", "negative Content-Length", close=True)
        if length > self.max_body:
            # Discard the declared body before replying: closing with
            # unread bytes in the socket sends RST and the client never
            # sees the 413. The connection still dies with the rejection.
            remaining = length
            while remaining > 0:
                chunk = await reader.read(min(remaining, 1 << 16))
                if not chunk:
                    break
                remaining -= len(chunk)
            raise _HttpError(
                413,
                "body_too_large",
                f"body of {length} bytes exceeds limit {self.max_body}",
                close=True,
            )
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as error:
                raise _HttpError(
                    400, "bad_request", "truncated request body", close=True
                ) from error

        path, _, query = target.partition("?")
        return _Request(method.upper(), path, query, headers, body, keep_alive)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _handle(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> bool:
        started = time.monotonic()
        route, actor_type, kind = "(unmatched)", None, None
        try:
            matched = self._match(request)
            if matched is None:
                raise _HttpError(
                    404, "unknown_route", f"no route for {request.method} {request.path}"
                )
            route, actor_type, kind, handler = matched
            reply = await handler()
        except _HttpError as error:
            reply = _Reply(
                error.status,
                {"error": {"code": error.code, "message": error.message}},
            )
        except asyncio.TimeoutError:
            reply = _Reply(
                504,
                {
                    "error": {
                        "code": "timeout",
                        "message": f"call did not settle within {self.sync_timeout}s",
                    }
                },
            )
        except Exception as error:  # noqa: BLE001 - protocol boundary
            status, code, message, retry_after = map_error(error, self.app)
            reply = _Reply(
                status, {"error": {"code": code, "message": message}}, retry_after
            )
        self._write_reply(writer, reply, request.keep_alive)
        self.metrics.observe(
            route,
            reply.status,
            time.monotonic() - started,
            actor_type=actor_type,
            kind=kind,
        )
        return request.keep_alive

    def _match(
        self, request: _Request
    ) -> tuple[str, str | None, str | None, Callable[[], Awaitable[_Reply]]] | None:
        """Resolve a request to ``(route_template, actor_type, kind, thunk)``."""
        parts = [_unquote(part) for part in request.path.split("/") if part]
        method = request.method

        if parts and parts[0] == "system":
            if len(parts) == 2 and parts[1] == "health" and method == "GET":
                return "GET /system/health", None, None, self._do_health
            if len(parts) == 2 and parts[1] == "stats" and method == "GET":
                return "GET /system/stats", None, None, lambda: self._do_stats(None)
            if len(parts) == 3 and parts[1] == "stats" and method == "GET":
                family = parts[2]
                return (
                    "GET /system/stats/{family}",
                    None,
                    None,
                    lambda: self._do_stats(family),
                )
            if len(parts) == 2 and parts[1] == "actors" and method == "GET":
                return "GET /system/actors", None, None, self._do_actors
            return None

        if not parts or parts[0] != "actor" or len(parts) < 4:
            return None
        actor_type, actor_id = parts[1], parts[2]
        rest = parts[3:]

        if len(rest) == 2 and rest[0] in ("call", "tell") and method == "POST":
            verb, m = rest[0], rest[1]
            template = f"POST /actor/{{type}}/{{id}}/{verb}/{{method}}"
            kind = "calls" if verb == "call" else "tells"
            return (
                template,
                actor_type,
                kind,
                lambda: self._do_invoke(verb, actor_type, actor_id, m, request),
            )

        if rest[0] == "state":
            if len(rest) == 1 and method == "GET":
                return (
                    "GET /actor/{type}/{id}/state",
                    actor_type,
                    "state",
                    lambda: self._do_state_all(actor_type, actor_id),
                )
            if len(rest) == 2 and method in ("GET", "PUT", "DELETE"):
                key = rest[1]
                template = f"{method} /actor/{{type}}/{{id}}/state/{{key}}"
                return (
                    template,
                    actor_type,
                    "state",
                    lambda: self._do_state_key(
                        method, actor_type, actor_id, key, request
                    ),
                )
            return None

        if rest[0] == "reminders":
            if len(rest) == 1 and method == "GET":
                return (
                    "GET /actor/{type}/{id}/reminders",
                    actor_type,
                    "reminders",
                    lambda: self._do_reminder_list(actor_type, actor_id),
                )
            if len(rest) == 2 and method in ("PUT", "DELETE"):
                reminder_id = rest[1]
                template = f"{method} /actor/{{type}}/{{id}}/reminders/{{rid}}"
                return (
                    template,
                    actor_type,
                    "reminders",
                    lambda: self._do_reminder(
                        method, actor_type, actor_id, reminder_id, request
                    ),
                )
            return None
        return None

    # ------------------------------------------------------------------
    # route handlers
    # ------------------------------------------------------------------
    def _submit(self, coro: Coroutine[Any, Any, Any]) -> "asyncio.Future[Any]":
        return self.bridge.submit(coro, process=self.api.endpoint().process)

    @staticmethod
    def _args(request: _Request) -> tuple[Any, ...]:
        payload = request.json()
        if payload is None:
            return ()
        if not isinstance(payload, dict):
            raise _HttpError(400, "bad_request", "body must be a JSON object")
        args = payload.get("args", [])
        if not isinstance(args, list):
            raise _HttpError(400, "bad_request", '"args" must be a JSON array')
        return tuple(args)

    async def _do_invoke(
        self,
        verb: str,
        actor_type: str,
        actor_id: str,
        method: str,
        request: _Request,
    ) -> _Reply:
        args = self._args(request)
        if verb == "call":
            future = self._submit(self.api.call(actor_type, actor_id, method, args))
            if self.sync_timeout is not None:
                value = await asyncio.wait_for(future, self.sync_timeout)
            else:
                value = await future
            return _Reply(200, {"value": value})
        await self._submit(self.api.tell(actor_type, actor_id, method, args))
        return _Reply(202, {"status": "accepted"})

    async def _do_state_all(self, actor_type: str, actor_id: str) -> _Reply:
        state = await self._submit(self.api.state_all(actor_type, actor_id))
        return _Reply(200, {"state": state})

    async def _do_state_key(
        self,
        method: str,
        actor_type: str,
        actor_id: str,
        key: str,
        request: _Request,
    ) -> _Reply:
        if method == "GET":
            found, value = await self._submit(
                self.api.state_get(actor_type, actor_id, key)
            )
            if not found:
                raise _HttpError(404, "no_such_key", f"no state key {key!r}")
            return _Reply(200, {"value": value})
        if method == "PUT":
            payload = request.json()
            if not isinstance(payload, dict) or "value" not in payload:
                raise _HttpError(
                    400, "bad_request", 'body must be {"value": ...}'
                )
            await self._submit(
                self.api.state_set(actor_type, actor_id, key, payload["value"])
            )
            return _Reply(200, {"status": "ok"})
        removed = await self._submit(
            self.api.state_delete(actor_type, actor_id, key)
        )
        if not removed:
            raise _HttpError(404, "no_such_key", f"no state key {key!r}")
        return _Reply(200, {"status": "deleted"})

    async def _do_reminder_list(self, actor_type: str, actor_id: str) -> _Reply:
        listed = await self._submit(
            self.api.reminder_list(actor_type, actor_id)
        )
        return _Reply(200, {"reminders": listed})

    async def _do_reminder(
        self,
        method: str,
        actor_type: str,
        actor_id: str,
        reminder_id: str,
        request: _Request,
    ) -> _Reply:
        if method == "PUT":
            payload = request.json()
            if not isinstance(payload, dict):
                raise _HttpError(400, "bad_request", "body must be a JSON object")
            target = payload.get("method")
            delay = payload.get("delay")
            if not isinstance(target, str) or not isinstance(delay, (int, float)):
                raise _HttpError(
                    400,
                    "bad_request",
                    'body must include "method" (string) and "delay" (seconds)',
                )
            args = payload.get("args", [])
            if not isinstance(args, list):
                raise _HttpError(400, "bad_request", '"args" must be a JSON array')
            period = payload.get("period")
            if period is not None and not isinstance(period, (int, float)):
                raise _HttpError(400, "bad_request", '"period" must be a number')
            await self._submit(
                self.api.reminder_schedule(
                    actor_type,
                    actor_id,
                    reminder_id,
                    target,
                    float(delay),
                    tuple(args),
                    period=float(period) if period is not None else None,
                )
            )
            return _Reply(201, {"status": "scheduled", "id": reminder_id})
        cancelled = await self._submit(self.api.reminder_cancel(reminder_id))
        if not cancelled:
            raise _HttpError(404, "no_such_reminder", f"no reminder {reminder_id!r}")
        return _Reply(200, {"status": "cancelled"})

    async def _do_health(self) -> _Reply:
        health = self.api.health()
        return _Reply(200 if health["ready"] else 503, health)

    async def _do_stats(self, family: str | None) -> _Reply:
        try:
            stats = self.api.stats(family)
        except KeyError as error:
            raise _HttpError(
                404, "unknown_family", f"no stats family {family!r}"
            ) from error
        return _Reply(200, {"stats": stats, "family": family})

    async def _do_actors(self) -> _Reply:
        return _Reply(200, {"actor_types": list(self.api.actor_types())})

    # ------------------------------------------------------------------
    # response writing
    # ------------------------------------------------------------------
    def _write_reply(
        self, writer: asyncio.StreamWriter, reply: _Reply, keep_alive: bool
    ) -> None:
        body = json.dumps(reply.payload).encode()
        reason = _REASONS.get(reply.status, "Unknown")
        head = (
            f"HTTP/1.1 {reply.status} {reason}\r\n"
            f"{_JSON_HEADERS}"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        )
        if reply.retry_after is not None:
            head += f"Retry-After: {max(1, math.ceil(reply.retry_after))}\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + body)

    def _write_error(
        self, writer: asyncio.StreamWriter, error: _HttpError, keep_alive: bool
    ) -> None:
        reply = _Reply(
            error.status, {"error": {"code": error.code, "message": error.message}}
        )
        self._write_reply(writer, reply, keep_alive)
        self.metrics.observe(f"(protocol:{error.code})", error.status, 0.0)
