"""Backward-compatibility shim: the baseline moved to :mod:`repro.net.baseline`.

``HttpEndpoint`` was a misleading name once :mod:`repro.net.gateway` arrived --
the class is the paper's *non-resilient* Table 2 baseline, not a serving
endpoint. Import :class:`~repro.net.baseline.DirectHttpBaseline` instead.
"""

from repro.net.baseline import DirectHttpBaseline

#: Deprecated alias kept for existing imports.
HttpEndpoint = DirectHttpBaseline

__all__ = ["HttpEndpoint"]
