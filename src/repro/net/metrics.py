"""Serving-edge observability: per-route counters and latency histograms.

The gateway records one observation per HTTP exchange -- route template
(never the raw path, so cardinality stays bounded), status code, wall-clock
latency, and the actor type where the route names one. Snapshots feed both
``GET /system/stats`` and the ``gateway`` family of the application's
unified ``stats()`` tree.

Histograms are fixed log2-spaced buckets (no dependency, O(1) observe,
exact counts); percentiles report the upper edge of the bucket that crosses
the rank, which is the usual monitoring-grade approximation.
"""

from __future__ import annotations

from typing import Any

__all__ = ["GatewayMetrics", "LatencyHistogram"]

#: First bucket upper edge (seconds); each next bucket doubles.
_FIRST_EDGE = 0.0001
#: Bucket count; the last finite edge is ``_FIRST_EDGE * 2**(_BUCKETS-1)``
#: (~26 s), with one overflow bucket above it.
_BUCKETS = 19


class LatencyHistogram:
    """Log2-bucketed latency distribution over seconds."""

    __slots__ = ("counts", "overflow", "total", "sum_seconds", "max_seconds")

    def __init__(self) -> None:
        self.counts = [0] * _BUCKETS
        self.overflow = 0
        self.total = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self.total += 1
        self.sum_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        edge = _FIRST_EDGE
        for index in range(_BUCKETS):
            if seconds <= edge:
                self.counts[index] += 1
                return
            edge *= 2.0
        self.overflow += 1

    def percentile(self, quantile: float) -> float:
        """The upper edge of the bucket containing the given quantile."""
        if self.total == 0:
            return 0.0
        rank = quantile * self.total
        seen = 0.0
        edge = _FIRST_EDGE
        for index in range(_BUCKETS):
            seen += self.counts[index]
            if seen >= rank:
                return edge
            edge *= 2.0
        return self.max_seconds

    def snapshot(self) -> dict[str, float]:
        mean = self.sum_seconds / self.total if self.total else 0.0
        return {
            "count": float(self.total),
            "mean_ms": round(mean * 1000.0, 4),
            "p50_ms": round(self.percentile(0.50) * 1000.0, 4),
            "p95_ms": round(self.percentile(0.95) * 1000.0, 4),
            "p99_ms": round(self.percentile(0.99) * 1000.0, 4),
            "max_ms": round(self.max_seconds * 1000.0, 4),
        }


class _RouteMetrics:
    __slots__ = ("requests", "errors", "statuses", "latency")

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.statuses: dict[int, int] = {}
        self.latency = LatencyHistogram()


class GatewayMetrics:
    """Aggregated serving-edge counters, keyed by route template."""

    def __init__(self) -> None:
        self._routes: dict[str, _RouteMetrics] = {}
        self._actor_types: dict[str, dict[str, int]] = {}
        self.requests_total = 0
        self.errors_total = 0

    def observe(
        self,
        route: str,
        status: int,
        seconds: float,
        actor_type: str | None = None,
        kind: str | None = None,
    ) -> None:
        """Record one HTTP exchange.

        ``route`` is the matched route template (e.g.
        ``POST /actor/{type}/{id}/call/{method}``); ``kind`` tags the
        per-actor-type counter to bump (``calls`` / ``tells`` / ``state`` /
        ``reminders``).
        """
        metrics = self._routes.get(route)
        if metrics is None:
            metrics = self._routes[route] = _RouteMetrics()
        metrics.requests += 1
        metrics.statuses[status] = metrics.statuses.get(status, 0) + 1
        metrics.latency.observe(seconds)
        self.requests_total += 1
        failed = status >= 400
        if failed:
            metrics.errors += 1
            self.errors_total += 1
        if actor_type is not None:
            counters = self._actor_types.get(actor_type)
            if counters is None:
                counters = self._actor_types[actor_type] = {
                    "calls": 0,
                    "tells": 0,
                    "state": 0,
                    "reminders": 0,
                    "errors": 0,
                }
            if kind is not None and kind in counters:
                counters[kind] += 1
            if failed:
                counters["errors"] += 1

    def snapshot(self) -> dict[str, Any]:
        """The full observability tree (stable key order for evidence)."""
        return {
            "requests_total": self.requests_total,
            "errors_total": self.errors_total,
            "routes": {
                route: {
                    "requests": metrics.requests,
                    "errors": metrics.errors,
                    "statuses": {
                        str(status): count
                        for status, count in sorted(metrics.statuses.items())
                    },
                    "latency": metrics.latency.snapshot(),
                }
                for route, metrics in sorted(self._routes.items())
            },
            "actor_types": {
                actor_type: dict(counters)
                for actor_type, counters in sorted(self._actor_types.items())
            },
        }
