"""Event loop with simulated time, futures, and fail-stop tasks.

The kernel is intentionally small: a binary heap of timestamped callbacks, a
coroutine driver, and a seeded random number generator. Determinism is a core
requirement -- the paper's 48-hour, 1,000-failure campaign is reproduced as a
simulated-time campaign, and reruns with the same seed must be bit-identical.
"""

from __future__ import annotations

import heapq
from random import Random
from typing import Any, Awaitable, Callable, Coroutine, Generator, Iterable

__all__ = ["Kernel", "SimFuture", "SimTask", "TaskKilled", "Timer"]


class TaskKilled(Exception):
    """Raised by ``await task`` when the task's process failed abruptly."""


class SimFuture:
    """A single-assignment cell that tasks can await.

    Mirrors :class:`asyncio.Future` but is driven by the simulation kernel, so
    resolution order is deterministic.
    """

    __slots__ = ("_kernel", "_done", "_result", "_exception", "_callbacks")

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        self._done = False
        self._result: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["SimFuture"], None]] = []

    def done(self) -> bool:
        return self._done

    def result(self) -> Any:
        if not self._done:
            raise RuntimeError("future is not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> BaseException | None:
        if not self._done:
            raise RuntimeError("future is not resolved yet")
        return self._exception

    def set_result(self, value: Any) -> None:
        self._resolve(value, None)

    def set_exception(self, exception: BaseException) -> None:
        self._resolve(None, exception)

    def _resolve(self, value: Any, exception: BaseException | None) -> None:
        if self._done:
            raise RuntimeError("future is already resolved")
        self._done = True
        self._result = value
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._kernel.call_soon(callback, self)

    def add_done_callback(self, callback: Callable[["SimFuture"], None]) -> None:
        if self._done:
            self._kernel.call_soon(callback, self)
        else:
            self._callbacks.append(callback)

    def discard_callback(self, callback: Callable[["SimFuture"], None]) -> None:
        """Remove a pending callback; no-op if absent or already fired."""
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def __await__(self) -> Generator["SimFuture", None, Any]:
        if not self._done:
            yield self
        if not self._done:
            raise RuntimeError("task resumed before future resolved")
        return self.result()


class Timer:
    """Handle for a scheduled callback; ``cancel`` makes it a no-op."""

    __slots__ = ("when", "cancelled")

    def __init__(self, when: float):
        self.when = when
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class SimTask:
    """A coroutine driven by the kernel.

    Tasks are awaitable: ``await task`` yields the coroutine's return value or
    re-raises its exception. Killing a task (directly or by killing its
    process) abandons the coroutine *without* running cleanup handlers --
    modelling abrupt process termination.
    """

    __slots__ = ("kernel", "name", "process", "coro", "alive", "completion")

    def __init__(
        self,
        kernel: "Kernel",
        coro: Coroutine[Any, Any, Any],
        process: Any = None,
        name: str = "task",
    ):
        self.kernel = kernel
        self.name = name
        self.process = process
        self.coro = coro
        self.alive = True
        self.completion = SimFuture(kernel)

    def done(self) -> bool:
        return self.completion.done()

    def kill(self) -> None:
        """Abandon the task abruptly (fail-stop)."""
        if not self.alive or self.done():
            self.alive = False
            return
        self.alive = False
        if not self.completion.done():
            self.completion.set_exception(TaskKilled(self.name))
        # Deliberately do not close the coroutine: closing would run
        # ``finally`` blocks, which a crashed process never gets to do.

    def _step(self, value: Any = None, exception: BaseException | None = None) -> None:
        if not self.alive or self.done():
            return
        try:
            if exception is not None:
                yielded = self.coro.throw(exception)
            else:
                yielded = self.coro.send(value)
        except StopIteration as stop:
            if not self.completion.done():
                self.completion.set_result(stop.value)
        except BaseException as error:  # noqa: BLE001 - task boundary
            if not self.completion.done():
                self.completion.set_exception(error)
            self.kernel._record_crash(self, error)
        else:
            if not isinstance(yielded, SimFuture):
                raise TypeError(
                    f"task {self.name!r} awaited a non-sim awaitable: {yielded!r}"
                )
            yielded.add_done_callback(self._on_future)

    def _on_future(self, future: SimFuture) -> None:
        if not self.alive or self.done():
            return
        error = future.exception()
        if error is not None:
            self._step(exception=error)
        else:
            self._step(value=future.result())

    def __await__(self) -> Generator[SimFuture, None, Any]:
        return self.completion.__await__()


class Kernel:
    """Deterministic discrete-event scheduler with simulated time in seconds."""

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._sequence = 0
        self._heap: list[tuple[float, int, Timer, Callable[..., None], tuple]] = []
        self.rng = Random(seed)
        self.crashes: list[tuple[SimTask, BaseException]] = []

    # ------------------------------------------------------------------
    # time and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        timer = Timer(self._now + delay)
        self._sequence += 1
        heapq.heappush(self._heap, (timer.when, self._sequence, timer, callback, args))
        return timer

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Timer:
        return self.schedule(0.0, callback, *args)

    def create_future(self) -> SimFuture:
        return SimFuture(self)

    def sleep(self, delay: float) -> SimFuture:
        """Awaitable resolved after ``delay`` simulated seconds."""
        future = self.create_future()
        self.schedule(delay, future.set_result, None)
        return future

    def spawn(
        self,
        coro: Coroutine[Any, Any, Any],
        process: Any = None,
        name: str = "task",
    ) -> SimTask:
        """Start driving a coroutine; returns the awaitable task handle."""
        task = SimTask(self, coro, process=process, name=name)
        if process is not None:
            if not process.alive:
                task.kill()
                return task
            process.adopt(task)
        self.call_soon(task._step)
        return task

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int = 50_000_000) -> None:
        """Process events in timestamp order.

        Stops when the heap drains, simulated time passes ``until``, or
        ``max_events`` events have run (a runaway guard for tests).
        """
        events = 0
        while self._heap:
            when, _seq, timer, callback, args = self._heap[0]
            if until is not None and when > until:
                self._now = until
                return
            heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = when
            callback(*args)
            events += 1
            if events >= max_events:
                raise RuntimeError(f"kernel exceeded {max_events} events")
        if until is not None:
            self._now = max(self._now, until)

    def run_until_complete(
        self, awaitable: SimTask | SimFuture, timeout: float | None = None
    ) -> Any:
        """Drive the loop until ``awaitable`` resolves; return its result."""
        future = awaitable.completion if isinstance(awaitable, SimTask) else awaitable
        deadline = None if timeout is None else self._now + timeout
        while not future.done():
            if not self._heap:
                raise RuntimeError("event loop drained before completion")
            if deadline is not None and self._heap[0][0] > deadline:
                raise TimeoutError(f"not complete after {timeout} simulated seconds")
            when, _seq, timer, callback, args = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = when
            callback(*args)
        return future.result()

    def gather(self, awaitables: Iterable[SimTask | SimFuture]) -> SimFuture:
        """Future resolved with the list of results once all inputs resolve.

        The first exception (in input order at resolution time) is propagated.
        """
        futures = [
            item.completion if isinstance(item, SimTask) else item
            for item in awaitables
        ]
        combined = self.create_future()
        remaining = len(futures)
        if remaining == 0:
            combined.set_result([])
            return combined

        def on_done(_future: SimFuture) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0 and not combined.done():
                for future in futures:
                    error = future.exception()
                    if error is not None:
                        combined.set_exception(error)
                        return
                combined.set_result([future.result() for future in futures])

        for future in futures:
            future.add_done_callback(on_done)
        return combined

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def _record_crash(self, task: SimTask, error: BaseException) -> None:
        self.crashes.append((task, error))

    def check_no_crashes(self) -> None:
        """Raise the first unhandled task exception, if any (test helper)."""
        if self.crashes:
            task, error = self.crashes[0]
            raise RuntimeError(f"task {task.name!r} crashed: {error!r}") from error
