"""Deterministic discrete-event simulation kernel.

Everything in this reproduction runs on simulated time: coroutines are driven
as :class:`SimTask` objects, suspending on :class:`SimFuture` awaitables, and
grouped into :class:`SimProcess` failure domains that can be killed abruptly
(fail-stop, per the paper's failure rule in Section 3.3).
"""

from repro.sim.kernel import Kernel, SimFuture, SimTask, TaskKilled
from repro.sim.latency import Latency
from repro.sim.process import SimProcess
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "Kernel",
    "Latency",
    "SimFuture",
    "SimProcess",
    "SimTask",
    "TaskKilled",
    "TraceEvent",
    "TraceRecorder",
]
