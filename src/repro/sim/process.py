"""Failure domains for simulated tasks.

A :class:`SimProcess` models an OS process / container / pod: killing it
abandons every task it owns without cleanup, exactly matching the paper's
fail-stop failure rule (Section 3.3) -- in-memory state is lost, while
messages and persistent state (owned by separate service processes) survive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.kernel import SimTask

__all__ = ["SimProcess"]


class SimProcess:
    """A named failure domain grouping simulated tasks."""

    def __init__(self, name: str):
        self.name = name
        self.alive = True
        self._tasks: set["SimTask"] = set()
        self.kill_hooks: list = []

    def adopt(self, task: "SimTask") -> None:
        if not self.alive:
            raise RuntimeError(f"process {self.name!r} is dead")
        self._tasks.add(task)
        task.completion.add_done_callback(lambda _f: self._tasks.discard(task))

    def kill(self) -> None:
        """Abrupt fail-stop: abandon all tasks, run registered kill hooks.

        Kill hooks let substrates observe the failure (e.g. the paired
        runtime process terminating with its application process, Section
        4.1); they must not resurrect tasks.
        """
        if not self.alive:
            return
        self.alive = False
        tasks, self._tasks = self._tasks, set()
        for task in tasks:
            task.kill()
        hooks, self.kill_hooks = self.kill_hooks, []
        for hook in hooks:
            hook()

    @property
    def task_count(self) -> int:
        return len(self._tasks)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"SimProcess({self.name!r}, {state}, tasks={len(self._tasks)})"
