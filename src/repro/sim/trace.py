"""Structured event tracing.

The runtime, substrates, and the Reefer application emit trace events; tests
and benchmark harnesses consume them to check guarantees (exactly-once
completion, happen-before) and to regenerate the paper's figures (workflow
diagrams, outage phase breakdowns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped, tagged event with free-form fields."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceRecorder:
    """Append-only event log with simple query helpers."""

    def __init__(self, kernel: Any = None, enabled: bool = True):
        self._kernel = kernel
        #: Long-running campaigns disable tracing to bound memory.
        self.enabled = enabled
        self.events: list[TraceEvent] = []
        self._subscribers: list[Callable[[TraceEvent], None]] = []

    def emit(self, kind: str, **fields: Any) -> TraceEvent | None:
        if not self.enabled:
            return None
        time = self._kernel.now if self._kernel is not None else 0.0
        event = TraceEvent(time, kind, fields)
        self.events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        self._subscribers.append(callback)

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        wanted = set(kinds)
        return [event for event in self.events if event.kind in wanted]

    def where(self, kind: str, **matches: Any) -> list[TraceEvent]:
        return [
            event
            for event in self.events
            if event.kind == kind
            and all(event.get(key) == value for key, value in matches.items())
        ]

    def first(self, kind: str, **matches: Any) -> TraceEvent | None:
        for event in self.events:
            if event.kind == kind and all(
                event.get(key) == value for key, value in matches.items()
            ):
                return event
        return None

    def count(self, kind: str, **matches: Any) -> int:
        return len(self.where(kind, **matches))

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
