"""Latency models for simulated services.

The evaluation (Section 6.2) compares three deployment configurations that
differ only in where time goes: network hops, broker replication, disk
flushes, managed-service distance. We model each delay source as a
:class:`Latency` -- a base cost plus bounded jitter -- sampled from the
kernel's seeded generator so runs stay deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

__all__ = ["Latency"]


@dataclass(frozen=True)
class Latency:
    """A delay distribution: ``base`` seconds plus uniform jitter.

    ``jitter`` is the half-width of a uniform perturbation, truncated so
    samples never go below ``floor`` (defaults to half the base, and never
    below zero). Medians therefore sit at ``base``, matching how the paper
    reports medians.
    """

    base: float
    jitter: float = 0.0
    floor: float | None = None

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"negative base latency: {self.base}")
        if self.jitter < 0:
            raise ValueError(f"negative jitter: {self.jitter}")

    def sample(self, rng: Random) -> float:
        if self.jitter == 0.0:
            return self.base
        lower = self.floor if self.floor is not None else max(0.0, self.base / 2)
        value = self.base + rng.uniform(-self.jitter, self.jitter)
        return max(lower, value)

    def scaled(self, factor: float) -> "Latency":
        return Latency(self.base * factor, self.jitter * factor, self.floor)

    @staticmethod
    def fixed(seconds: float) -> "Latency":
        return Latency(seconds, 0.0)

    @staticmethod
    def around(seconds: float, spread: float) -> "Latency":
        """Base ``seconds`` with +/- ``spread`` uniform jitter."""
        return Latency(seconds, spread)
