"""Runtime states of the formal semantics (Section 3.2).

A runtime state is the triple ``(flow, ensemble, persistent state)``:

- a *flow* is a totally ordered list of messages (requests and responses);
- an *ensemble* maps request ids to processes tagged with actor references;
  a process is a sequel ``s`` or a guarded sequel ``i' > s`` awaiting the
  result of nested invocation ``i'``;
- the *persistent state* maps actor references to actor states, with an
  implicit empty default.

Everything is immutable and hashable so the explorer can memoize states.
Actor references, method names, and values are plain hashable Python values
(strings / ints / tuples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

__all__ = [
    "Ensemble",
    "Guard",
    "Msg",
    "ProcEntry",
    "RuntimeState",
    "initial_state",
]


@dataclass(frozen=True)
class Msg:
    """A message: request ``i -r-> a.m(v)`` or response ``i -r-> v``."""

    id: int
    ret: int | None  # return address: caller's request id, None if blank
    kind: str  # "req" | "resp"
    actor: str | None = None  # target actor (requests only)
    method: str | None = None
    value: Any = None  # argument (requests) or result (responses)

    def __repr__(self) -> str:
        if self.kind == "req":
            ret = f"<-{self.ret}" if self.ret is not None else ""
            return f"[{self.id}{ret} {self.actor}.{self.method}({self.value!r})]"
        return f"[{self.id} => {self.value!r}]"


@dataclass(frozen=True)
class Guard:
    """A guarded sequel ``i' > s``: waiting for the response to ``callee``."""

    callee: int
    sequel: Any


@dataclass(frozen=True)
class ProcEntry:
    """One ensemble entry: a process with ``id``, tagged with ``actor``."""

    id: int
    actor: str
    term: Any  # a sequel, or a Guard


class Ensemble:
    """Immutable map ``request id -> ProcEntry`` (at most one per id,
    which is exactly Theorem 3.3's shape)."""

    __slots__ = ("_entries", "_hash")

    def __init__(self, entries: tuple[ProcEntry, ...] = ()):
        by_id = {}
        for entry in entries:
            if entry.id in by_id:
                raise ValueError(f"duplicate process id {entry.id}")
            by_id[entry.id] = entry
        self._entries = tuple(sorted(by_id.values(), key=lambda e: e.id))
        self._hash = hash(self._entries)

    def with_entry(self, entry: ProcEntry) -> "Ensemble":
        others = tuple(e for e in self._entries if e.id != entry.id)
        return Ensemble(others + (entry,))

    def without(self, process_id: int) -> "Ensemble":
        return Ensemble(tuple(e for e in self._entries if e.id != process_id))

    def without_actor(self, actor: str) -> "Ensemble":
        """The failure rule: drop every process running on ``actor``."""
        return Ensemble(tuple(e for e in self._entries if e.actor != actor))

    def get(self, process_id: int) -> ProcEntry | None:
        for entry in self._entries:
            if entry.id == process_id:
                return entry
        return None

    def __contains__(self, process_id: int) -> bool:
        return self.get(process_id) is not None

    def __iter__(self) -> Iterator[ProcEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ensemble) and self._entries == other._entries

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Ensemble({list(self._entries)!r})"


@dataclass(frozen=True)
class RuntimeState:
    """``F, E, S`` plus a fresh-id counter (rule (call)'s ``i' fresh``)."""

    flow: tuple[Msg, ...]
    ensemble: Ensemble
    store: tuple[tuple[str, Any], ...]  # sorted (actor, state) pairs
    next_id: int

    # ------------------------------------------------------------------
    # store access (implicit empty default state, Section 3.2)
    # ------------------------------------------------------------------
    def actor_state(self, actor: str, default: Any = None) -> Any:
        for name, value in self.store:
            if name == actor:
                return value
        return default

    def with_actor_state(self, actor: str, value: Any) -> "RuntimeState":
        updated = tuple(
            sorted([(n, v) for n, v in self.store if n != actor] + [(actor, value)])
        )
        return RuntimeState(self.flow, self.ensemble, updated, self.next_id)

    # ------------------------------------------------------------------
    # flow access
    # ------------------------------------------------------------------
    def request(self, request_id: int) -> Msg | None:
        for msg in self.flow:
            if msg.kind == "req" and msg.id == request_id:
                return msg
        return None

    def response(self, request_id: int) -> Msg | None:
        for msg in self.flow:
            if msg.kind == "resp" and msg.id == request_id:
                return msg
        return None

    def requests(self) -> list[Msg]:
        return [msg for msg in self.flow if msg.kind == "req"]

    def responses(self) -> list[Msg]:
        return [msg for msg in self.flow if msg.kind == "resp"]

    def actors(self) -> set[str]:
        """Actors appearing anywhere (failure rule candidates)."""
        names = {msg.actor for msg in self.flow if msg.kind == "req"}
        names.update(entry.actor for entry in self.ensemble)
        names.update(name for name, _ in self.store)
        return names

    # ------------------------------------------------------------------
    # flow surgery used by the rules
    # ------------------------------------------------------------------
    def remove_message(self, target: Msg) -> tuple[Msg, ...]:
        removed = False
        out = []
        for msg in self.flow:
            if not removed and msg is target:
                removed = True
                continue
            out.append(msg)
        if not removed:
            raise ValueError(f"message not in flow: {target!r}")
        return tuple(out)

    def replace_message(self, target: Msg, replacement: Msg) -> tuple[Msg, ...]:
        """In-place substitution -- the (tail-self) rule keeps the message's
        position so the logical actor lock is retained."""
        out = []
        replaced = False
        for msg in self.flow:
            if not replaced and msg is target:
                out.append(replacement)
                replaced = True
            else:
                out.append(msg)
        if not replaced:
            raise ValueError(f"message not in flow: {target!r}")
        return tuple(out)

    def __repr__(self) -> str:
        return (
            f"RuntimeState(flow={list(self.flow)!r}, ensemble={self.ensemble!r}, "
            f"store={dict(self.store)!r})"
        )


def initial_state(actor: str, method: str, arg: Any = None,
                  store: dict[str, Any] | None = None) -> RuntimeState:
    """``{i -> a.m(v)}, (emptyset), (emptyset)`` -- the paper's initial
    runtime state: one request with the main invocation, no return address."""
    root = Msg(id=0, ret=None, kind="req", actor=actor, method=method, value=arg)
    packed = tuple(sorted((store or {}).items()))
    return RuntimeState(flow=(root,), ensemble=Ensemble(), store=packed, next_id=1)
