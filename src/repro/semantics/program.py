"""The base-language abstraction of Section 3.1.

A program is specified as a set of valid transitions over terms. We expose
that set through three enumerators (each may return several outcomes --
the semantics is a relation, not a function):

- ``begin(method, arg, state)`` -- the (begin) form ``m(v)/p -> s/p``;
- ``outcomes(sequel, state)`` -- the (step), (end), (call), (tell) and
  (tail-call) forms out of a sequel;
- ``resume(sequel, value, state)`` -- the (return) form ``v > s/p -> s'/p``.

Only (step) may change the actor state, matching the paper's forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Protocol

__all__ = [
    "CallOut",
    "EndOut",
    "Outcome",
    "Program",
    "StepOut",
    "TailOut",
    "TellOut",
]


@dataclass(frozen=True)
class StepOut:
    """``s/p -> s'/p'``"""

    sequel: Any
    state: Any


@dataclass(frozen=True)
class EndOut:
    """``s/p -> v/p``"""

    value: Any


@dataclass(frozen=True)
class CallOut:
    """``s/p -> a.m(v) > s'/p``"""

    actor: str
    method: str
    arg: Any
    sequel: Any


@dataclass(frozen=True)
class TellOut:
    """``s/p -> a.m(v) (tell) s'/p``"""

    actor: str
    method: str
    arg: Any
    sequel: Any


@dataclass(frozen=True)
class TailOut:
    """``s/p -> a.m(v)/p``"""

    actor: str
    method: str
    arg: Any


Outcome = StepOut | EndOut | CallOut | TellOut | TailOut


class Program(Protocol):
    """The transition relation of a fixed but arbitrary program."""

    def begin(self, method: str, arg: Any, state: Any) -> Iterable[Any]:
        """Sequels reachable by the (begin) form from ``m(v)/p``."""
        ...

    def outcomes(self, sequel: Any, state: Any) -> Iterable[Outcome]:
        """All transitions out of ``s/p``."""
        ...

    def resume(self, sequel: Any, value: Any, state: Any) -> Iterable[Any]:
        """Sequels reachable by the (return) form from ``v > s/p``."""
        ...
