"""Monitors for Theorems 3.1-3.4, checked on every explored state.

- 3.1 (retry): once a request has started running, it stays reachable from
  its actor for as long as its request message is in the flow;
- 3.2 (no retry after success): once a response for ``i`` has existed, no
  process with id ``i`` ever exists again;
- 3.3 (no concurrent retries): at most one process per request id;
- 3.4 (happen-before): a request with a pending nested call is not runnable.

3.1 and 3.2 relate different states along a path, so the explorer threads
two sets through each node: ``started`` (ids that had a process, tagged
with the (actor, method) invocation they began; tags are retired when a
tail-other retargets the request) and ``responded`` (ids that ever had a
response in the flow, monotone).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.semantics.predicates import reachable, runnable
from repro.semantics.state import RuntimeState

__all__ = ["TheoremViolation", "make_monitors"]


@dataclass
class TheoremViolation(AssertionError):
    """An explored state falsifies one of the paper's theorems."""

    theorem: str
    description: str
    state: RuntimeState

    def __str__(self) -> str:
        return f"{self.theorem}: {self.description}\nstate: {self.state!r}"


def check_retry_reachability(
    state: RuntimeState, started: frozenset, responded: frozenset
) -> None:
    """Theorem 3.1, with the tag read against the request's current target.

    A tail call (tail-other) legitimately retargets the request: the id
    survives, the target changes, and the request may transiently queue
    behind the new actor's older invocations before re-beginning there.
    This holds even when a tail-call chain returns to an actor it already
    ran on (a -> b -> a): the final link is a *new* invocation of ``a`` and
    may queue behind requests that arrived meanwhile, so the tag must be
    compared against the full (actor, method) target, not just the actor.
    (Random-program exploration exposes both cases; the paper's statement
    binds the tag to the invocation the process ran, which only coincides
    with the request's current target until the first tail call.)
    The enforced invariant: once a request has begun an invocation, it
    stays reachable from that actor for as long as it still targets that
    same invocation.
    """
    for started_id, actor, method in started:
        msg = state.request(started_id)
        if msg is None or msg.actor != actor or msg.method != method:
            continue  # answered, or retargeted by a tail call
        if not reachable(started_id, actor, state.flow):
            raise TheoremViolation(
                "Theorem 3.1",
                f"request {started_id} ran on {actor!r} but is no longer "
                "reachable",
                state,
            )


def check_no_retry_after_success(
    state: RuntimeState, started: frozenset, responded: frozenset
) -> None:
    """Theorem 3.2."""
    for entry in state.ensemble:
        if entry.id in responded:
            raise TheoremViolation(
                "Theorem 3.2",
                f"process {entry.id} exists although a response was emitted",
                state,
            )


def check_single_process_per_id(
    state: RuntimeState, started: frozenset, responded: frozenset
) -> None:
    """Theorem 3.3 (structural: the Ensemble type enforces it; verify)."""
    seen = set()
    for entry in state.ensemble:
        if entry.id in seen:  # pragma: no cover - Ensemble forbids this
            raise TheoremViolation(
                "Theorem 3.3",
                f"two processes share id {entry.id}",
                state,
            )
        seen.add(entry.id)


def check_happen_before(
    state: RuntimeState, started: frozenset, responded: frozenset
) -> None:
    """Theorem 3.4."""
    for msg in state.requests():
        if msg.ret is None:
            continue
        if runnable(msg.ret, state.flow):
            raise TheoremViolation(
                "Theorem 3.4",
                f"request {msg.ret} is runnable despite pending callee {msg.id}",
                state,
            )


def make_monitors():
    """All four theorem monitors, in the paper's order."""
    return (
        check_retry_reachability,
        check_no_retry_after_success,
        check_single_process_per_id,
        check_happen_before,
    )
