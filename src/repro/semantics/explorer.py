"""Bounded exhaustive exploration of the semantics' state space.

Breadth-first search over :class:`RuntimeState` with a failure budget:
every path may apply the failure rule at most ``max_failures`` times
(singleton failures compose, so this covers all failure sets of that size).
Theorem monitors run on every state; quiescent states (no successors without
new failures) are collected so analyses can assert on final stores --
e.g. "the counter is exactly one higher on every quiescent state".

A stuck state that still holds pending requests is *not* quiescent -- it is
a deadlock, reported separately in :attr:`ExplorationResult.deadlocked`.
Synchronous cross-chain call cycles genuinely deadlock in KAR (two call
chains, each holding its actor's logical lock, calling into each other's
actor): a failure-induced retry re-executes its nested call with a fresh id
(Section 2.3's nested accumulator shows retries repeat nested calls), so the
re-issued call can queue behind a concurrently forked chain and close the
cycle. The theorems do not claim deadlock freedom for such programs, so the
explorer must not count these stuck states among the completed ones.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.semantics.rules import Labelled, RuleEngine
from repro.semantics.state import RuntimeState

__all__ = ["ExplorationResult", "Explorer"]


@dataclass
class ExplorationResult:
    """Everything learned from one bounded exploration."""

    states_visited: int
    quiescent: list[RuntimeState]
    #: One representative rule-trace per quiescent state (same order).
    traces: list[tuple[tuple[str, tuple], ...]]
    truncated: bool = False
    #: Stuck states with pending requests: cross-chain call deadlocks.
    deadlocked: list[RuntimeState] = field(default_factory=list)

    def quiescent_stores(self) -> list[dict]:
        return [dict(state.store) for state in self.quiescent]

    def find_quiescent(
        self, predicate: Callable[[RuntimeState], bool]
    ) -> tuple[RuntimeState, tuple] | None:
        """A quiescent state (and its trace) satisfying ``predicate``."""
        for state, trace in zip(self.quiescent, self.traces):
            if predicate(state):
                return state, trace
        return None


@dataclass
class _Node:
    state: RuntimeState
    failures_left: int
    started: frozenset  # {(id, actor, method)} -- ids that ever had a process
    responded: frozenset  # ids that ever had a response in the flow
    trace: tuple = ()


class Explorer:
    """BFS with memoization and invariant monitors."""

    def __init__(
        self,
        program: Any,
        cancellation: bool = False,
        preemption: bool = False,
        max_failures: int = 0,
        max_states: int = 200_000,
        monitors: Iterable[Callable] = (),
        keep_traces: bool = True,
    ):
        self.engine = RuleEngine(program, cancellation, preemption)
        self.max_failures = max_failures
        self.max_states = max_states
        self.monitors = tuple(monitors)
        self.keep_traces = keep_traces

    def explore(self, initial: RuntimeState) -> ExplorationResult:
        start = _Node(
            state=initial,
            failures_left=self.max_failures,
            started=frozenset(),
            responded=frozenset(),
        )
        queue: deque[_Node] = deque([start])
        visited: set = set()
        quiescent: list[RuntimeState] = []
        deadlocked: list[RuntimeState] = []
        traces: list[tuple] = []
        quiescent_seen: set = set()
        deadlocked_seen: set = set()
        count = 0
        truncated = False

        while queue:
            node = queue.popleft()
            key = (node.state, node.failures_left, node.started, node.responded)
            if key in visited:
                continue
            visited.add(key)
            count += 1
            if count > self.max_states:
                truncated = True
                break
            for monitor in self.monitors:
                monitor(node.state, node.started, node.responded)

            progressed = False
            failure_successors: list[Labelled] = []
            for labelled in self.engine.successors(
                node.state, allow_failure=node.failures_left > 0
            ):
                if labelled.rule == "failure":
                    failure_successors.append(labelled)
                    continue
                progressed = True
                queue.append(self._advance(node, labelled, failure=False))
            for labelled in failure_successors:
                queue.append(self._advance(node, labelled, failure=True))

            if not progressed:
                fingerprint = node.state
                if node.state.requests():
                    # Pending work that no rule can advance: a deadlock
                    # (blocked cross-chain call cycle), not a completion.
                    if fingerprint not in deadlocked_seen:
                        deadlocked_seen.add(fingerprint)
                        deadlocked.append(node.state)
                elif fingerprint not in quiescent_seen:
                    quiescent_seen.add(fingerprint)
                    quiescent.append(node.state)
                    traces.append(node.trace)

        return ExplorationResult(
            states_visited=count,
            quiescent=quiescent,
            traces=traces,
            truncated=truncated,
            deadlocked=deadlocked,
        )

    def _advance(self, node: _Node, labelled: Labelled, failure: bool) -> _Node:
        started = node.started
        if labelled.rule == "begin":
            request_id, actor, method = labelled.detail
            started = started | {(request_id, actor, method)}
        elif labelled.rule == "tail-other":
            # The request re-queues at the back of another actor's line: its
            # prior incarnations' reachability tags no longer apply (even if
            # the chain later returns to the same actor and method). The new
            # incarnation is tagged again when it begins.
            request_id = labelled.detail[0]
            started = frozenset(
                tag for tag in started if tag[0] != request_id
            )
        responded = node.responded
        new_responses = {
            msg.id for msg in labelled.state.flow if msg.kind == "resp"
        }
        if not new_responses.issubset(responded):
            responded = responded | frozenset(new_responses)
        trace = (
            node.trace + ((labelled.rule, labelled.detail),)
            if self.keep_traces
            else ()
        )
        return _Node(
            state=labelled.state,
            failures_left=node.failures_left - (1 if failure else 0),
            started=started,
            responded=responded,
            trace=trace,
        )
