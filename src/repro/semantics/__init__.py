"""Executable formal semantics of KAR (Section 3).

This package implements the paper's process calculus literally:

- :mod:`repro.semantics.state` -- messages, flows, ensembles, persistent
  state, runtime states (immutable and hashable);
- :mod:`repro.semantics.program` -- the base-language abstraction of
  Section 3.1: a program is a set of transitions over terms;
- :mod:`repro.semantics.lang` -- a mini actor language (structured AST)
  compiled to the transition form, used to author model programs;
- :mod:`repro.semantics.predicates` -- ``reachable`` / ``runnable`` /
  ``preemptable`` (Sections 3.4, 3.6);
- :mod:`repro.semantics.rules` -- the eight rules of Figure 3 plus the
  failure rule and Figure 4's cancellation/preemption;
- :mod:`repro.semantics.explorer` -- bounded exhaustive state-space
  exploration with invariant monitors;
- :mod:`repro.semantics.theorems` -- monitors for Theorems 3.1-3.4;
- :mod:`repro.semantics.examples` -- the paper's model programs (Latch
  getset, the three Accumulator increment variants, the reentrancy example).
"""

from repro.semantics.explorer import ExplorationResult, Explorer
from repro.semantics.lang import (
    Assign,
    BinOp,
    CallExpr,
    GetState,
    If,
    Lit,
    MethodDef,
    ModelProgram,
    Return,
    SetState,
    TailStmt,
    TellStmt,
    Var,
    compile_method,
)
from repro.semantics.predicates import preemptable, reachable, runnable
from repro.semantics.rules import RuleEngine
from repro.semantics.state import (
    Ensemble,
    Guard,
    Msg,
    ProcEntry,
    RuntimeState,
    initial_state,
)
from repro.semantics.theorems import TheoremViolation, make_monitors

__all__ = [
    "Assign",
    "BinOp",
    "CallExpr",
    "Ensemble",
    "ExplorationResult",
    "Explorer",
    "GetState",
    "Guard",
    "If",
    "Lit",
    "MethodDef",
    "ModelProgram",
    "Msg",
    "ProcEntry",
    "Return",
    "RuleEngine",
    "RuntimeState",
    "SetState",
    "TailStmt",
    "TellStmt",
    "TheoremViolation",
    "Var",
    "compile_method",
    "initial_state",
    "make_monitors",
    "preemptable",
    "reachable",
    "runnable",
]
