"""The ``reachable``, ``runnable`` and ``preemptable`` predicates.

Section 3.4: in a non-reentrant in-order actor system, an invocation is
runnable iff it is the oldest enqueued on its actor. KAR generalizes this:

- ``reachable(i, a, F)``: the leftmost (oldest) request targeting ``a`` is
  reachable from ``a``; so is any request transitively nested in it, through
  return addresses -- this is the logical actor lock plus reentrancy;
- ``runnable(i, F)``: request ``i`` targeting ``a`` may run iff it is
  reachable from ``a`` *and* no request in the flow has return address ``i``
  (the happen-before condition: a retried caller waits for every callee of
  any prior attempt);
- ``preemptable`` (Section 3.6): a request whose caller failed, or nested in
  one, may be preempted top-down.
"""

from __future__ import annotations

from repro.semantics.state import Ensemble, Guard, Msg

__all__ = ["preemptable", "reachable", "runnable"]


def _leftmost_request_for(actor: str, flow: tuple[Msg, ...]) -> Msg | None:
    for msg in flow:
        if msg.kind == "req" and msg.actor == actor:
            return msg
    return None


def reachable(request_id: int, actor: str, flow: tuple[Msg, ...]) -> bool:
    """(leftmost) + (nested) of Section 3.4, by induction on return
    addresses (chains are finite: ids strictly precede their children)."""
    leftmost = _leftmost_request_for(actor, flow)
    if leftmost is None:
        return False
    current = request_id
    seen: set[int] = set()
    while current is not None and current not in seen:
        seen.add(current)
        if current == leftmost.id:
            return True
        msg = _request(current, flow)
        if msg is None:
            return False  # (nested) requires the caller's request in F
        current = msg.ret
    return False


def _request(request_id: int, flow: tuple[Msg, ...]) -> Msg | None:
    for msg in flow:
        if msg.kind == "req" and msg.id == request_id:
            return msg
    return None


def runnable(request_id: int, flow: tuple[Msg, ...]) -> bool:
    msg = _request(request_id, flow)
    if msg is None:
        return False
    if not reachable(request_id, msg.actor, flow):
        return False
    for other in flow:
        if other.kind == "req" and other.ret == request_id:
            return False  # a callee from a prior attempt is still pending
    return True


def _no_guard_waiting(request_id: int, ensemble: Ensemble) -> bool:
    for entry in ensemble:
        if isinstance(entry.term, Guard) and entry.term.callee == request_id:
            return False
    return True


def preemptable(request_id: int, flow: tuple[Msg, ...], ensemble: Ensemble) -> bool:
    """(preemptable-root) / (preemptable-nested) of Section 3.6.

    A nested request is preemptable if no process waits for its result
    (its caller failed), or if its caller's request is itself preemptable.
    """
    msg = _request(request_id, flow)
    if msg is None or msg.ret is None:
        return False  # only nested invocations are preemptable
    if _no_guard_waiting(request_id, ensemble):
        return True
    return preemptable(msg.ret, flow, ensemble)
