"""The transition rules of Figures 3 and 4 plus the failure rule.

:class:`RuleEngine.successors` enumerates every state reachable in one step,
each labelled with the rule that produced it -- the explorer uses the labels
to build readable counterexample traces and the figure benches to render
timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.semantics.predicates import preemptable, reachable, runnable
from repro.semantics.program import (
    CallOut,
    EndOut,
    StepOut,
    TailOut,
    TellOut,
)
from repro.semantics.state import Ensemble, Guard, Msg, ProcEntry, RuntimeState

__all__ = ["Labelled", "RuleEngine"]


@dataclass(frozen=True)
class Labelled:
    """A successor state labelled with the rule application that made it."""

    rule: str
    detail: tuple
    state: RuntimeState


class RuleEngine:
    """Successor-state enumeration for a fixed program.

    ``cancellation`` / ``preemption`` enable the optional rules of Figure 4
    (the paper's implementation enables cancellation only). ``failures``
    bounds how many failure-rule applications a path may contain; the
    explorer threads the remaining budget.
    """

    def __init__(
        self,
        program: Any,
        cancellation: bool = False,
        preemption: bool = False,
    ):
        self.program = program
        self.cancellation = cancellation
        self.preemption = preemption

    # ------------------------------------------------------------------
    def successors(
        self, state: RuntimeState, allow_failure: bool
    ) -> Iterator[Labelled]:
        yield from self._begin(state)
        yield from self._process_steps(state)
        yield from self._returns(state)
        if self.cancellation:
            yield from self._cancels(state)
        if self.preemption:
            yield from self._preempts(state)
        if allow_failure:
            yield from self._failures(state)

    # ------------------------------------------------------------------
    # (begin)
    # ------------------------------------------------------------------
    def _begin(self, state: RuntimeState) -> Iterator[Labelled]:
        for msg in state.requests():
            if msg.id in state.ensemble:
                continue  # disjoint union: not already running
            if not runnable(msg.id, state.flow):
                continue
            actor_state = state.actor_state(msg.actor)
            for sequel in self.program.begin(msg.method, msg.value, actor_state):
                ensemble = state.ensemble.with_entry(
                    ProcEntry(msg.id, msg.actor, sequel)
                )
                yield Labelled(
                    "begin",
                    (msg.id, msg.actor, msg.method),
                    RuntimeState(state.flow, ensemble, state.store, state.next_id),
                )

    # ------------------------------------------------------------------
    # (step) (end) (call) (tell) (tail-self) (tail-other)
    # ------------------------------------------------------------------
    def _process_steps(self, state: RuntimeState) -> Iterator[Labelled]:
        for entry in state.ensemble:
            if isinstance(entry.term, Guard):
                continue
            actor_state = state.actor_state(entry.actor)
            for outcome in self.program.outcomes(entry.term, actor_state):
                if isinstance(outcome, StepOut):
                    successor = state.with_actor_state(entry.actor, outcome.state)
                    ensemble = successor.ensemble.with_entry(
                        ProcEntry(entry.id, entry.actor, outcome.sequel)
                    )
                    yield Labelled(
                        "step",
                        (entry.id, entry.actor),
                        RuntimeState(
                            successor.flow, ensemble, successor.store,
                            successor.next_id,
                        ),
                    )
                elif isinstance(outcome, EndOut):
                    request = state.request(entry.id)
                    if request is None:  # pragma: no cover - begin needs it
                        continue
                    flow = state.remove_message(request)
                    flow = flow + (
                        Msg(entry.id, request.ret, "resp", value=outcome.value),
                    )
                    yield Labelled(
                        "end",
                        (entry.id, entry.actor, outcome.value),
                        RuntimeState(
                            flow, state.ensemble.without(entry.id), state.store,
                            state.next_id,
                        ),
                    )
                elif isinstance(outcome, CallOut):
                    fresh = state.next_id
                    flow = state.flow + (
                        Msg(fresh, entry.id, "req", outcome.actor,
                            outcome.method, outcome.arg),
                    )
                    ensemble = state.ensemble.with_entry(
                        ProcEntry(entry.id, entry.actor,
                                  Guard(fresh, outcome.sequel))
                    )
                    yield Labelled(
                        "call",
                        (entry.id, fresh, outcome.actor, outcome.method),
                        RuntimeState(flow, ensemble, state.store, fresh + 1),
                    )
                elif isinstance(outcome, TellOut):
                    fresh = state.next_id
                    flow = state.flow + (
                        Msg(fresh, None, "req", outcome.actor,
                            outcome.method, outcome.arg),
                    )
                    ensemble = state.ensemble.with_entry(
                        ProcEntry(entry.id, entry.actor, outcome.sequel)
                    )
                    yield Labelled(
                        "tell",
                        (entry.id, fresh, outcome.actor, outcome.method),
                        RuntimeState(flow, ensemble, state.store, fresh + 1),
                    )
                elif isinstance(outcome, TailOut):
                    request = state.request(entry.id)
                    if request is None:  # pragma: no cover
                        continue
                    replacement = Msg(
                        entry.id, request.ret, "req", outcome.actor,
                        outcome.method, outcome.arg,
                    )
                    if outcome.actor == entry.actor:
                        # (tail-self): same position -- the lock is retained.
                        flow = state.replace_message(request, replacement)
                        rule = "tail-self"
                    else:
                        # (tail-other): remove, append at the end.
                        flow = state.remove_message(request) + (replacement,)
                        rule = "tail-other"
                    yield Labelled(
                        rule,
                        (entry.id, outcome.actor, outcome.method),
                        RuntimeState(
                            flow, state.ensemble.without(entry.id), state.store,
                            state.next_id,
                        ),
                    )

    # ------------------------------------------------------------------
    # (return)
    # ------------------------------------------------------------------
    def _returns(self, state: RuntimeState) -> Iterator[Labelled]:
        for entry in state.ensemble:
            if not isinstance(entry.term, Guard):
                continue
            response = state.response(entry.term.callee)
            if response is None:
                continue
            actor_state = state.actor_state(entry.actor)
            for sequel in self.program.resume(
                entry.term.sequel, response.value, actor_state
            ):
                flow = state.remove_message(response)
                ensemble = state.ensemble.with_entry(
                    ProcEntry(entry.id, entry.actor, sequel)
                )
                yield Labelled(
                    "return",
                    (entry.id, entry.term.callee),
                    RuntimeState(flow, ensemble, state.store, state.next_id),
                )

    # ------------------------------------------------------------------
    # (failure): remove all processes on one actor (singleton failures
    # compose to arbitrary sets, so exploring singletons is complete)
    # ------------------------------------------------------------------
    def _failures(self, state: RuntimeState) -> Iterator[Labelled]:
        affected = sorted({entry.actor for entry in state.ensemble})
        for actor in affected:
            yield Labelled(
                "failure",
                (actor,),
                RuntimeState(
                    state.flow,
                    state.ensemble.without_actor(actor),
                    state.store,
                    state.next_id,
                ),
            )

    # ------------------------------------------------------------------
    # (cancel) -- Figure 4
    # ------------------------------------------------------------------
    def _cancels(self, state: RuntimeState) -> Iterator[Labelled]:
        for msg in state.requests():
            if msg.ret is None:
                continue  # only nested invocations
            if not runnable(msg.id, state.flow):
                continue
            if msg.id in state.ensemble:
                continue  # already running: cancel must not interfere
            if any(
                isinstance(entry.term, Guard) and entry.term.callee == msg.id
                for entry in state.ensemble
            ):
                continue  # someone still waits for the result
            yield Labelled(
                "cancel",
                (msg.id,),
                RuntimeState(
                    state.remove_message(msg), state.ensemble, state.store,
                    state.next_id,
                ),
            )

    # ------------------------------------------------------------------
    # (preempt) -- Figure 4
    # ------------------------------------------------------------------
    def _preempts(self, state: RuntimeState) -> Iterator[Labelled]:
        for msg in state.requests():
            if msg.ret is None:
                continue
            if not runnable(msg.id, state.flow):
                continue
            if not preemptable(msg.id, state.flow, state.ensemble):
                continue
            yield Labelled(
                "preempt",
                (msg.id,),
                RuntimeState(
                    state.remove_message(msg),
                    state.ensemble.without(msg.id),
                    state.store,
                    state.next_id,
                ),
            )
