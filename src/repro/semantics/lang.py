"""A mini actor language compiled to the transition form of Section 3.1.

The paper abstracts method bodies into families of sequels ("intermediate
points in the execution ... combined with the local state"). Writing those
families by hand is error-prone, so this module provides a small structured
AST and a compiler into a bytecode whose program counter + locals *are* the
sequel. One bytecode instruction corresponds to one (step) transition (or to
a (call)/(tell)/(tail-call)/(end) form), so failure interleavings explored by
the model checker land between every pair of source-level operations.

AST
---

Statements: :class:`Assign`, :class:`SetState`, :class:`If`,
:class:`Return`, :class:`TellStmt`, :class:`TailStmt`.
Expressions: :class:`Lit`, :class:`Var`, :class:`GetState`,
:class:`BinOp`, :class:`CallExpr` (only as the right-hand side of an
``Assign`` -- nested calls suspend the frame).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.semantics.program import (
    CallOut,
    EndOut,
    Outcome,
    StepOut,
    TailOut,
    TellOut,
)

__all__ = [
    "Assign",
    "BinOp",
    "CallExpr",
    "GetState",
    "If",
    "Lit",
    "MethodDef",
    "ModelProgram",
    "Return",
    "SetState",
    "TailStmt",
    "TellStmt",
    "Var",
    "compile_method",
]


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Lit:
    value: Any


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class GetState:
    """Read the whole actor state (the paper's ``p``)."""


@dataclass(frozen=True)
class BinOp:
    op: str  # one of + - * == != < <=
    left: Any
    right: Any


@dataclass(frozen=True)
class CallExpr:
    """A nested blocking invocation; only legal as an Assign's expression."""

    actor: Any  # expression evaluating to an actor name
    method: str
    arg: Any  # expression


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Assign:
    name: str
    expr: Any


@dataclass(frozen=True)
class SetState:
    expr: Any


@dataclass(frozen=True)
class If:
    cond: Any
    then: tuple
    orelse: tuple = ()


@dataclass(frozen=True)
class Return:
    expr: Any = Lit(None)


@dataclass(frozen=True)
class TellStmt:
    actor: Any
    method: str
    arg: Any


@dataclass(frozen=True)
class TailStmt:
    actor: Any
    method: str
    arg: Any


@dataclass(frozen=True)
class MethodDef:
    """A named method: one parameter, a tuple of statements."""

    name: str
    param: str
    body: tuple


# ---------------------------------------------------------------------------
# bytecode (the compiled transition form)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _IEval:
    dst: str
    expr: Any  # Lit | Var | GetState | BinOp (pure; one (step))


@dataclass(frozen=True)
class _IWriteState:
    expr: Any


@dataclass(frozen=True)
class _ICall:
    dst: str
    actor: Any
    method: str
    arg: Any


@dataclass(frozen=True)
class _ITell:
    actor: Any
    method: str
    arg: Any


@dataclass(frozen=True)
class _ITail:
    actor: Any
    method: str
    arg: Any


@dataclass(frozen=True)
class _IReturn:
    expr: Any


@dataclass(frozen=True)
class _IBranchIfFalse:
    cond: Any
    target: int


@dataclass(frozen=True)
class _IGoto:
    target: int


class CompileError(Exception):
    """The method body is outside the supported fragment."""


def _check_pure(expr: Any) -> None:
    if isinstance(expr, CallExpr):
        raise CompileError("nested calls are only allowed as 'Assign' values")
    if isinstance(expr, BinOp):
        _check_pure(expr.left)
        _check_pure(expr.right)


def compile_method(method: MethodDef) -> tuple:
    """Compile an AST body to bytecode; one instruction per transition."""
    code: list = []

    def emit(instruction) -> int:
        code.append(instruction)
        return len(code) - 1

    def compile_block(statements: Iterable[Any]) -> None:
        for statement in statements:
            compile_statement(statement)

    def compile_statement(statement: Any) -> None:
        if isinstance(statement, Assign):
            if isinstance(statement.expr, CallExpr):
                call = statement.expr
                _check_pure(call.actor)
                _check_pure(call.arg)
                emit(_ICall(statement.name, call.actor, call.method, call.arg))
            else:
                _check_pure(statement.expr)
                emit(_IEval(statement.name, statement.expr))
        elif isinstance(statement, SetState):
            _check_pure(statement.expr)
            emit(_IWriteState(statement.expr))
        elif isinstance(statement, Return):
            _check_pure(statement.expr)
            emit(_IReturn(statement.expr))
        elif isinstance(statement, TellStmt):
            _check_pure(statement.arg)
            emit(_ITell(statement.actor, statement.method, statement.arg))
        elif isinstance(statement, TailStmt):
            _check_pure(statement.arg)
            emit(_ITail(statement.actor, statement.method, statement.arg))
        elif isinstance(statement, If):
            _check_pure(statement.cond)
            branch_at = emit(_IBranchIfFalse(statement.cond, -1))
            compile_block(statement.then)
            if statement.orelse:
                goto_at = emit(_IGoto(-1))
                code[branch_at] = _IBranchIfFalse(statement.cond, len(code))
                compile_block(statement.orelse)
                code[goto_at] = _IGoto(len(code))
            else:
                code[branch_at] = _IBranchIfFalse(statement.cond, len(code))
        else:
            raise CompileError(f"unsupported statement: {statement!r}")

    compile_block(method.body)
    code.append(_IReturn(Lit(None)))  # implicit return at fall-off
    return tuple(code)


# ---------------------------------------------------------------------------
# evaluation of pure expressions
# ---------------------------------------------------------------------------

_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


def _eval(expr: Any, locals_: dict, state: Any) -> Any:
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Var):
        try:
            return locals_[expr.name]
        except KeyError:
            raise CompileError(f"unbound variable {expr.name!r}") from None
    if isinstance(expr, GetState):
        return state
    if isinstance(expr, BinOp):
        return _BINOPS[expr.op](
            _eval(expr.left, locals_, state), _eval(expr.right, locals_, state)
        )
    raise CompileError(f"unsupported expression: {expr!r}")


# ---------------------------------------------------------------------------
# the program: sequels are (method, pc, locals) tuples
# ---------------------------------------------------------------------------

def _pack(locals_: dict) -> tuple:
    return tuple(sorted(locals_.items()))


def _unpack(packed: tuple) -> dict:
    return dict(packed)


@dataclass(frozen=True)
class _Sequel:
    method: str
    pc: int
    locals: tuple

    def __repr__(self) -> str:
        return f"<{self.method}@{self.pc} {dict(self.locals)!r}>"


@dataclass(frozen=True)
class _AwaitSequel:
    """Continuation of a nested call: resume stores the value into ``dst``."""

    method: str
    pc: int
    locals: tuple
    dst: str

    def __repr__(self) -> str:
        return f"<{self.method}@{self.pc} await->{self.dst}>"


@dataclass
class ModelProgram:
    """A compiled model: the Program protocol over mini-language methods."""

    methods: dict[str, MethodDef] = field(default_factory=dict)
    _code: dict[str, tuple] = field(default_factory=dict)

    def define(self, method: MethodDef) -> "ModelProgram":
        self.methods[method.name] = method
        self._code[method.name] = compile_method(method)
        return self

    def code(self, method: str) -> tuple:
        try:
            return self._code[method]
        except KeyError:
            raise CompileError(f"unknown method {method!r}") from None

    # -- Program protocol ------------------------------------------------
    def begin(self, method: str, arg: Any, state: Any):
        definition = self.methods.get(method)
        if definition is None:
            raise CompileError(f"unknown method {method!r}")
        yield _Sequel(method, 0, _pack({definition.param: arg}))

    def outcomes(self, sequel: Any, state: Any):
        instruction = self.code(sequel.method)[sequel.pc]
        locals_ = _unpack(sequel.locals)
        if isinstance(instruction, _IEval):
            locals_[instruction.dst] = _eval(instruction.expr, locals_, state)
            yield StepOut(
                _Sequel(sequel.method, sequel.pc + 1, _pack(locals_)), state
            )
        elif isinstance(instruction, _IWriteState):
            new_state = _eval(instruction.expr, locals_, state)
            yield StepOut(
                _Sequel(sequel.method, sequel.pc + 1, sequel.locals), new_state
            )
        elif isinstance(instruction, _ICall):
            yield CallOut(
                actor=_eval(instruction.actor, locals_, state),
                method=instruction.method,
                arg=_eval(instruction.arg, locals_, state),
                sequel=_AwaitSequel(
                    sequel.method, sequel.pc + 1, sequel.locals, instruction.dst
                ),
            )
        elif isinstance(instruction, _ITell):
            yield TellOut(
                actor=_eval(instruction.actor, locals_, state),
                method=instruction.method,
                arg=_eval(instruction.arg, locals_, state),
                sequel=_Sequel(sequel.method, sequel.pc + 1, sequel.locals),
            )
        elif isinstance(instruction, _ITail):
            yield TailOut(
                actor=_eval(instruction.actor, locals_, state),
                method=instruction.method,
                arg=_eval(instruction.arg, locals_, state),
            )
        elif isinstance(instruction, _IReturn):
            yield EndOut(_eval(instruction.expr, locals_, state))
        elif isinstance(instruction, _IBranchIfFalse):
            taken = sequel.pc + 1
            if not _eval(instruction.cond, locals_, state):
                taken = instruction.target
            yield StepOut(_Sequel(sequel.method, taken, sequel.locals), state)
        elif isinstance(instruction, _IGoto):
            yield StepOut(
                _Sequel(sequel.method, instruction.target, sequel.locals), state
            )
        else:  # pragma: no cover - exhaustive by construction
            raise CompileError(f"unknown instruction {instruction!r}")

    def resume(self, sequel: Any, value: Any, state: Any):
        if not isinstance(sequel, _AwaitSequel):
            raise CompileError(f"resume on a non-awaiting sequel: {sequel!r}")
        locals_ = _unpack(sequel.locals)
        locals_[sequel.dst] = value
        yield _Sequel(sequel.method, sequel.pc, _pack(locals_))
