"""The paper's worked examples as model programs.

- :func:`latch_getset` -- Section 3.1's ``getset`` transition family;
- :func:`accumulator_tail` / :func:`accumulator_unsafe` /
  :func:`accumulator_nested` -- the three increment variants of Section 2.3
  (the tail-call version is the only fault-tolerant one);
- :func:`nested_call_model` -- the caller/callee pair of Figure 1;
- :func:`reentrancy_model` -- A.main -> B.task -> A.callback of Section 2.2.

In these models the external store of the Accumulator example is folded into
the wrapper actor's persistent state (the formal semantics' ``S`` survives
failures exactly like the external store does).
"""

from __future__ import annotations

from typing import Any

from repro.semantics.lang import (
    Assign,
    BinOp,
    CallExpr,
    GetState,
    Lit,
    MethodDef,
    ModelProgram,
    Return,
    SetState,
    TailStmt,
    Var,
)
from repro.semantics.state import RuntimeState, initial_state

__all__ = [
    "accumulator_nested",
    "accumulator_tail",
    "accumulator_unsafe",
    "latch_getset",
    "nested_call_model",
    "reentrancy_model",
]


def latch_getset() -> tuple[ModelProgram, RuntimeState]:
    """``getset(v)``: swap the actor state with ``v``, return the old value.

    Matches the paper's transition family: in_v -> out_p -> return p."""
    program = ModelProgram()
    program.define(
        MethodDef(
            "getset",
            "v",
            (
                Assign("old", GetState()),  # in_v / p -> out_p / p
                SetState(Var("v")),  # out_p / p -> ... / v
                Return(Var("old")),
            ),
        )
    )
    return program, initial_state("latch", "getset", 42, {"latch": 7})


def accumulator_tail() -> tuple[ModelProgram, RuntimeState]:
    """Section 2.3's correct increment: read, then *tail call* set."""
    program = ModelProgram()
    program.define(
        MethodDef(
            "incr",
            "_",
            (
                Assign("value", GetState()),  # store.get
                TailStmt(Lit("acc"), "set", BinOp("+", Var("value"), Lit(1))),
            ),
        )
    )
    program.define(
        MethodDef(
            "set",
            "value",
            (
                SetState(Var("value")),  # store.set
                Return(Lit("OK")),
            ),
        )
    )
    return program, initial_state("acc", "incr", None, {"acc": 0})


def accumulator_unsafe() -> tuple[ModelProgram, RuntimeState]:
    """First incorrect variant: read and write inside one method body --
    a failure after the write but before the return double-increments."""
    program = ModelProgram()
    program.define(
        MethodDef(
            "incr",
            "_",
            (
                Assign("value", GetState()),
                SetState(BinOp("+", Var("value"), Lit(1))),
                Return(Lit("OK")),
            ),
        )
    )
    return program, initial_state("acc", "incr", None, {"acc": 0})


def accumulator_nested() -> tuple[ModelProgram, RuntimeState]:
    """Second incorrect variant: a *nested* call to set instead of a tail
    call -- a failure after set returns but before incr completes repeats
    the increment on retry."""
    program = ModelProgram()
    program.define(
        MethodDef(
            "incr",
            "_",
            (
                Assign("value", GetState()),
                Assign(
                    "result",
                    CallExpr(Lit("acc"), "set", BinOp("+", Var("value"), Lit(1))),
                ),
                Return(Var("result")),
            ),
        )
    )
    program.define(
        MethodDef(
            "set",
            "value",
            (
                SetState(Var("value")),
                Return(Lit("OK")),
            ),
        )
    )
    return program, initial_state("acc", "incr", None, {"acc": 0})


def nested_call_model() -> tuple[ModelProgram, RuntimeState]:
    """Figure 1's shape: caller (square) invokes callee (diamond)."""
    program = ModelProgram()
    program.define(
        MethodDef(
            "main",
            "v",
            (
                Assign("result", CallExpr(Lit("callee"), "task", Var("v"))),
                Return(Var("result")),
            ),
        )
    )
    program.define(
        MethodDef(
            "task",
            "v",
            (
                Assign("out", BinOp("+", Var("v"), Lit(1))),
                SetState(Var("out")),  # an observable side effect
                Return(Var("out")),
            ),
        )
    )
    return program, initial_state("caller", "main", 10)


def reentrancy_model() -> tuple[ModelProgram, RuntimeState]:
    """Section 2.2: A.main calls B.task which calls back A.callback."""
    program = ModelProgram()
    program.define(
        MethodDef(
            "main",
            "v",
            (
                Assign("result", CallExpr(Lit("b"), "task", Var("v"))),
                Return(Var("result")),
            ),
        )
    )
    program.define(
        MethodDef(
            "task",
            "v",
            (
                Assign("result", CallExpr(Lit("a"), "callback", Var("v"))),
                Return(Var("result")),
            ),
        )
    )
    program.define(
        MethodDef(
            "callback",
            "v",
            (
                SetState(BinOp("+", GetState(), Lit(1))),  # count callbacks
                Return(Var("v")),
            ),
        )
    )
    return program, initial_state("a", "main", 5, {"a": 0})


def final_counter(state: Any, actor: str = "acc") -> Any:
    """Helper for assertions on quiescent stores."""
    return dict(state.store).get(actor)
