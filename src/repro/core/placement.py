"""Actor placement: compare-and-swap on the store, plus a local cache.

Runtime processes coordinate actor placement using a CAS on the persistent
store; each runtime keeps a placement cache invalidated on component
failures (Section 4.1). Table 2's "KAR Actor (no cache)" row disables the
cache, paying one store round trip per invocation.

Resolution is *single-flight* per component: when many concurrent sends
target the same (cache-missed) actor, the first caller runs the store
GET+CAS loop and every other caller shares its in-flight result instead of
issuing redundant round trips. Single-flight is the fan-in analogue of the
placement cache and is disabled with it, so the "no cache" ablation still
pays full store cost per invocation.
"""

from __future__ import annotations

import zlib

from repro.core.errors import NoPlacementError
from repro.core.refs import ActorRef
from repro.core.sharding import parent_partition
from repro.kvstore import StoreClient

__all__ = ["PlacementService", "placement_key"]


def placement_key(ref: ActorRef) -> str:
    return f"placement:{ref.type}:{ref.id}"


def rekey_choice(
    ref: ActorRef, current: str | None, candidates: list[str]
) -> str:
    """Pick a component for ``ref`` when ``current`` is dead or unset.

    Split-aware: a hot component splits into ``<name>.s<i>`` children that
    the cluster deliberately spreads over the least-busy workers, so when
    the dead placement is a split parent its actors re-key *onto the
    children* -- an even, worker-spread re-shard of exactly the hot key
    range -- rather than scattering over every candidate (which lands
    clumps of hot actors on arbitrary components and re-creates the
    hotspot elsewhere). Symmetrically, a dead child re-keys back to its
    restarted parent after a merge, restoring the pre-split placement.
    The rule is purely name-based, so every resolver (clients and
    components alike) derives the same choice from the same candidates.

    The child choice salts the hash with the parent name: the actors on a
    split parent are exactly those whose unsalted ``stable_hash`` fell in
    the parent's bucket, so reusing that hash modulo ``len(children)``
    would send all of them to the *same* child whenever the child count
    shares a factor with the top-level component count -- the split would
    re-create the hotspot it was meant to break.
    """
    if current is not None:
        children = [
            name for name in candidates if parent_partition(name) == current
        ]
        if children:
            salted = zlib.crc32(
                f"{ref.type}:{ref.id}@{current}".encode()
            )
            return children[salted % len(children)]
        parent = parent_partition(current)
        if parent is not None and parent in candidates:
            return parent
    return candidates[ref.stable_hash() % len(candidates)]


class PlacementService:
    """Per-component placement client.

    Placement values are *component names* (stable across restarts); the
    caller resolves a name to the live member incarnation.
    """

    def __init__(self, client: StoreClient, cache_enabled: bool = True):
        self._client = client
        self._cache_enabled = cache_enabled
        self._cache: dict[ActorRef, str] = {}
        self._inflight: dict[ActorRef, object] = {}
        #: Resolutions that ran the store lookup themselves.
        self.store_resolutions = 0
        #: Resolutions that piggybacked on another caller's in-flight lookup.
        self.shared_resolutions = 0

    def invalidate_components(self, component_names: set[str]) -> None:
        """Drop cache entries pointing at failed components."""
        stale = [
            ref for ref, name in self._cache.items() if name in component_names
        ]
        for ref in stale:
            del self._cache[ref]

    def invalidate_all(self) -> None:
        self._cache.clear()

    def cache_peek(self, ref: ActorRef) -> str | None:
        return self._cache.get(ref) if self._cache_enabled else None

    async def resolve(self, ref: ActorRef, candidates: list[str]) -> str:
        """Return the component name hosting ``ref``, placing it if needed.

        ``candidates`` are the live component names that support the actor's
        type. The cache short-circuits the store on most invocations; cache
        misses read the store and, when the actor is unplaced (or placed on
        a component that no longer exists), race a CAS to claim it.
        Concurrent cache-missed resolutions for the same ``ref`` share one
        in-flight lookup instead of each paying the store round trips.
        """
        if not candidates:
            raise NoPlacementError(f"no live component supports {ref.type!r}")
        while True:
            cached = self.cache_peek(ref)
            if cached is not None and cached in candidates:
                return cached
            if not self._cache_enabled:
                # The "no cache" ablation (Table 2) measures uncached
                # placement cost: no sharing either -- every resolution
                # hits the store.
                return await self._lookup(ref, candidates)
            inflight = self._inflight.get(ref)
            if inflight is None:
                break
            self.shared_resolutions += 1
            resolved = await inflight
            if resolved in candidates:
                return resolved
            # The shared result points at a component this caller does not
            # consider live (membership moved mid-flight): re-check for a
            # fresher flight before running a lookup of our own.
        future = self._client.store.kernel.create_future()
        self._inflight[ref] = future
        try:
            resolved = await self._lookup(ref, candidates)
        except BaseException as error:
            if self._inflight.get(ref) is future:
                del self._inflight[ref]
            future.set_exception(error)
            raise
        if self._inflight.get(ref) is future:
            del self._inflight[ref]
        future.set_result(resolved)
        return resolved

    async def _lookup(self, ref: ActorRef, candidates: list[str]) -> str:
        """The store GET+CAS loop behind a cache-missed resolution."""
        self.store_resolutions += 1
        key = placement_key(ref)
        while True:
            current = await self._client.get(key)
            if current is not None and current in candidates:
                self._remember(ref, current)
                return current
            chosen = rekey_choice(ref, current, candidates)
            if await self._client.cas(key, current, chosen):
                self._remember(ref, chosen)
                return chosen
            # Lost the race; loop and adopt whatever won.

    def _remember(self, ref: ActorRef, component: str) -> None:
        if self._cache_enabled:
            self._cache[ref] = component
