"""Actor placement: compare-and-swap on the store, plus a local cache.

Runtime processes coordinate actor placement using a CAS on the persistent
store; each runtime keeps a placement cache invalidated on component
failures (Section 4.1). Table 2's "KAR Actor (no cache)" row disables the
cache, paying one store round trip per invocation.
"""

from __future__ import annotations

from repro.core.errors import NoPlacementError
from repro.core.refs import ActorRef
from repro.kvstore import StoreClient

__all__ = ["PlacementService", "placement_key"]


def placement_key(ref: ActorRef) -> str:
    return f"placement:{ref.type}:{ref.id}"


class PlacementService:
    """Per-component placement client.

    Placement values are *component names* (stable across restarts); the
    caller resolves a name to the live member incarnation.
    """

    def __init__(self, client: StoreClient, cache_enabled: bool = True):
        self._client = client
        self._cache_enabled = cache_enabled
        self._cache: dict[ActorRef, str] = {}

    def invalidate_components(self, component_names: set[str]) -> None:
        """Drop cache entries pointing at failed components."""
        stale = [
            ref for ref, name in self._cache.items() if name in component_names
        ]
        for ref in stale:
            del self._cache[ref]

    def invalidate_all(self) -> None:
        self._cache.clear()

    def cache_peek(self, ref: ActorRef) -> str | None:
        return self._cache.get(ref) if self._cache_enabled else None

    async def resolve(self, ref: ActorRef, candidates: list[str]) -> str:
        """Return the component name hosting ``ref``, placing it if needed.

        ``candidates`` are the live component names that support the actor's
        type. The cache short-circuits the store on most invocations; cache
        misses read the store and, when the actor is unplaced (or placed on
        a component that no longer exists), race a CAS to claim it.
        """
        if not candidates:
            raise NoPlacementError(f"no live component supports {ref.type!r}")
        cached = self.cache_peek(ref)
        if cached is not None and cached in candidates:
            return cached
        key = placement_key(ref)
        while True:
            current = await self._client.get(key)
            if current is not None and current in candidates:
                self._remember(ref, current)
                return current
            chosen = candidates[ref.stable_hash() % len(candidates)]
            if await self._client.cas(key, current, chosen):
                self._remember(ref, chosen)
                return chosen
            # Lost the race; loop and adopt whatever won.

    def _remember(self, ref: ActorRef, component: str) -> None:
        if self._cache_enabled:
            self._cache[ref] = component
