"""Errors surfaced by the KAR runtime."""

__all__ = [
    "ActorMethodError",
    "BreakerOpenError",
    "InvocationCancelled",
    "KarError",
    "NoPlacementError",
    "UnknownActorTypeError",
]


class KarError(Exception):
    """Base class for runtime-level failures."""


class ActorMethodError(KarError):
    """An application exception propagated from callee to caller.

    Per Section 2, exceptions in ``actor.call`` are propagated to callers
    (they are *results*, not faults -- the runtime does not retry them);
    exceptions in ``actor.tell`` are logged and discarded.
    """

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class InvocationCancelled(KarError):
    """Synthetic response for a nested call whose caller's component failed.

    Raised at the (retried) caller when cancellation is enabled and the
    callee's execution was elided (Section 4.4).
    """


class NoPlacementError(KarError):
    """No live component supports the requested actor type."""


class UnknownActorTypeError(KarError):
    """The requested actor type is not registered with the application.

    Raised at the admission edge (the :class:`~repro.core.api.KarApi`
    facade) before a request enters the runtime, so an external caller's
    typo never mints a placement entry or a journal record.
    """

    def __init__(self, actor_type: str):
        super().__init__(f"unknown actor type {actor_type!r}")
        self.actor_type = actor_type


class BreakerOpenError(KarError):
    """The (actor type, method) circuit breaker is open.

    Raised by the admission edge instead of queueing an invocation that the
    executing component would immediately divert to the dead-letter parking
    lot -- an external caller gets an immediate "unavailable, retry later"
    with the breaker's remaining cooldown, rather than a request that only
    settles after operator-driven redelivery.
    """

    def __init__(self, actor_type: str, method: str, retry_after: float):
        super().__init__(
            f"circuit breaker open for {actor_type}.{method}; "
            f"retry after {retry_after:.3f}s"
        )
        self.actor_type = actor_type
        self.method = method
        self.retry_after = retry_after
