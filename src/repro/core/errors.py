"""Errors surfaced by the KAR runtime."""

__all__ = [
    "ActorMethodError",
    "InvocationCancelled",
    "KarError",
    "NoPlacementError",
]


class KarError(Exception):
    """Base class for runtime-level failures."""


class ActorMethodError(KarError):
    """An application exception propagated from callee to caller.

    Per Section 2, exceptions in ``actor.call`` are propagated to callers
    (they are *results*, not faults -- the runtime does not retry them);
    exceptions in ``actor.tell`` are logged and discarded.
    """

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class InvocationCancelled(KarError):
    """Synthetic response for a nested call whose caller's component failed.

    Raised at the (retried) caller when cancellation is enabled and the
    callee's execution was elided (Section 4.4).
    """


class NoPlacementError(KarError):
    """No live component supports the requested actor type."""
