"""Overload control: retry budgets, circuit breakers, and dead letters.

The paper's runtime retries relentlessly until success -- the right
contract for correctness, and self-inflicted DoS at scale: one poison-pill
actor or one flood of failing invocations turns every reconciliation sweep
and every placement-retry loop into an amplifying storm (RetryGuard calls
this the dominant self-inflicted outage mode). This module bounds the
amplification without weakening exactly-once for calls that do eventually
settle:

- :class:`RetryBudget` -- a token bucket in which *first attempts* deposit
  ``retry_budget_ratio`` tokens and every runtime retry spends one, so
  retry volume is capped at a configurable fraction of real traffic (plus
  a small time-based floor so a quiesced system can still recover);
- :class:`BackoffPolicy` -- exponential backoff with full jitter
  (``uniform(0, min(cap, base * 2^attempt))``), replacing the fixed
  placement-retry sleep and de-synchronizing retry waves;
- :class:`CircuitBreaker` -- per (actor type, method) state machine that
  opens after N consecutive execution failures, half-opens on a cooldown
  clock admitting exactly one probe, and while open diverts new
  invocations to the durable dead-letter parking lot;
- :class:`DeadLetter` -- the parked envelope with its full failure history
  and attempt timestamps, durably journaled in its own topic, replayable
  via ``KarApplication.redeliver_dead_letters`` once the fault clears.

Exactly-once survives diversion because a diverted request is *never*
marked handled: its one execution happens at replay, deduplicated by the
same (request id, step) evidence and single-placement routing that make
reconciliation copies idempotent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING, Any

from repro.persist.framing import register_frame_type

if TYPE_CHECKING:
    from repro.core.config import KarConfig
    from repro.core.envelope import Request
    from repro.sim import Kernel

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BackoffPolicy",
    "CircuitBreaker",
    "DEAD_LETTER_PARTITION",
    "DeadLetter",
    "OverloadGuard",
    "RetryBudget",
]

#: Single parking-lot partition inside the application's dead-letter topic.
DEAD_LETTER_PARTITION = "parked"

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with full jitter (the AWS-style variant).

    Full jitter -- ``uniform(0, bound)`` rather than ``bound +- noise`` --
    both spreads retry waves across the whole window (no synchronized
    thundering herd) and keeps the *expected* delay at half the bound.
    """

    base: float
    cap: float

    def bound(self, attempt: int) -> float:
        """The jitter window's upper edge for the given retry attempt."""
        return min(self.cap, self.base * (2.0 ** min(attempt, 32)))

    def delay(self, attempt: int, rng: Random) -> float:
        return rng.uniform(0.0, self.bound(attempt))


class RetryBudget:
    """Token bucket capping retry amplification at a ratio of real traffic.

    First attempts are never throttled -- they only *deposit* ``ratio``
    tokens each (capped at ``burst``). Every runtime retry (placement
    re-resolve, stale-route resend, shed-mailbox re-admission) spends one
    token; when the bucket is dry the retry is deferred to another backoff
    round instead of being dropped. A small ``floor_per_sec`` trickle keeps
    recovery live when first-attempt traffic has stopped entirely.
    """

    __slots__ = (
        "_burst",
        "_floor",
        "_ratio",
        "_stamp",
        "_tokens",
        "deferred",
        "first_attempts",
        "spent",
    )

    def __init__(self, ratio: float, burst: float, floor_per_sec: float):
        self._ratio = ratio
        self._burst = burst
        self._floor = floor_per_sec
        self._tokens = burst  # start full: early recovery is never starved
        self._stamp = 0.0
        self.first_attempts = 0
        self.spent = 0
        self.deferred = 0

    def _refill(self, now: float) -> None:
        if now > self._stamp:
            self._tokens = min(
                self._burst, self._tokens + (now - self._stamp) * self._floor
            )
            self._stamp = now

    def deposit(self, now: float) -> None:
        """Record a first attempt (never throttled; earns retry credit)."""
        self._refill(now)
        self._tokens = min(self._burst, self._tokens + self._ratio)
        self.first_attempts += 1

    def try_spend(self, now: float) -> bool:
        """Spend one retry token; False means the retry must wait."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.spent += 1
            return True
        self.deferred += 1
        return False

    def balance(self, now: float) -> float:
        self._refill(now)
        return self._tokens


class CircuitBreaker:
    """Consecutive-failure breaker for one (actor type, method) key.

    closed --(threshold consecutive failures)--> open
    open --(cooldown elapses; next arrival becomes the probe)--> half_open
    half_open --(probe succeeds)--> closed
    half_open --(probe fails)--> open, with a *fresh* cooldown clock

    While open (or while a half-open probe is outstanding) arrivals are
    diverted to the dead-letter parking lot. Only the designated probe's
    outcome moves the half-open state: stragglers from before the trip are
    ignored, and concurrent arrivals during half-open never become extra
    probes.
    """

    __slots__ = (
        "consecutive_failures",
        "cooldown",
        "opened_at",
        "probe_id",
        "recent_failures",
        "state",
        "threshold",
        "transitions",
    )

    def __init__(self, threshold: int, cooldown: float, history_limit: int = 16):
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probe_id: str | None = None
        #: (time, error) of the most recent failures -- attached to every
        #: dead letter this breaker diverts, so parked calls carry the
        #: evidence of *why* the circuit tripped.
        self.recent_failures: deque[tuple[float, str]] = deque(maxlen=history_limit)
        #: (time, "from->to") state transitions (evidence surface).
        self.transitions: list[tuple[float, str]] = []

    def _move(self, state: str, now: float) -> str:
        transition = f"{self.state}->{state}"
        self.transitions.append((now, transition))
        self.state = state
        return transition

    def admit(self, request_id: str, now: float) -> bool:
        """True admits the request for execution; False diverts it.

        The transition from open to half-open happens here, on the first
        arrival after the cooldown: that request *is* the probe.
        """
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if now - self.opened_at >= self.cooldown:
                self._move(BREAKER_HALF_OPEN, now)
                self.probe_id = request_id
                return True
            return False
        # Half-open with the probe outstanding: exactly one probe at a time.
        return False

    def record_failure(self, request_id: str, now: float, error: str) -> str | None:
        """Record an execution failure; returns the transition, if any."""
        self.recent_failures.append((now, error))
        if self.state == BREAKER_HALF_OPEN:
            if request_id == self.probe_id:
                # Failed probe: re-open with a fresh cooldown clock.
                self.probe_id = None
                self.opened_at = now
                return self._move(BREAKER_OPEN, now)
        elif self.state == BREAKER_CLOSED:
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.threshold:
                self.opened_at = now
                return self._move(BREAKER_OPEN, now)
        # Open: stragglers admitted before the trip change nothing.
        return None

    def record_success(self, request_id: str, now: float) -> str | None:
        if self.state == BREAKER_HALF_OPEN and request_id == self.probe_id:
            self.probe_id = None
            self.consecutive_failures = 0
            return self._move(BREAKER_CLOSED, now)
        if self.state == BREAKER_CLOSED:
            self.consecutive_failures = 0
        return None

    def reset(self, now: float) -> str | None:
        """Force-close (dead-letter redelivery declares the fault cleared)."""
        self.consecutive_failures = 0
        self.probe_id = None
        if self.state == BREAKER_CLOSED:
            return None
        return self._move(BREAKER_CLOSED, now)


@dataclass(frozen=True, slots=True)
class DeadLetter:
    """One parked invocation: the original envelope plus its evidence.

    Durably journaled in the application's dead-letter topic (its own
    topic, outside the reconciliation catalog and the retention-expiry
    paths, so parked calls outlive the message retention window).
    ``failure_history`` is the full (timestamp, error) record that led
    here; ``request`` is the unmodified original envelope, so replay is a
    plain re-route through placement and per-component dedup.
    """

    request: "Request"
    reason: str  # "breaker_open" | "redelivery_limit"
    parked_at: float
    attempts: int
    failure_history: tuple[tuple[float, str], ...]
    parked_by: str

    def describe(self) -> dict[str, Any]:
        return {
            "request_id": self.request.request_id,
            "step": self.request.step,
            "actor": str(self.request.actor),
            "method": self.request.method,
            "reason": self.reason,
            "attempts": self.attempts,
            "parked_at": self.parked_at,
            "parked_by": self.parked_by,
            "failure_history": [
                {"at": at, "error": error} for at, error in self.failure_history
            ],
        }


#: Binary-frame table id for DeadLetter (ids below 64 are runtime-reserved).
DEAD_LETTER_TYPE_ID = 6

register_frame_type(DeadLetter, DEAD_LETTER_TYPE_ID)


class OverloadGuard:
    """Per-component overload-control state (budgets, breakers, shedding).

    One guard per component incarnation; it shares the component's fate
    exactly like its dedup evidence does. Counters are the evidence
    surface aggregated into ``KarApplication.stats()["overload"]``.
    """

    def __init__(self, config: "KarConfig", kernel: "Kernel"):
        self.kernel = kernel
        self.backoff = BackoffPolicy(
            config.retry_backoff_base, config.retry_backoff_cap
        )
        self.budget = RetryBudget(
            config.retry_budget_ratio,
            config.retry_budget_burst,
            config.retry_budget_floor_per_sec,
        )
        self.breaker_threshold = config.breaker_threshold
        self.breaker_cooldown = config.breaker_cooldown
        self.breakers: dict[tuple[str, str], CircuitBreaker] = {}
        #: Requests diverted to the parking lot by an open breaker.
        self.diverted = 0
        #: Dead letters written (breaker diverts + reconciler redelivery caps).
        self.parked = 0
        #: Retries shed from over-capacity mailboxes / re-admitted later.
        self.sheds = 0
        self.shed_requeues = 0
        #: Largest pending-queue depth observed across this component's
        #: mailboxes (admission-control evidence).
        self.max_pending = 0
        #: Shed-retry attempt counts, keyed by dedup key; cleared when the
        #: request finally executes, so the dict tracks only in-flight sheds.
        self._shed_attempts: dict[tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # circuit breakers
    # ------------------------------------------------------------------
    def _breaker(self, actor_type: str, method: str) -> CircuitBreaker | None:
        if self.breaker_threshold is None:
            return None
        key = (actor_type, method)
        breaker = self.breakers.get(key)
        if breaker is None:
            breaker = self.breakers[key] = CircuitBreaker(
                self.breaker_threshold, self.breaker_cooldown
            )
        return breaker

    def breaker_diverts(self, request: "Request", now: float) -> CircuitBreaker | None:
        """The breaker that diverts ``request``, or None to admit it."""
        breaker = self._breaker(request.actor.type, request.method)
        if breaker is None or breaker.admit(request.request_id, now):
            return None
        self.diverted += 1
        return breaker

    def record_failure(self, request: "Request", error: str, now: float) -> str | None:
        breaker = self._breaker(request.actor.type, request.method)
        if breaker is None:
            return None
        return breaker.record_failure(request.request_id, now, error)

    def record_success(self, request: "Request", now: float) -> str | None:
        breaker = self._breaker(request.actor.type, request.method)
        if breaker is None:
            return None
        return breaker.record_success(request.request_id, now)

    def reset_breakers(self, now: float) -> int:
        """Force-close every breaker (redelivery declares faults cleared)."""
        reset = 0
        for breaker in self.breakers.values():
            if breaker.reset(now) is not None:
                reset += 1
        return reset

    # ------------------------------------------------------------------
    # retry pacing (budget + jittered backoff)
    # ------------------------------------------------------------------
    async def pace_retry(self, attempt: int) -> None:
        """Sleep the jittered backoff for ``attempt``, then spend one retry
        token -- deferring through further backoff rounds while the budget
        is dry. First attempts never pass through here."""
        while True:
            await self.kernel.sleep(self.backoff.delay(attempt, self.kernel.rng))
            if self.budget.try_spend(self.kernel.now):
                return
            attempt += 1

    # ------------------------------------------------------------------
    # mailbox shedding bookkeeping
    # ------------------------------------------------------------------
    def note_shed(self, dedup_key: tuple[str, int]) -> int:
        """Record one shed of ``dedup_key``; returns its shed count (used
        as the backoff attempt number, so repeat sheds back off further)."""
        count = self._shed_attempts.get(dedup_key, 0) + 1
        self._shed_attempts[dedup_key] = count
        self.sheds += 1
        return count

    def clear_shed(self, dedup_key: tuple[str, int]) -> None:
        self._shed_attempts.pop(dedup_key, None)

    def observe_pending(self, depth: int) -> None:
        if depth > self.max_pending:
            self.max_pending = depth

    # ------------------------------------------------------------------
    # evidence surface
    # ------------------------------------------------------------------
    def stats(self, now: float) -> dict[str, Any]:
        states = {BREAKER_CLOSED: 0, BREAKER_OPEN: 0, BREAKER_HALF_OPEN: 0}
        transitions = 0
        for breaker in self.breakers.values():
            states[breaker.state] += 1
            transitions += len(breaker.transitions)
        return {
            "first_attempts": self.budget.first_attempts,
            "retries_spent": self.budget.spent,
            "retries_deferred": self.budget.deferred,
            "budget_balance": round(self.budget.balance(now), 3),
            "breakers_closed": states[BREAKER_CLOSED],
            "breakers_open": states[BREAKER_OPEN],
            "breakers_half_open": states[BREAKER_HALF_OPEN],
            "breaker_transitions": transitions,
            "diverted": self.diverted,
            "parked": self.parked,
            "mailbox_sheds": self.sheds,
            "shed_requeues": self.shed_requeues,
            "max_pending": self.max_pending,
        }
