"""Per-actor mailboxes: single-threaded execution, reentrancy, tail locks.

KAR actors are single-threaded and reentrant (Section 2.2): invocations are
queued and processed one at a time in queue order, *except* that an
invocation reaching the actor through a stack of nested calls rooted at the
current lock holder bypasses the queue and runs immediately. A tail call to
the same actor retains the lock (Section 2.3) so nothing can interleave
between the links of a tail-call chain on one actor.
"""

from __future__ import annotations

from collections import deque

from repro.core.envelope import Request

__all__ = ["ActorMailbox"]


class ActorMailbox:
    """Lock state and pending queue for one actor instance on one component.

    ``lock_root`` is the request id of the chain currently owning the actor;
    ``stack`` holds the ids of every frame of that logical call stack that is
    currently open on *this* actor (the root plus any reentrant frames).
    """

    def __init__(self, capacity: int | None = None):
        self.lock_root: str | None = None
        self.stack: set[str] = set()
        self.pending: deque[Request] = deque()
        #: Admission-control bound on ``pending``; ``None`` = unbounded.
        #: Enforced by :meth:`shed_overflow`, not by ``try_admit`` -- the
        #: queue may exceed capacity transiently (or permanently, when it
        #: holds only unsheddable first attempts).
        self.capacity = capacity

    def try_admit(self, request: Request) -> bool:
        """Return True if ``request`` may execute now; else queue it.

        Admission rules, in order:

        1. the actor is idle -> acquire the lock;
        2. the request *is* the lock holder (a tail call to self reuses the
           caller's request id; so does a recovery copy of the interrupted
           lock holder, which preserves the persisted lock across failures);
        3. the request is nested in a frame already on this actor's stack
           (reentrancy: it runs immediately, bypassing the queue);
        4. otherwise wait in queue order.
        """
        if self.lock_root is None:
            self.lock_root = request.request_id
            self.stack.add(request.request_id)
            return True
        if request.request_id == self.lock_root:
            self.stack.add(request.request_id)
            return True
        if any(ancestor in self.stack for ancestor in request.ancestors):
            self.stack.add(request.request_id)
            return True
        self.pending.append(request)
        return False

    def complete_frame(self, request: Request, tail_to_self: bool) -> Request | None:
        """Mark a frame finished; return the next request to start, if any.

        With ``tail_to_self`` the lock is *retained*: the successor (same
        request id) will be re-admitted by rule 2, and no queued invocation
        can slip in between (Section 2.3's serialization guarantee).
        """
        self.stack.discard(request.request_id)
        if request.request_id != self.lock_root:
            return None  # a reentrant frame closed; the root still owns us
        if tail_to_self:
            return None  # lock retained for the tail call's arrival
        if self.stack:
            return None  # outer frames of the chain still open
        return self._release_lock()

    def _release_lock(self) -> Request | None:
        """Free the lock, handing it to the next queued request if any."""
        self.lock_root = None
        if not self.pending:
            return None
        successor = self.pending.popleft()
        self.lock_root = successor.request_id
        self.stack.add(successor.request_id)
        return successor

    def shed_overflow(self) -> list[Request]:
        """Evict the oldest *retries* while ``pending`` exceeds capacity.

        Load shedding for overload control: only recovery copies
        (``copy_epoch > 0``) are sheddable -- they already have a paced
        re-admission path through the retry budget -- and they are shed
        oldest-first. First attempts are never shed, so a queue of fresh
        traffic is allowed to exceed capacity rather than lose work.
        """
        if self.capacity is None or len(self.pending) <= self.capacity:
            return []
        shed: list[Request] = []
        excess = len(self.pending) - self.capacity
        kept: deque[Request] = deque()
        for request in self.pending:
            if excess > 0 and request.copy_epoch > 0:
                shed.append(request)
                excess -= 1
            else:
                kept.append(request)
        self.pending = kept
        return shed

    @property
    def idle(self) -> bool:
        return self.lock_root is None and not self.pending

    # ------------------------------------------------------------------
    # passivation (idle-actor eviction)
    # ------------------------------------------------------------------
    def begin_passivation(self, token: str) -> bool:
        """Acquire the actor lock for passivation; fails unless idle.

        Holding the lock with a token no request can ever match means any
        request arriving mid-deactivate waits in ``pending`` (admission
        rule 4) instead of racing the teardown.
        """
        if not self.idle:
            return False
        self.lock_root = token
        self.stack.add(token)
        return True

    def end_passivation(self, token: str) -> Request | None:
        """Release the passivation lock; returns the request to run next,
        if any arrived while the instance was being deactivated (it will
        transparently re-activate the actor)."""
        self.stack.discard(token)
        return self._release_lock()
