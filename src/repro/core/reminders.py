"""Reminders: time-delayed, possibly periodic variants of ``actor.tell``.

Reminders are persisted in the store and delivered by the current group
leader's runtime. Delivery is at-least-once across leader failovers (a
leader that crashes between producing the tell and updating the reminder
record will cause one duplicate); the underlying tells are durable once
produced. The paper specifies reminders as tell variants (Section 2) without
prescribing their fault-tolerance internals.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.refs import ActorRef

if TYPE_CHECKING:
    from repro.core.runtime import Component

__all__ = ["ReminderAPI", "deliver_due_reminders"]

_REMINDERS_KEY = "reminders"


class ReminderAPI:
    """Schedule and cancel reminders through a component's store client.

    Bound to the calling component so a fenced (failed) component can no
    longer mutate the reminder table.
    """

    def __init__(self, component: "Component"):
        self._component = component

    async def schedule(
        self,
        reminder_id: str,
        ref: ActorRef,
        method: str,
        delay: float,
        *args: Any,
        period: float | None = None,
    ) -> None:
        """Fire ``ref.method(*args)`` after ``delay`` seconds; with
        ``period`` the reminder repeats until cancelled."""
        record = {
            "actor": (ref.type, ref.id),
            "method": method,
            "args": list(args),
            "due": self._component.kernel.now + delay,
            "period": period,
        }
        await self._component.store_client.hset(
            _REMINDERS_KEY, reminder_id, record
        )
        self._component.app.reminders_in_use = True

    async def cancel(self, reminder_id: str) -> bool:
        return await self._component.store_client.hdel(
            _REMINDERS_KEY, reminder_id
        )


async def deliver_due_reminders(component: "Component") -> int:
    """One leader tick: fire every due reminder as a tell, then update it.

    Tell first, update second: a crash in between re-fires on the next
    leader (at-least-once), never silently drops.
    """
    table = await component.store_client.hgetall(_REMINDERS_KEY)
    fired = 0
    now = component.kernel.now
    for reminder_id, record in sorted(table.items()):
        if record["due"] > now:
            continue
        ref = ActorRef(*record["actor"])
        await component.invoke(
            caller=None,
            ref=ref,
            method=record["method"],
            args=tuple(record["args"]),
            expects_reply=False,
        )
        component.trace.emit(
            "reminder.fired", reminder=reminder_id, actor=str(ref)
        )
        fired += 1
        if record["period"] is not None:
            updated = dict(record)
            updated["due"] = now + record["period"]
            await component.store_client.hset(
                _REMINDERS_KEY, reminder_id, updated
            )
        else:
            await component.store_client.hdel(_REMINDERS_KEY, reminder_id)
    return fired
