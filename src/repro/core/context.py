"""The invocation context handed to every actor method.

Mirrors the paper's SDK surface (Section 2): nested blocking calls
(``actor.call`` with the extra ``this`` argument -- carried implicitly here),
asynchronous tells, tail calls, the persistence API, and reminders. The
context knows the current request id and ancestor chain, which is exactly the
information the paper's SDKs thread through the explicit ``this`` parameter
so the runtime can permit reentrancy and orchestrate retries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.envelope import Request, TailCall
from repro.core.refs import ActorRef, actor_proxy
from repro.core.state import ActorStateAPI

if TYPE_CHECKING:
    from repro.core.runtime import Component

__all__ = ["ActorContext"]


class ActorContext:
    """Per-invocation capability object (first parameter of actor methods)."""

    def __init__(self, component: "Component", request: Request):
        self._component = component
        self._request = request

    # ------------------------------------------------------------------
    # identity and environment
    # ------------------------------------------------------------------
    @property
    def self_ref(self) -> ActorRef:
        """Reference to the actor this method runs on (the paper's ``this``)."""
        return self._request.actor

    @property
    def request_id(self) -> str:
        return self._request.request_id

    @property
    def now(self) -> float:
        return self._component.kernel.now

    actor_proxy = staticmethod(actor_proxy)

    # ------------------------------------------------------------------
    # invocations
    # ------------------------------------------------------------------
    async def call(self, ref: ActorRef, method: str, *args: Any) -> Any:
        """Nested blocking invocation (``actor.call(this, ref, method, ...)``).

        The runtime suspends this frame until the callee's response arrives;
        exceptions raised by the callee propagate here. The caller identity
        travels with the request so reentrant calls back into this call stack
        bypass the queue (Section 2.2).
        """
        return await self._component.invoke(
            caller=self._request, ref=ref, method=method, args=args,
            expects_reply=True,
        )

    async def tell(self, ref: ActorRef, method: str, *args: Any) -> None:
        """Asynchronous invocation: waits only for the request to be durably
        acknowledged by the message queue. Exceptions in the callee are
        logged and discarded (Section 2)."""
        await self._component.invoke(
            caller=self._request, ref=ref, method=method, args=args,
            expects_reply=False,
        )

    def tail_call(self, ref: ActorRef | None, method: str, *args: Any) -> TailCall:
        """Build a tail call: *return* this value from the method body.

        ``ref=None`` targets the current actor (the common
        ``actor.tailCall(this, ...)`` form); a tail call to self retains the
        actor lock across the transition (Section 2.3).
        """
        target = ref if ref is not None else self.self_ref
        return TailCall(target, method, tuple(args))

    # ------------------------------------------------------------------
    # persistence and reminders
    # ------------------------------------------------------------------
    @property
    def state(self) -> ActorStateAPI:
        """Persisted state of the current actor instance (``actor.state``).

        Backed by the hosting component's write-through cache for this
        instance: repeat reads of hot fields cost no store round trip, and
        multi-field writes batch into one.
        """
        return ActorStateAPI(
            self._component.store_client,
            self.self_ref,
            self._component.state_cache_for(self.self_ref),
        )

    def state_of(self, ref: ActorRef) -> ActorStateAPI:
        """State API for another instance (used by activate helpers/tests).

        If ``ref`` is resident on *this* component, the view shares that
        instance's write-through cache so writes stay coherent with it.
        For actors hosted elsewhere the view is uncached and direct;
        writing another component's actor state bypasses its actor lock
        (and its hosting component's cache) -- prefer invoking a method on
        it instead.
        """
        return ActorStateAPI(
            self._component.store_client,
            ref,
            self._component.existing_state_cache(ref),
        )

    @property
    def reminders(self):
        """Time-delayed, possibly periodic tells (Section 2)."""
        from repro.core.reminders import ReminderAPI

        return ReminderAPI(self._component)

    @property
    def component_name(self) -> str:
        return self._component.name

    @property
    def member_id(self) -> str:
        """The hosting component's member identity (its fencing identity)."""
        return self._component.member_id

    def external(self, service) -> Any:
        """Client for an external stateful service, bound to this
        component's identity so forceful disconnection applies (Section 2.3).
        The service must expose ``client(client_id)``."""
        return service.client(self._component.member_id)

    async def sleep(self, delay: float) -> None:
        """Simulated-time sleep (stands in for real work in examples)."""
        await self._component.kernel.sleep(delay)
