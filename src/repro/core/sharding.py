"""Consistent-hash sharding of components (partitions) across workers.

The scale-out runtime assigns each actor-hosting component -- and with it
the component's dedicated broker partition -- to one worker event loop.
The assignment must be:

- *deterministic*: every control-plane observer derives the identical map
  from the same worker set (no coordination round needed to agree on it);
- *balanced*: the throughput gates require near-perfect spread, so a plain
  hash ring (whose arc lengths vary wildly at small worker counts) is
  tightened with a bounded-load rule -- no worker takes more than
  ``ceil(items / workers)`` components, overflow walking on to the next
  worker clockwise;
- *stable*: adding or removing one worker moves only the components on the
  affected arcs (plus bounded-load overflow), not the whole map -- each
  moved component pays a drain + fence + replay handoff, so minimal
  movement is a real cost bound.

Hashing uses :func:`hashlib.blake2b` rather than Python's ``hash`` so the
ring is identical across processes and runs (``PYTHONHASHSEED`` does not
leak into placement).
"""

from __future__ import annotations

import bisect
import hashlib
import math
import re
from typing import Iterable, Mapping, Sequence

__all__ = [
    "HashRing",
    "assign_components",
    "parent_partition",
    "sub_partition_names",
]

#: Virtual nodes per worker; enough to keep arcs fine-grained at 2-8
#: workers without making ring construction a cost.
DEFAULT_REPLICAS = 64


def _point(token: str) -> int:
    """A stable 64-bit ring coordinate for ``token``."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring with virtual nodes and bounded-load lookup."""

    def __init__(self, workers: Sequence[str], replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.workers = tuple(sorted(set(workers)))
        self.replicas = replicas
        points: list[tuple[int, str]] = []
        for worker in self.workers:
            for index in range(replicas):
                points.append((_point(f"{worker}\x00{index}"), worker))
        # Ties (astronomically unlikely) break on worker id for determinism.
        points.sort()
        self._points = [point for point, _worker in points]
        self._owners = [worker for _point, worker in points]

    def successors(self, item: str) -> Iterable[str]:
        """Distinct workers in clockwise order from ``item``'s ring point."""
        if not self.workers:
            return
        start = bisect.bisect_right(self._points, _point(item))
        seen: set[str] = set()
        for offset in range(len(self._owners)):
            worker = self._owners[(start + offset) % len(self._owners)]
            if worker not in seen:
                seen.add(worker)
                yield worker
                if len(seen) == len(self.workers):
                    return

    def assign(
        self,
        items: Sequence[str],
        weights: Mapping[str, float] | None = None,
    ) -> dict[str, str]:
        """Map every item to a worker, bounded-load balanced.

        Items are placed in sorted order (determinism); each takes the
        first clockwise worker with spare capacity, capacity being
        ``ceil(len(items) / len(workers))``.

        With ``weights`` (item -> measured load, missing items count as 0)
        the bound becomes *weighted*: capacity is the ideal per-worker load
        share (never below the heaviest single item, which must land
        somewhere), items place heaviest-first, and an item that fits no
        successor under the bound takes the least-loaded one. All-zero
        weights fall back to the unweighted count rule, so an idle cluster
        keeps the exact legacy assignment.
        """
        if not self.workers:
            raise ValueError("cannot assign items to an empty worker set")
        ordered = sorted(set(items))
        load_of = {
            item: max(0.0, float((weights or {}).get(item, 0.0)))
            for item in ordered
        }
        if weights is not None and any(load_of.values()):
            return self._assign_weighted(ordered, load_of)
        capacity = math.ceil(len(ordered) / len(self.workers)) if ordered else 0
        loads: dict[str, int] = {worker: 0 for worker in self.workers}
        assignment: dict[str, str] = {}
        for item in ordered:
            chosen = None
            for worker in self.successors(item):
                if loads[worker] < capacity:
                    chosen = worker
                    break
            if chosen is None:  # pragma: no cover - capacity math forbids it
                chosen = next(iter(self.successors(item)))
            loads[chosen] += 1
            assignment[item] = chosen
        return assignment

    def _assign_weighted(
        self, ordered: Sequence[str], load_of: Mapping[str, float]
    ) -> dict[str, str]:
        total = sum(load_of.values())
        capacity = max(total / len(self.workers), max(load_of.values()))
        loads: dict[str, float] = {worker: 0.0 for worker in self.workers}
        assignment: dict[str, str] = {}
        # Heaviest first so light items fill the gaps the heavy ones leave;
        # name tie-break keeps the order deterministic.
        for item in sorted(ordered, key=lambda name: (-load_of[name], name)):
            weight = load_of[item]
            chosen = None
            for worker in self.successors(item):
                if loads[worker] + weight <= capacity + 1e-9:
                    chosen = worker
                    break
            if chosen is None:
                chosen = min(
                    self.successors(item), key=lambda worker: loads[worker]
                )
            loads[chosen] += weight
            assignment[item] = chosen
        return assignment


def assign_components(
    components: Sequence[str],
    workers: Sequence[str],
    replicas: int = DEFAULT_REPLICAS,
    weights: Mapping[str, float] | None = None,
) -> dict[str, str]:
    """One-shot helper: the bounded-load assignment for ``components``."""
    return HashRing(workers, replicas).assign(components, weights=weights)


# ----------------------------------------------------------------------
# hot-component sub-partitions
# ----------------------------------------------------------------------
#: Trailing suffix of a sub-partition name minted by a hot-component split.
_SUB_PARTITION_RE = re.compile(r"^(?P<parent>.+)\.s\d+$")


def sub_partition_names(parent: str, count: int) -> tuple[str, ...]:
    """Names of the ``count`` sub-partitions a split of ``parent`` creates.

    The names are ordinary component names (they join the group, hold
    epoch-fenced partition leases, and shard across workers like any other
    component); the ``.s<i>`` suffix only records lineage so the controller
    can merge them back when the parent's load cools.
    """
    if count < 2:
        raise ValueError("a split needs at least 2 sub-partitions")
    return tuple(f"{parent}.s{index}" for index in range(count))


def parent_partition(name: str) -> str | None:
    """The parent component a sub-partition split from, or ``None``."""
    match = _SUB_PARTITION_RE.match(name)
    return match.group("parent") if match else None
