"""Consistent-hash sharding of components (partitions) across workers.

The scale-out runtime assigns each actor-hosting component -- and with it
the component's dedicated broker partition -- to one worker event loop.
The assignment must be:

- *deterministic*: every control-plane observer derives the identical map
  from the same worker set (no coordination round needed to agree on it);
- *balanced*: the throughput gates require near-perfect spread, so a plain
  hash ring (whose arc lengths vary wildly at small worker counts) is
  tightened with a bounded-load rule -- no worker takes more than
  ``ceil(items / workers)`` components, overflow walking on to the next
  worker clockwise;
- *stable*: adding or removing one worker moves only the components on the
  affected arcs (plus bounded-load overflow), not the whole map -- each
  moved component pays a drain + fence + replay handoff, so minimal
  movement is a real cost bound.

Hashing uses :func:`hashlib.blake2b` rather than Python's ``hash`` so the
ring is identical across processes and runs (``PYTHONHASHSEED`` does not
leak into placement).
"""

from __future__ import annotations

import bisect
import hashlib
import math
from typing import Iterable, Sequence

__all__ = ["HashRing", "assign_components"]

#: Virtual nodes per worker; enough to keep arcs fine-grained at 2-8
#: workers without making ring construction a cost.
DEFAULT_REPLICAS = 64


def _point(token: str) -> int:
    """A stable 64-bit ring coordinate for ``token``."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring with virtual nodes and bounded-load lookup."""

    def __init__(self, workers: Sequence[str], replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.workers = tuple(sorted(set(workers)))
        self.replicas = replicas
        points: list[tuple[int, str]] = []
        for worker in self.workers:
            for index in range(replicas):
                points.append((_point(f"{worker}\x00{index}"), worker))
        # Ties (astronomically unlikely) break on worker id for determinism.
        points.sort()
        self._points = [point for point, _worker in points]
        self._owners = [worker for _point, worker in points]

    def successors(self, item: str) -> Iterable[str]:
        """Distinct workers in clockwise order from ``item``'s ring point."""
        if not self.workers:
            return
        start = bisect.bisect_right(self._points, _point(item))
        seen: set[str] = set()
        for offset in range(len(self._owners)):
            worker = self._owners[(start + offset) % len(self._owners)]
            if worker not in seen:
                seen.add(worker)
                yield worker
                if len(seen) == len(self.workers):
                    return

    def assign(self, items: Sequence[str]) -> dict[str, str]:
        """Map every item to a worker, bounded-load balanced.

        Items are placed in sorted order (determinism); each takes the
        first clockwise worker with spare capacity, capacity being
        ``ceil(len(items) / len(workers))``.
        """
        if not self.workers:
            raise ValueError("cannot assign items to an empty worker set")
        capacity = math.ceil(len(items) / len(self.workers)) if items else 0
        loads: dict[str, int] = {worker: 0 for worker in self.workers}
        assignment: dict[str, str] = {}
        for item in sorted(set(items)):
            chosen = None
            for worker in self.successors(item):
                if loads[worker] < capacity:
                    chosen = worker
                    break
            if chosen is None:  # pragma: no cover - capacity math forbids it
                chosen = next(iter(self.successors(item)))
            loads[chosen] += 1
            assignment[item] = chosen
        return assignment


def assign_components(
    components: Sequence[str],
    workers: Sequence[str],
    replicas: int = DEFAULT_REPLICAS,
) -> dict[str, str]:
    """One-shot helper: the bounded-load assignment for ``components``."""
    return HashRing(workers, replicas).assign(components)
