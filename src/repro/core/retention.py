"""Retention-clocked completion evidence (bounded dedup bookkeeping).

The runtime keeps two pieces of per-component evidence: settled response
ids (releases parked retries, rejects late duplicate responses) and handled
request dedup keys (rejects duplicate reconciliation copies). The paper's
retention rule (Section 4.1/4.3) bounds how long this evidence matters: a
duplicate can only be manufactured by copying an *unexpired* broker record,
so dedup evidence only needs to outlive the unexpired messages that could
duplicate it. Keeping it forever -- as a plain ``set`` would -- makes the
reliability machinery itself an unbounded memory leak on a long-running
component, the failure mode RetryGuard warns about.

:class:`RetentionSet` therefore stamps every key with the simulated time it
was last observed and garbage-collects keys whose stamp has fallen behind
the broker's retention horizon. Observing a key again refreshes its stamp
(a re-copied record restarts the duplication window). Stamps are monotone
(simulated time never goes backwards), so entries are kept in stamp order
and a sweep only touches the expired prefix.
"""

from __future__ import annotations

from itertools import islice
from typing import Hashable, Iterator

__all__ = ["RetentionSet"]


class RetentionSet:
    """A set whose members expire once their last observation is older than
    a caller-supplied cutoff (the broker retention horizon)."""

    __slots__ = ("_stamps", "swept_total")

    def __init__(self) -> None:
        #: key -> simulated time of last observation, in insertion order
        #: (monotone stamps keep the dict sorted by stamp).
        self._stamps: dict[Hashable, float] = {}
        #: Total keys expired over this set's lifetime (bench reporting).
        self.swept_total: int = 0

    def observe(self, key: Hashable, now: float) -> bool:
        """Record a sighting of ``key`` at ``now``; returns whether the key
        was already present (i.e. this sighting is a duplicate)."""
        seen = key in self._stamps
        if seen:
            # Move to the back so the dict stays stamp-ordered.
            del self._stamps[key]
        self._stamps[key] = now
        return seen

    def add(self, key: Hashable, now: float) -> None:
        self.observe(key, now)

    def discard(self, key: Hashable) -> None:
        self._stamps.pop(key, None)

    def sweep(self, cutoff: float) -> int:
        """Expire keys last observed before ``cutoff``; returns the count.

        Entries are stamp-ordered, so only the expired prefix is visited.
        """
        expired = 0
        for key, stamp in self._stamps.items():
            if stamp >= cutoff:
                break
            expired += 1
        if expired:
            for key in list(islice(self._stamps, expired)):
                del self._stamps[key]
            self.swept_total += expired
        return expired

    def __contains__(self, key: Hashable) -> bool:
        return key in self._stamps

    def __len__(self) -> int:
        return len(self._stamps)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._stamps)

    def __repr__(self) -> str:
        return f"RetentionSet({len(self._stamps)} keys, {self.swept_total} swept)"
