"""The narrow application facade the serving edge binds to.

The HTTP gateway (:mod:`repro.net.gateway`) must not reach into runtime
internals -- placement tables, routers, component dicts -- both so the HTTP
layer stays a thin protocol adapter and so the runtime can keep refactoring
freely underneath a stable surface. :class:`KarApi` is that surface: the
KAR sidecar operations (actor calls and tells, actor state CRUD, reminder
CRUD) plus the two system views (health, the unified stats tree), expressed
as simulation coroutines over one dedicated client component.

Admission checks live here, not in the gateway: unknown actor types are
rejected before anything enters the runtime, and invocations whose
(actor type, method) circuit breaker is currently open fail fast with
:class:`~repro.core.errors.BreakerOpenError` instead of queueing a request
that the executing component would immediately divert to the dead-letter
parking lot (an external caller cannot await an operator-driven replay).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.errors import BreakerOpenError, UnknownActorTypeError
from repro.core.overload import BREAKER_OPEN
from repro.core.refs import ActorRef
from repro.core.reminders import ReminderAPI
from repro.core.state import state_key

if TYPE_CHECKING:
    from repro.core.app import KarApplication
    from repro.core.runtime import Component

__all__ = ["KarApi"]


class KarApi:
    """One application's external operation surface (the sidecar API).

    All operations run through a dedicated client component (named
    ``gateway`` by default): they share the ordinary invocation, store, and
    reminder paths -- fencing, retry orchestration, and exactly-once
    settlement apply to gateway traffic exactly as to any other client.
    """

    def __init__(self, app: "KarApplication", client_name: str = "gateway"):
        self._app = app
        self._client_name = client_name

    @property
    def app(self) -> "KarApplication":
        return self._app

    @property
    def kernel(self) -> Any:
        return self._app.kernel

    def endpoint(self) -> "Component":
        """The facade's client component (started or revived on demand)."""
        component = self._app.components.get(self._client_name)
        if component is not None and component.alive:
            return component
        if component is not None:
            return self._app.restart_component(self._client_name)
        return self._app.add_component(self._client_name)

    # ------------------------------------------------------------------
    # admission checks
    # ------------------------------------------------------------------
    def actor_ref(self, actor_type: str, actor_id: str) -> ActorRef:
        """Validate the actor type against the registry and build a ref."""
        if actor_type not in self._app.registry:
            raise UnknownActorTypeError(actor_type)
        return ActorRef(actor_type, actor_id)

    def breaker_retry_after(
        self, actor_type: str, method: str
    ) -> float | None:
        """Remaining cooldown of an open (actor type, method) breaker.

        Returns ``None`` when no hosting component's breaker blocks the
        invocation (closed, cooled down enough to admit a probe, or
        breakers disabled). Read-only: the probe admission itself stays
        with the executing component.
        """
        now = self.kernel.now
        worst: float | None = None
        for component in self._app.components.values():
            if not component.alive or component.overload is None:
                continue
            if actor_type not in component.actor_types:
                continue
            breaker = component.overload.breakers.get((actor_type, method))
            if breaker is None or breaker.state != BREAKER_OPEN:
                continue
            remaining = breaker.cooldown - (now - breaker.opened_at)
            if remaining > 0 and (worst is None or remaining > worst):
                worst = remaining
        return worst

    def _admit(self, actor_type: str, actor_id: str, method: str) -> ActorRef:
        ref = self.actor_ref(actor_type, actor_id)
        retry_after = self.breaker_retry_after(actor_type, method)
        if retry_after is not None:
            raise BreakerOpenError(actor_type, method, retry_after)
        return ref

    # ------------------------------------------------------------------
    # invocations
    # ------------------------------------------------------------------
    async def call(
        self, actor_type: str, actor_id: str, method: str, args: tuple = ()
    ) -> Any:
        """Synchronous root invocation: awaits the actor method's result."""
        ref = self._admit(actor_type, actor_id, method)
        return await self.endpoint().invoke(None, ref, method, tuple(args), True)

    async def tell(
        self, actor_type: str, actor_id: str, method: str, args: tuple = ()
    ) -> None:
        """Fire-and-forget invocation: returns once durably queued."""
        ref = self._admit(actor_type, actor_id, method)
        await self.endpoint().invoke(None, ref, method, tuple(args), False)

    # ------------------------------------------------------------------
    # actor state CRUD
    # ------------------------------------------------------------------
    async def state_get(
        self, actor_type: str, actor_id: str, key: str
    ) -> tuple[bool, Any]:
        """One persisted field: ``(found, value)``."""
        ref = self.actor_ref(actor_type, actor_id)
        fields = await self.endpoint().store_client.hgetall(state_key(ref))
        return key in fields, fields.get(key)

    async def state_all(self, actor_type: str, actor_id: str) -> dict[str, Any]:
        ref = self.actor_ref(actor_type, actor_id)
        return await self.endpoint().store_client.hgetall(state_key(ref))

    async def state_set(
        self, actor_type: str, actor_id: str, key: str, value: Any
    ) -> None:
        ref = self.actor_ref(actor_type, actor_id)
        await self.endpoint().store_client.hset(state_key(ref), key, value)

    async def state_delete(
        self, actor_type: str, actor_id: str, key: str
    ) -> bool:
        ref = self.actor_ref(actor_type, actor_id)
        return await self.endpoint().store_client.hdel(state_key(ref), key)

    # ------------------------------------------------------------------
    # reminder CRUD
    # ------------------------------------------------------------------
    async def reminder_schedule(
        self,
        actor_type: str,
        actor_id: str,
        reminder_id: str,
        method: str,
        delay: float,
        args: tuple = (),
        period: float | None = None,
    ) -> None:
        ref = self.actor_ref(actor_type, actor_id)
        reminders = ReminderAPI(self.endpoint())
        await reminders.schedule(
            reminder_id, ref, method, delay, *args, period=period
        )

    async def reminder_cancel(self, reminder_id: str) -> bool:
        return await ReminderAPI(self.endpoint()).cancel(reminder_id)

    async def reminder_list(
        self, actor_type: str | None = None, actor_id: str | None = None
    ) -> list[dict[str, Any]]:
        """The reminder table, optionally filtered to one actor."""
        table = await self.endpoint().store_client.hgetall("reminders")
        now = self.kernel.now
        listed = []
        for reminder_id, record in sorted(table.items()):
            rec_type, rec_id = record["actor"]
            if actor_type is not None and rec_type != actor_type:
                continue
            if actor_id is not None and rec_id != actor_id:
                continue
            listed.append(
                {
                    "id": reminder_id,
                    "actor_type": rec_type,
                    "actor_id": rec_id,
                    "method": record["method"],
                    "args": list(record["args"]),
                    "due_in": max(0.0, record["due"] - now),
                    "period": record["period"],
                }
            )
        return listed

    # ------------------------------------------------------------------
    # system views
    # ------------------------------------------------------------------
    def stats(self, family: str | None = None) -> dict[str, Any]:
        """The unified evidence tree (or one family of it)."""
        return self._app.stats(family)

    def health(self) -> dict[str, Any]:
        """Liveness/readiness: the group must have an unpaused generation."""
        coordinator = self._app.coordinator
        ready = coordinator.generation > 0 and not coordinator.paused
        return {
            "status": "ok" if ready else "starting",
            "ready": ready,
            "app": self._app.name,
            "boot": self._app.boot,
            "generation": coordinator.generation,
            "components": self._app.live_component_names(),
            "sim_now": self.kernel.now,
        }

    def actor_types(self) -> tuple[str, ...]:
        return tuple(self._app.registry.type_names)
