"""Runtime configuration.

One :class:`KarConfig` bundles every tunable the evaluation varies: broker
and store latencies (the ClusterDev / ClusterProd / Managed configurations of
Table 2), the sidecar hop cost, the failure-detection parameters (heartbeat,
session timeout), reconciliation cost coefficients, and the feature flags the
paper discusses (placement cache, cancellation, retry orchestration).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.mq import BrokerConfig
from repro.persist import PersistenceConfig
from repro.sim import Latency

__all__ = ["KarConfig"]


@dataclass(frozen=True)
class KarConfig:
    """All timing parameters and feature flags for one application run."""

    # --- messaging (simulated Kafka) -------------------------------------
    broker: BrokerConfig = field(default_factory=BrokerConfig)

    # --- persistence (simulated Redis) ------------------------------------
    store_latency: Latency = Latency.fixed(0.0005)
    # Backend selection for the store and the broker log: in-memory by
    # default, or durable files ("sqlite" store + JSONL broker journal)
    # that survive a cold process restart and feed App.reopen recovery.
    persistence: PersistenceConfig = field(default_factory=PersistenceConfig)

    # --- sidecar architecture ---------------------------------------------
    # One app<->runtime HTTP hop (Section 4.1: paired processes on one node).
    sidecar_latency: Latency = Latency.fixed(0.00025)
    # Fixed bookkeeping per actor invocation (id allocation, lock handling).
    invoke_overhead: Latency = Latency.fixed(0.0002)

    # --- batched transport (router / send outbox) --------------------------
    # How long a component's outbox flusher lingers collecting envelopes
    # before one batched produce round trip. The 0.0 default adds no
    # simulated delay -- it still coalesces everything enqueued within the
    # same event-loop turn, preserving the unbatched latency profile --
    # while a small positive linger trades that latency for far fewer
    # produce round trips under fan-in.
    send_linger: float = 0.0
    # Upper bound on envelopes per batched produce round trip.
    send_batch_max: int = 64

    # --- pipelined store I/O (kvstore/pipeline.py) --------------------------
    # Coalesce the independent store operations a component issues within
    # one event-loop turn into a single backend round trip (SQLite: one
    # transaction; memory: one call run). Dependent operations -- a CAS
    # loop's read-modify-write -- are sequential awaits and so land in
    # distinct round trips by construction; per-operation futures and
    # landing-time fencing keep the unpipelined semantics exactly.
    store_pipeline: bool = True
    # Upper bound on operations per pipelined store round trip.
    store_batch_max: int = 64

    # --- feature flags ------------------------------------------------------
    placement_cache: bool = True  # Table 2 "no cache" disables this
    cancellation: bool = True  # Section 4.4: elide callees of dead callers
    orchestrate_retries: bool = True  # False = at-least-once baseline (Fig 2b)
    # Section 4.3's future-work alternative: atomically (1) send the caller
    # the result and (2) log its completion in the callee's queue, using a
    # message-queue transaction. Completion evidence then lives in the same
    # queue as the request it completes, so failed components' queues can be
    # discarded eagerly instead of waiting for retention expiry.
    completion_log: bool = False

    # --- reconciliation cost model (Section 4.3) ---------------------------
    # Leader-side work: fixed setup plus a per-catalogued-message scan cost
    # plus a per-copied-request cost. "Reconciliation time increases with the
    # number of recent messages."
    reconcile_base: Latency = Latency.fixed(0.5)
    reconcile_per_message: float = 0.002
    reconcile_per_copy: float = 0.01

    # --- actor lifecycle & memory management --------------------------------
    # Idle passivation (virtual-actor style): an instance whose mailbox has
    # been idle for this long is deactivated (``Actor.deactivate`` hook) and
    # evicted along with its mailbox; the next request transparently
    # re-activates it from persisted state. ``None`` disables passivation
    # (every activated instance stays resident forever).
    idle_passivation_timeout: float | None = None
    # Cadence of the per-component maintenance task that sweeps idle actors
    # and expired dedup evidence.
    maintenance_interval: float = 5.0
    # Extra slack added to the broker retention horizon before dedup
    # evidence (settled response ids, handled request keys) is dropped.
    # Covers delivery lag across group pauses: a record is stamped when it
    # is *consumed*, which can trail its append by a reconciliation.
    dedup_retention_slack: float = 30.0
    # Write-through cache of each resident instance's persisted state.
    # Safe because an actor's state is only written through its hosting
    # component while placed there (single writer); the cache is dropped on
    # passivation and dies with the component on failure.
    state_cache: bool = True

    # --- overload control (retry-storm protection) ---------------------------
    # Master switch for the guard subsystem. When False the runtime keeps
    # the legacy behaviour exactly: fixed placement-retry sleeps, unbounded
    # mailboxes, no breakers, no dead-lettering.
    overload_guard: bool = True
    # Jittered exponential backoff for runtime retries (placement
    # re-resolution, stale-route resends, shed-mailbox re-admission):
    # each retry sleeps uniform(0, min(cap, base * 2^attempt)).
    retry_backoff_base: float = 0.05
    retry_backoff_cap: float = 2.0
    # Token-bucket retry budget: each first attempt deposits ``ratio``
    # tokens (capped at ``burst``), each retry spends one, and a dry bucket
    # defers the retry through further backoff rounds. ``floor_per_sec``
    # trickles tokens in on the clock so recovery cannot deadlock when
    # first-attempt traffic has stopped.
    retry_budget_ratio: float = 0.1
    retry_budget_burst: float = 50.0
    retry_budget_floor_per_sec: float = 2.0
    # Circuit breakers per (actor type, method): open after ``threshold``
    # consecutive execution failures, half-open after ``cooldown`` seconds
    # admitting exactly one probe. ``None`` disables breakers (the divert
    # path changes failure semantics, so it is opt-in).
    breaker_threshold: int | None = None
    breaker_cooldown: float = 30.0
    # Reconciliation redelivery cap: a stranded request that has already
    # been recovery-copied this many times is parked in the dead-letter
    # topic instead of being copied again -- the poison-pill bound that
    # ends crash-reconcile amplification loops. ``None`` keeps the paper's
    # retry-forever contract (the default).
    redelivery_limit: int | None = None
    # Mailbox admission control: pending queues beyond this depth shed
    # their oldest *retries* (recovery copies) back to the budget-paced
    # backoff path; first attempts are never shed. ``None`` = unbounded.
    mailbox_capacity: int | None = 256

    # --- multi-worker scale-out (core/cluster.py) ----------------------------
    # CPU cost charged to the hosting worker's event loop per actor
    # invocation. Each worker serializes its charges on a busy horizon, so
    # with a positive cost a single worker becomes the throughput ceiling
    # and sharding components across N workers buys ~N x. The 0.0 default
    # charges nothing -- single-loop runs are byte-identical to before.
    worker_loop_cost: float = 0.0
    # Worker heartbeat cadence into the shared store and the silence after
    # which the cluster control plane declares a worker dead and re-hosts
    # its components on the survivors.
    worker_heartbeat_interval: float = 1.0
    worker_session_timeout: float = 4.0
    # How long a graceful handoff waits for the component to drain its
    # in-flight work before fencing the old incarnation anyway.
    drain_timeout: float = 30.0

    # --- adaptive placement (core/placement_ctl.py) --------------------------
    # Master switch for the load-aware placement controller. When False the
    # control plane still samples and publishes the load plane (the evidence
    # surface stays live) but never migrates, splits, or merges -- placement
    # stays the static bounded-load consistent hash.
    adaptive_placement: bool = True
    # Worker busy-rate imbalance, (max - min) / max, above which the
    # controller migrates the hottest component off the busiest worker.
    rebalance_threshold: float = 0.5
    # Minimum seconds between controller actions (hysteresis against
    # thrashing on a load signal that has not settled since the last move).
    rebalance_cooldown: float = 5.0
    # Upper bound on placement actions (migrations/splits/merges) started
    # per control tick.
    migration_budget: int = 1
    # A single component whose busy rate exceeds this fraction of one
    # worker's capacity cannot be helped by migration (it saturates any
    # worker alone) and is split into sub-partitions instead.
    split_threshold: float = 0.6
    # Sub-partitions a hot component splits into.
    split_factor: int = 4
    # Merge hysteresis: split children whose *combined* busy rate stays
    # below split_threshold * split_merge_ratio for several consecutive
    # ticks are merged back into the parent component.
    split_merge_ratio: float = 0.25
    # Half-life of the exponentially decaying load counters behind
    # KarWorker.stats() busy_seconds and the per-component load plane.
    load_halflife: float = 5.0
    # Partition-lease liveness: a holder renews every lease_ttl / 4; a
    # hosted component whose lease goes unrenewed for lease_ttl is owned by
    # a wedged worker (heartbeating but not making progress) and the control
    # plane re-hosts it. ``None`` disables renewal and the expiry sweep.
    lease_ttl: float | None = 30.0

    # --- reminders -----------------------------------------------------------
    reminder_tick: float = 0.5

    def with_overrides(self, **overrides) -> "KarConfig":
        return replace(self, **overrides)

    @staticmethod
    def fast_test() -> "KarConfig":
        """Small latencies and an aggressive failure detector so recovery
        unit tests complete in milliseconds of simulated time."""
        return KarConfig(
            broker=BrokerConfig(
                produce_latency=Latency.fixed(0.001),
                consume_latency=Latency.fixed(0.0005),
                heartbeat_interval=0.3,
                session_timeout=1.0,
                watchdog_interval=0.1,
                rebalance_join_window=0.2,
                rebalance_sync_latency=Latency.around(0.05, 0.02),
                retention_seconds=600.0,
            ),
            store_latency=Latency.fixed(0.0005),
            reconcile_base=Latency.fixed(0.05),
            reconcile_per_message=0.0001,
            reconcile_per_copy=0.0005,
            reminder_tick=0.1,
            maintenance_interval=0.5,
            dedup_retention_slack=5.0,
            worker_heartbeat_interval=0.2,
            worker_session_timeout=0.8,
            drain_timeout=5.0,
            rebalance_cooldown=0.5,
            load_halflife=0.5,
            lease_ttl=2.0,
        )
