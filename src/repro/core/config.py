"""Runtime configuration.

One :class:`KarConfig` bundles every tunable the evaluation varies: broker
and store latencies (the ClusterDev / ClusterProd / Managed configurations of
Table 2), the sidecar hop cost, the failure-detection parameters (heartbeat,
session timeout), reconciliation cost coefficients, and the feature flags the
paper discusses (placement cache, cancellation, retry orchestration).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.mq import BrokerConfig
from repro.persist import PersistenceConfig
from repro.sim import Latency

__all__ = ["KarConfig"]


@dataclass(frozen=True)
class KarConfig:
    """All timing parameters and feature flags for one application run."""

    # --- messaging (simulated Kafka) -------------------------------------
    broker: BrokerConfig = field(default_factory=BrokerConfig)

    # --- persistence (simulated Redis) ------------------------------------
    store_latency: Latency = Latency.fixed(0.0005)
    # Backend selection for the store and the broker log: in-memory by
    # default, or durable files ("sqlite" store + JSONL broker journal)
    # that survive a cold process restart and feed App.reopen recovery.
    persistence: PersistenceConfig = field(default_factory=PersistenceConfig)

    # --- sidecar architecture ---------------------------------------------
    # One app<->runtime HTTP hop (Section 4.1: paired processes on one node).
    sidecar_latency: Latency = Latency.fixed(0.00025)
    # Fixed bookkeeping per actor invocation (id allocation, lock handling).
    invoke_overhead: Latency = Latency.fixed(0.0002)

    # --- batched transport (router / send outbox) --------------------------
    # How long a component's outbox flusher lingers collecting envelopes
    # before one batched produce round trip. The 0.0 default adds no
    # simulated delay -- it still coalesces everything enqueued within the
    # same event-loop turn, preserving the unbatched latency profile --
    # while a small positive linger trades that latency for far fewer
    # produce round trips under fan-in.
    send_linger: float = 0.0
    # Upper bound on envelopes per batched produce round trip.
    send_batch_max: int = 64

    # --- feature flags ------------------------------------------------------
    placement_cache: bool = True  # Table 2 "no cache" disables this
    cancellation: bool = True  # Section 4.4: elide callees of dead callers
    orchestrate_retries: bool = True  # False = at-least-once baseline (Fig 2b)
    # Section 4.3's future-work alternative: atomically (1) send the caller
    # the result and (2) log its completion in the callee's queue, using a
    # message-queue transaction. Completion evidence then lives in the same
    # queue as the request it completes, so failed components' queues can be
    # discarded eagerly instead of waiting for retention expiry.
    completion_log: bool = False

    # --- reconciliation cost model (Section 4.3) ---------------------------
    # Leader-side work: fixed setup plus a per-catalogued-message scan cost
    # plus a per-copied-request cost. "Reconciliation time increases with the
    # number of recent messages."
    reconcile_base: Latency = Latency.fixed(0.5)
    reconcile_per_message: float = 0.002
    reconcile_per_copy: float = 0.01

    # --- actor lifecycle & memory management --------------------------------
    # Idle passivation (virtual-actor style): an instance whose mailbox has
    # been idle for this long is deactivated (``Actor.deactivate`` hook) and
    # evicted along with its mailbox; the next request transparently
    # re-activates it from persisted state. ``None`` disables passivation
    # (every activated instance stays resident forever).
    idle_passivation_timeout: float | None = None
    # Cadence of the per-component maintenance task that sweeps idle actors
    # and expired dedup evidence.
    maintenance_interval: float = 5.0
    # Extra slack added to the broker retention horizon before dedup
    # evidence (settled response ids, handled request keys) is dropped.
    # Covers delivery lag across group pauses: a record is stamped when it
    # is *consumed*, which can trail its append by a reconciliation.
    dedup_retention_slack: float = 30.0
    # Write-through cache of each resident instance's persisted state.
    # Safe because an actor's state is only written through its hosting
    # component while placed there (single writer); the cache is dropped on
    # passivation and dies with the component on failure.
    state_cache: bool = True

    # --- reminders -----------------------------------------------------------
    reminder_tick: float = 0.5

    def with_overrides(self, **overrides) -> "KarConfig":
        return replace(self, **overrides)

    @staticmethod
    def fast_test() -> "KarConfig":
        """Small latencies and an aggressive failure detector so recovery
        unit tests complete in milliseconds of simulated time."""
        return KarConfig(
            broker=BrokerConfig(
                produce_latency=Latency.fixed(0.001),
                consume_latency=Latency.fixed(0.0005),
                heartbeat_interval=0.3,
                session_timeout=1.0,
                watchdog_interval=0.1,
                rebalance_join_window=0.2,
                rebalance_sync_latency=Latency.around(0.05, 0.02),
                retention_seconds=600.0,
            ),
            store_latency=Latency.fixed(0.0005),
            reconcile_base=Latency.fixed(0.05),
            reconcile_per_message=0.0001,
            reconcile_per_copy=0.0005,
            reminder_tick=0.1,
            maintenance_interval=0.5,
            dedup_retention_slack=5.0,
        )
