"""Top-level application wiring: broker + store + components + clients.

A :class:`KarApplication` owns the simulated infrastructure (one Kafka-like
broker, one Redis-like store, one consumer group per application) and the
set of components, and offers the external-client call surface plus failure
injection (kill / restart a component) used by tests and the benchmark
harnesses.

Persistence is pluggable (``KarConfig.persistence``): the store and the
broker log can live in memory (the default) or in durable files. On top of
that, the application supports a *cold restart*: :meth:`shutdown` abruptly
kills every component and discards all in-memory runtime state, and
:meth:`reopen` builds a brand-new application over the same backends --
topics, offsets, group generation, component epochs, placements, and actor
state all come back from the durable layer, and the first reconciliation
drives every unsettled call to completion (Section 4.3 run from bytes).
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Any

from repro.core.actor import Actor, ActorRegistry
from repro.core.api import KarApi
from repro.core.config import KarConfig
from repro.core.envelope import Request, Response
from repro.core.overload import DEAD_LETTER_PARTITION, DeadLetter
from repro.core.refs import ActorRef
from repro.core.runtime import Component
from repro.kvstore import KVStore, StoreBackend
from repro.mq import Broker, BrokerLog, GroupCoordinator
from repro.persist import build_persistence, reopen_persistence, wipe_persistence
from repro.sim import Kernel, TraceRecorder

__all__ = ["KarApplication"]


class _IdGenerator:
    """Monotonic, deterministic request ids, namespaced per boot.

    A cold restart cannot recover the in-memory counter, so ids carry the
    application's durable boot number instead: ids minted by different
    boots can never collide with the (id, step) dedup evidence and the
    response records still retained in the journals. The first boot keeps
    the bare historical format.
    """

    def __init__(self, prefix: str = "r"):
        self._prefix = prefix
        self._counter = 0

    def fresh(self) -> str:
        self._counter += 1
        return f"{self._prefix}{self._counter:06d}"


class KarApplication:
    """One KAR application: infrastructure, components, and clients."""

    def __init__(
        self,
        kernel: Kernel,
        config: KarConfig | None = None,
        name: str = "app",
        *,
        store_backend: StoreBackend | None = None,
        broker_log: BrokerLog | None = None,
    ):
        self.kernel = kernel
        self.config = config or KarConfig()
        self.name = name
        self.topic_name = f"{name}-topic"
        # The dead-letter parking lot: its own topic, outside the
        # reconciliation catalog, the dead-queue sweeps, and the
        # retention-expiry read paths -- parked calls must outlive all
        # three. It is journal-mirrored like any topic, so the parking lot
        # survives a cold restart.
        self.dead_letter_topic = f"{name}-deadletters"
        self.dead_letters_replayed = 0
        if store_backend is None and broker_log is None:
            store_backend, broker_log = build_persistence(
                self.config.persistence, name
            )
        if store_backend is None or broker_log is None:
            raise ValueError(
                "store_backend and broker_log must be given together"
            )
        self.broker = Broker(kernel, self.config.broker, log=broker_log)
        self.store = KVStore(
            kernel, self.config.store_latency, backend=store_backend
        )
        # Attach-to-service semantics: whatever the durable layer retains
        # (nothing, for fresh backends) becomes this application's state.
        self.restored_records = self.broker.restore_from_log()
        self.boot = int(broker_log.get_meta(f"app:{name}:boot") or 0) + 1
        broker_log.set_meta(f"app:{name}:boot", self.boot)
        self.coordinator = GroupCoordinator(self.broker, name, self.topic_name)
        self.registry = ActorRegistry()
        self.trace = TraceRecorder(kernel)
        self.ids = _IdGenerator("r" if self.boot == 1 else f"r{self.boot}.")
        self.components: dict[str, Component] = {}
        self.component_types: dict[str, frozenset[str]] = {}
        #: Worker event loops keyed by worker id; populated by KarCluster
        #: (empty in the classic single-loop mode).
        self.workers: dict[str, Any] = {}
        self._epochs: dict[str, int] = self._restore_epochs()
        self._client: Component | None = None
        self._api: KarApi | None = None
        self._shutdown = False
        self.reminders_in_use = False
        self.external_services: list[Any] = []
        #: Serving-edge observability plane, attached by the HTTP gateway
        #: (``repro.net.gateway``); surfaced as ``stats()["gateway"]``.
        self.gateway_metrics: Any = None

    # ------------------------------------------------------------------
    # persistence lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def fresh(
        cls,
        kernel: Kernel,
        config: KarConfig | None = None,
        name: str = "app",
    ) -> "KarApplication":
        """A guaranteed-clean application: any durable files left behind by
        a previous run under the same name are deleted first."""
        cfg = config or KarConfig()
        wipe_persistence(cfg.persistence, name)
        return cls(kernel, cfg, name)

    def shutdown(self) -> None:
        """Cold stop: abruptly kill every component and release backends.

        Models the death of all application processes at once (a node or
        datacenter restart). Nothing is flushed gracefully beyond what the
        durable backends already acknowledged -- exactly the state a crash
        would leave behind.
        """
        if self._shutdown:
            return
        self._shutdown = True
        self.trace.emit("app.shutdown", name=self.name, boot=self.boot)
        for component in self.components.values():
            if component.alive:
                component.process.kill()
        self.coordinator.close()
        self.broker.log.close()
        self.store.backend.close()

    def reopen(self) -> "KarApplication":
        """Build the next boot of this application over the same durable
        backends (shutting this one down first if still running).

        Memory backends carry over as live objects; durable backends are
        re-read from their files, as a brand-new process would. The caller
        re-registers nothing (the actor registry is code, and carries
        over) but must re-add components and :meth:`settle` -- the first
        reconciliation then replays the journals, re-places stranded
        requests, and completes every unsettled call.
        """
        self.shutdown()
        store_backend, broker_log = reopen_persistence(
            self.config.persistence, self.name, self.store.backend, self.broker.log
        )
        app = KarApplication(
            self.kernel,
            self.config,
            self.name,
            store_backend=store_backend,
            broker_log=broker_log,
        )
        app.registry = self.registry
        return app

    def _restore_epochs(self) -> dict[str, int]:
        """Component epochs from log metadata: a reopened application must
        mint member ids strictly above every incarnation in the journal,
        or a new component would adopt a dead predecessor's queue."""
        prefix = f"app:{self.name}:epoch:"
        return {
            key[len(prefix):]: int(value)
            for key, value in self.broker.log.meta_items().items()
            if key.startswith(prefix)
        }

    def _record_epoch(self, component_name: str, epoch: int) -> None:
        self.broker.log.set_meta(
            f"app:{self.name}:epoch:{component_name}", epoch
        )

    def register_external_service(self, service: Any) -> Any:
        """Register a stateful service actors interact with directly.

        KAR requires *forceful disconnection* for every stateful service in
        use (Sections 1, 2.3): reconciliation fences failed components on
        each registered service, so their lingering operations cannot land.
        The service must expose ``fence(client_id)``.
        """
        self.external_services.append(service)
        return service

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def register_actor(self, actor_class: type[Actor], name: str | None = None) -> str:
        """Make an actor type available for hosting by components."""
        return self.registry.register(actor_class, name)

    def add_component(
        self, name: str, actor_types: tuple[str, ...] = (), *, worker=None
    ) -> Component:
        """Create and start a component announcing the given actor types.

        ``worker`` optionally pins the component to a worker event loop
        (scale-out mode; see :class:`~repro.core.cluster.KarCluster`).
        """
        for actor_type in actor_types:
            if actor_type not in self.registry:
                raise ValueError(f"actor type {actor_type!r} is not registered")
        if name in self.components and self.components[name].alive:
            raise ValueError(f"component {name!r} is already running")
        epoch = self._epochs.get(name, -1) + 1
        self._epochs[name] = epoch
        self._record_epoch(name, epoch)
        component = Component(self, name, tuple(actor_types), epoch, worker=worker)
        self.components[name] = component
        self.component_types[name] = frozenset(actor_types)
        return component.start()

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def kill_component(self, name: str) -> None:
        """Abrupt fail-stop of a component (both paired processes)."""
        self.components[name].fail()

    def restart_component(self, name: str, *, worker=None) -> Component:
        """Spawn a fresh incarnation (new member id, new queue) of a
        previously-added component, as a restarted node's replicas would.

        ``worker`` re-hosts the new incarnation on a specific worker event
        loop (the scale-out handoff target); the new epoch's lease
        acquisition fences whatever is left of the old incarnation.
        """
        types = tuple(sorted(self.component_types[name]))
        old = self.components.get(name)
        if old is not None and old.alive:
            raise ValueError(f"component {name!r} is still alive")
        epoch = self._epochs[name] + 1
        self._epochs[name] = epoch
        self._record_epoch(name, epoch)
        component = Component(self, name, types, epoch, worker=worker)
        self.components[name] = component
        return component.start()

    # ------------------------------------------------------------------
    # external clients
    # ------------------------------------------------------------------
    def client(self, name: str = "client") -> Component:
        """A component hosting no actors, used to drive the application
        (the paper's simulators / WebAPI run as such components)."""
        if self._client is None or not self._client.alive:
            self._client = self.add_component(name)
        return self._client

    async def call(self, ref: ActorRef, method: str, *args: Any) -> Any:
        """Blocking root invocation from the default external client."""
        return await self.client().invoke(None, ref, method, tuple(args), True)

    async def tell(self, ref: ActorRef, method: str, *args: Any) -> None:
        await self.client().invoke(None, ref, method, tuple(args), False)

    # ------------------------------------------------------------------
    # synchronous driving helpers (tests, benches)
    # ------------------------------------------------------------------
    def run_call(
        self, ref: ActorRef, method: str, *args: Any, timeout: float | None = 600.0
    ) -> Any:
        client = self.client()
        task = self.kernel.spawn(
            client.invoke(None, ref, method, tuple(args), True),
            process=client.process,
            name=f"client.call:{ref}.{method}",
        )
        return self.kernel.run_until_complete(task, timeout=timeout)

    def settle(self, max_wait: float = 120.0) -> None:
        """Drive the kernel until the group has a generation and is
        unpaused (the application is ready to process invocations)."""
        deadline = self.kernel.now + max_wait
        while self.coordinator.generation == 0 or self.coordinator.paused:
            if self.kernel.now >= deadline:
                raise TimeoutError("application did not settle")
            self.kernel.run(until=min(self.kernel.now + 0.5, deadline))

    def live_component_names(self) -> list[str]:
        return sorted(
            member.rsplit("#", 1)[0]
            for member in self.coordinator.member_ids()
        )

    def api(self, client_name: str = "gateway") -> KarApi:
        """The narrow external-operation facade (the sidecar surface the
        HTTP gateway binds to). One facade per application, created on
        first use; its client component starts lazily on first operation."""
        if self._api is None:
            self._api = KarApi(self, client_name)
        return self._api

    # ------------------------------------------------------------------
    # the unified evidence surface
    # ------------------------------------------------------------------
    def stats(self, family: str | None = None) -> dict[str, Any]:
        """The unified evidence tree: every counter family under one
        namespaced roof, with the same shape on :class:`KarApplication`
        and :class:`~repro.core.cluster.KarCluster`.

        ``stats()`` assembles the whole tree; ``stats("transport")``
        returns just one family without paying for the others (the cheap
        form for polling loops). Families: ``transport``, ``store``,
        ``persistence``, ``overload``, ``calls``, ``placement``,
        ``gateway``, ``workers``.
        """
        builders = {
            "transport": self._transport_stats,
            "store": self._store_stats,
            "persistence": self._persistence_stats,
            "overload": self._overload_stats,
            "calls": self._calls_stats,
            "placement": self._placement_stats,
            "gateway": self._gateway_stats,
            "workers": self._workers_stats,
        }
        if family is not None:
            try:
                return builders[family]()
            except KeyError:
                raise KeyError(
                    f"unknown stats family {family!r}; "
                    f"expected one of {sorted(builders)}"
                ) from None
        return {name: build() for name, build in builders.items()}

    def _transport_stats(self) -> dict[str, int]:
        """Broker + per-router transport counters: the evidence surface
        for the throughput benchmarks (round trips vs. records sent)."""
        routers = [c.router for c in self.components.values()]
        return {
            "produce_round_trips": self.broker.produce_count,
            "records_appended": self.broker.produce_record_count,
            "outbox_batches": sum(r.batches_flushed for r in routers),
            "outbox_records": sum(r.records_sent for r in routers),
            "largest_batch": max(
                (r.largest_batch for r in routers), default=0
            ),
        }

    def _store_stats(self) -> dict[str, int]:
        """Store-side pipeline counters: latency-paying round trips vs.
        operations landed, mirroring the transport family for the outbox."""
        clients = [
            c.store_client
            for c in self.components.values()
            if c.store_client is not None
        ]
        return {
            "store_round_trips": self.store.round_trips,
            "store_operations": self.store.operation_count,
            "pipeline_batches": sum(
                getattr(client, "batches_flushed", 0) for client in clients
            ),
            "pipeline_ops": sum(
                getattr(client, "ops_pipelined", 0) for client in clients
            ),
            "largest_pipeline_batch": max(
                (getattr(client, "largest_batch", 0) for client in clients),
                default=0,
            ),
        }

    def _calls_stats(self) -> dict[str, Any]:
        """Journal-derived call settlement: the reconciliation leader's own
        pending-call criterion (Section 4.3) applied to the current
        journals. After recovery has run and the workload drained,
        ``unsettled`` must be empty -- every in-flight call at crash time
        was driven to a durable completion."""
        unsettled = self._unsettled_call_ids()
        return {"unsettled": unsettled, "unsettled_count": len(unsettled)}

    def _placement_stats(self) -> dict[str, Any]:
        """Single-loop applications have no placement controller; the
        family keeps the cluster's shape with everything at rest so
        consumers read one schema against both runtimes."""
        return {
            "adaptive": False,
            "migrations": 0,
            "splits": 0,
            "merges": 0,
            "lease_expirations": 0,
            "split_children": {},
            "controller": {},
            "load": {},
        }

    def _gateway_stats(self) -> dict[str, Any]:
        """The serving edge's per-route/per-actor-type counters and call
        latency histograms, when an HTTP gateway is attached."""
        if self.gateway_metrics is None:
            return {"attached": False}
        snapshot = dict(self.gateway_metrics.snapshot())
        snapshot["attached"] = True
        return snapshot

    def _workers_stats(self) -> dict[str, Any]:
        return {
            worker_id: worker.stats()
            for worker_id, worker in self.workers.items()
        }

    # ------------------------------------------------------------------
    # deprecated per-family accessors (use ``stats(family)`` instead)
    # ------------------------------------------------------------------
    @staticmethod
    def _deprecated(old: str, new: str) -> None:
        warnings.warn(
            f"KarApplication.{old}() is deprecated; use {new} instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def transport_stats(self) -> dict[str, int]:
        """Deprecated alias for ``stats("transport")``."""
        self._deprecated("transport_stats", 'stats("transport")')
        return self._transport_stats()

    def store_stats(self) -> dict[str, int]:
        """Deprecated alias for ``stats("store")``."""
        self._deprecated("store_stats", 'stats("store")')
        return self._store_stats()

    def overload_stats(self) -> dict[str, Any]:
        """Deprecated alias for ``stats("overload")``."""
        self._deprecated("overload_stats", 'stats("overload")')
        return self._overload_stats()

    def persistence_stats(self) -> dict[str, int]:
        """Deprecated alias for ``stats("persistence")``."""
        self._deprecated("persistence_stats", 'stats("persistence")')
        return self._persistence_stats()

    def placement_stats(self) -> dict[str, Any]:
        """Deprecated alias for ``stats("placement")``."""
        self._deprecated("placement_stats", 'stats("placement")')
        return self._placement_stats()

    def unsettled_call_ids(self) -> list[str]:
        """Deprecated alias for ``stats("calls")["unsettled"]``."""
        self._deprecated("unsettled_call_ids", 'stats("calls")["unsettled"]')
        return self._unsettled_call_ids()

    # ------------------------------------------------------------------
    # overload control: the dead-letter parking lot
    # ------------------------------------------------------------------
    async def park_dead_letter(self, letter: DeadLetter, client_id: str) -> None:
        """Durably append one dead letter (fenced producers still rejected)."""
        await self.broker.produce(
            self.dead_letter_topic, DEAD_LETTER_PARTITION, letter, client_id
        )

    def _dead_letter_values(self) -> list[DeadLetter]:
        topic = self.broker.topics.get(self.dead_letter_topic)
        if topic is None or DEAD_LETTER_PARTITION not in topic.partitions:
            return []
        # snapshot(), not unexpired(): reading the parking lot must never
        # trigger a retention-expiry sweep on it.
        return [
            record.value
            for record in topic.partitions[DEAD_LETTER_PARTITION].snapshot()
            if isinstance(record.value, DeadLetter)
        ]

    def dead_letters(self) -> list[dict[str, Any]]:
        """The parked calls, each with its full failure history."""
        return [letter.describe() for letter in self._dead_letter_values()]

    def dead_letter_index(self) -> set[tuple[str, int]]:
        """Dedup keys of every parked request (reconciliation skips these:
        redelivery of a parked call belongs to the parking lot, not the
        crash-recovery copy path)."""
        return {
            letter.request.dedup_key for letter in self._dead_letter_values()
        }

    def _overload_stats(self) -> dict[str, Any]:
        """Aggregate overload-control evidence across the current component
        incarnations (like the transport family): retry-budget consumption,
        breaker states and transitions, shed counts, and the dead letters
        currently parked, each with its full failure history."""
        guards = [
            component.overload
            for component in self.components.values()
            if component.overload is not None
        ]
        per_guard = [guard.stats(self.kernel.now) for guard in guards]
        totals: dict[str, Any] = {}
        for stats in per_guard:
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        if per_guard:
            totals["max_pending"] = max(s["max_pending"] for s in per_guard)
        letters = self.dead_letters()
        totals["dead_letter_depth"] = len(letters)
        totals["dead_letters"] = letters
        totals["dead_letters_replayed"] = self.dead_letters_replayed
        return totals

    async def redeliver_dead_letters_async(
        self, reset_breakers: bool = True
    ) -> dict[str, int]:
        """Replay every parked call after the fault clears.

        Exactly-once end to end: letters whose request id already has a
        response in the journal are skipped (settled elsewhere -- e.g. a
        reconciliation copy completed while the letter sat parked), the
        batch is deduplicated by (id, step), and each replay re-enters the
        normal routing path -- single placement plus per-component (id,
        step) dedup make a replay that races a recovery copy execute once.
        A replay that fails again simply parks a fresh letter.

        ``reset_breakers`` force-closes every breaker first: invoking
        redelivery is the operator's declaration that the fault cleared,
        and without it the replays would divert straight back to the lot.
        """
        letters = self._dead_letter_values()
        summary = {
            "parked": len(letters),
            "replayed": 0,
            "skipped_settled": 0,
            "skipped_duplicate": 0,
            "breakers_reset": 0,
        }
        if reset_breakers:
            for component in self.components.values():
                if component.alive and component.overload is not None:
                    summary["breakers_reset"] += (
                        component.overload.reset_breakers(self.kernel.now)
                    )
        if not letters:
            return summary
        requested: set[str] = set()
        responded: set[str] = set()
        topic = self.broker.topics.get(self.topic_name)
        if topic is not None:
            for record in topic.snapshot_unexpired(self.kernel.now):
                envelope = record.value
                if isinstance(envelope, Response):
                    responded.add(envelope.request_id)
                elif isinstance(envelope, Request):
                    requested.add(envelope.request_id)
        # Drop the lot up front: a replay that fails again re-parks a fresh
        # letter (with its extended history) instead of duplicating itself.
        self.broker.topic(self.dead_letter_topic).drop_partition(
            DEAD_LETTER_PARTITION
        )
        client = self.client()
        seen: set[tuple[str, int]] = set()
        for letter in letters:
            request = letter.request
            if request.dedup_key in seen:
                summary["skipped_duplicate"] += 1
                continue
            seen.add(request.dedup_key)
            if request.request_id in responded:
                summary["skipped_settled"] += 1
                self.trace.emit(
                    "deadletter.skipped",
                    request=request.request_id,
                    step=request.step,
                    reason="already settled",
                )
                continue
            if request.after_callee is not None and not (
                request.after_callee in requested
                and request.after_callee not in responded
            ):
                # The happen-before callee already settled (or its evidence
                # expired): replaying with the annotation intact would park
                # forever on a response that will never arrive again.
                request = replace(request, after_callee=None)
            await client.router.route_request(request)
            summary["replayed"] += 1
            self.dead_letters_replayed += 1
            self.trace.emit(
                "deadletter.replayed",
                request=request.request_id,
                step=request.step,
                actor=str(request.actor),
                method=request.method,
            )
        return summary

    def redeliver_dead_letters(
        self, reset_breakers: bool = True, timeout: float | None = 600.0
    ) -> dict[str, int]:
        """Synchronous driver for :meth:`redeliver_dead_letters_async`."""
        client = self.client()
        task = self.kernel.spawn(
            self.redeliver_dead_letters_async(reset_breakers),
            process=client.process,
            name="redeliver_dead_letters",
        )
        return self.kernel.run_until_complete(task, timeout=timeout)

    # ------------------------------------------------------------------
    # durability evidence (cold-restart benchmarks and tests)
    # ------------------------------------------------------------------
    def _unsettled_call_ids(self) -> list[str]:
        """Request ids with a retained request record but no response."""
        topic = self.broker.topics.get(self.topic_name)
        if topic is None:
            return []
        requested: set[str] = set()
        responded: set[str] = set()
        for record in topic.snapshot_unexpired(self.kernel.now):
            envelope = record.value
            if isinstance(envelope, Response):
                responded.add(envelope.request_id)
            elif isinstance(envelope, Request):
                requested.add(envelope.request_id)
        return sorted(requested - responded)

    def _persistence_stats(self) -> dict[str, int]:
        """Durable-layer counters: journal volume, compaction, replay."""
        log = self.broker.log
        return {
            "boot": self.boot,
            "records_logged": log.records_logged,
            "records_retained": log.retained_records(),
            "log_compactions": log.compactions,
            "journal_rewrites": getattr(log, "rewrites", 0),
            "restored_records": self.restored_records,
        }
