"""Top-level application wiring: broker + store + components + clients.

A :class:`KarApplication` owns the simulated infrastructure (one Kafka-like
broker, one Redis-like store, one consumer group per application) and the
set of components, and offers the external-client call surface plus failure
injection (kill / restart a component) used by tests and the benchmark
harnesses.
"""

from __future__ import annotations

from typing import Any

from repro.core.actor import Actor, ActorRegistry
from repro.core.config import KarConfig
from repro.core.refs import ActorRef
from repro.core.runtime import Component
from repro.kvstore import KVStore
from repro.mq import Broker, GroupCoordinator
from repro.sim import Kernel, TraceRecorder

__all__ = ["KarApplication"]


class _IdGenerator:
    """Monotonic, deterministic request ids."""

    def __init__(self, prefix: str = "r"):
        self._prefix = prefix
        self._counter = 0

    def fresh(self) -> str:
        self._counter += 1
        return f"{self._prefix}{self._counter:06d}"


class KarApplication:
    """One KAR application: infrastructure, components, and clients."""

    def __init__(
        self,
        kernel: Kernel,
        config: KarConfig | None = None,
        name: str = "app",
    ):
        self.kernel = kernel
        self.config = config or KarConfig()
        self.name = name
        self.topic_name = f"{name}-topic"
        self.broker = Broker(kernel, self.config.broker)
        self.store = KVStore(kernel, self.config.store_latency)
        self.coordinator = GroupCoordinator(self.broker, name, self.topic_name)
        self.registry = ActorRegistry()
        self.trace = TraceRecorder(kernel)
        self.ids = _IdGenerator()
        self.components: dict[str, Component] = {}
        self.component_types: dict[str, frozenset[str]] = {}
        self._epochs: dict[str, int] = {}
        self._client: Component | None = None
        self.reminders_in_use = False
        self.external_services: list[Any] = []

    def register_external_service(self, service: Any) -> Any:
        """Register a stateful service actors interact with directly.

        KAR requires *forceful disconnection* for every stateful service in
        use (Sections 1, 2.3): reconciliation fences failed components on
        each registered service, so their lingering operations cannot land.
        The service must expose ``fence(client_id)``.
        """
        self.external_services.append(service)
        return service

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def register_actor(self, actor_class: type[Actor], name: str | None = None) -> str:
        """Make an actor type available for hosting by components."""
        return self.registry.register(actor_class, name)

    def add_component(
        self, name: str, actor_types: tuple[str, ...] = ()
    ) -> Component:
        """Create and start a component announcing the given actor types."""
        for actor_type in actor_types:
            if actor_type not in self.registry:
                raise ValueError(f"actor type {actor_type!r} is not registered")
        if name in self.components and self.components[name].alive:
            raise ValueError(f"component {name!r} is already running")
        epoch = self._epochs.get(name, -1) + 1
        self._epochs[name] = epoch
        component = Component(self, name, tuple(actor_types), epoch)
        self.components[name] = component
        self.component_types[name] = frozenset(actor_types)
        return component.start()

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def kill_component(self, name: str) -> None:
        """Abrupt fail-stop of a component (both paired processes)."""
        self.components[name].fail()

    def restart_component(self, name: str) -> Component:
        """Spawn a fresh incarnation (new member id, new queue) of a
        previously-added component, as a restarted node's replicas would."""
        types = tuple(sorted(self.component_types[name]))
        old = self.components.get(name)
        if old is not None and old.alive:
            raise ValueError(f"component {name!r} is still alive")
        epoch = self._epochs[name] + 1
        self._epochs[name] = epoch
        component = Component(self, name, types, epoch)
        self.components[name] = component
        return component.start()

    # ------------------------------------------------------------------
    # external clients
    # ------------------------------------------------------------------
    def client(self, name: str = "client") -> Component:
        """A component hosting no actors, used to drive the application
        (the paper's simulators / WebAPI run as such components)."""
        if self._client is None or not self._client.alive:
            self._client = self.add_component(name)
        return self._client

    async def call(self, ref: ActorRef, method: str, *args: Any) -> Any:
        """Blocking root invocation from the default external client."""
        return await self.client().invoke(None, ref, method, tuple(args), True)

    async def tell(self, ref: ActorRef, method: str, *args: Any) -> None:
        await self.client().invoke(None, ref, method, tuple(args), False)

    # ------------------------------------------------------------------
    # synchronous driving helpers (tests, benches)
    # ------------------------------------------------------------------
    def run_call(
        self, ref: ActorRef, method: str, *args: Any, timeout: float | None = 600.0
    ) -> Any:
        client = self.client()
        task = self.kernel.spawn(
            client.invoke(None, ref, method, tuple(args), True),
            process=client.process,
            name=f"client.call:{ref}.{method}",
        )
        return self.kernel.run_until_complete(task, timeout=timeout)

    def settle(self, max_wait: float = 120.0) -> None:
        """Drive the kernel until the group has a generation and is
        unpaused (the application is ready to process invocations)."""
        deadline = self.kernel.now + max_wait
        while self.coordinator.generation == 0 or self.coordinator.paused:
            if self.kernel.now >= deadline:
                raise TimeoutError("application did not settle")
            self.kernel.run(until=min(self.kernel.now + 0.5, deadline))

    def live_component_names(self) -> list[str]:
        return sorted(
            member.rsplit("#", 1)[0] for member in self.coordinator.members
        )

    def transport_stats(self) -> dict[str, int]:
        """Aggregate transport counters across the broker and every current
        component incarnation's router -- the evidence surface for the
        throughput benchmarks (round trips vs. records sent)."""
        routers = [c.router for c in self.components.values()]
        return {
            "produce_round_trips": self.broker.produce_count,
            "records_appended": self.broker.produce_record_count,
            "outbox_batches": sum(r.batches_flushed for r in routers),
            "outbox_records": sum(r.records_sent for r in routers),
            "largest_batch": max(
                (r.largest_batch for r in routers), default=0
            ),
        }
