"""The ``actor.state`` persistence API (Section 2.1).

Actor state lives in a per-instance hash in the simulated Redis, accessed
through the hosting component's store client -- so a fenced (failed)
component can no longer mutate any actor's persisted state, and KAR's retry
guarantees are independent of whether actors use this API at all.

Two memory/latency optimisations layer on top of the raw hash:

- multi-field operations (``set_multiple``/``get_all``) cost one store
  round trip via the :meth:`StoreClient.hset_many` / ``hgetall`` primitives
  instead of one per field;
- a per-resident-instance **write-through cache** (:class:`ActorStateCache`)
  absorbs repeat reads. An actor's state is only ever written through its
  hosting component while the actor is placed there (the placement CAS plus
  the actor lock make the hosting component the single writer), so the
  cache can serve reads without revalidation. It is dropped when the
  instance is passivated and dies with the component on failure; the next
  activation re-reads the store. ``state_of`` (another instance's state)
  never uses a cache -- only the self view is single-writer.
"""

from __future__ import annotations

from typing import Any

from repro.core.refs import ActorRef
from repro.kvstore import StoreClient

__all__ = ["ActorStateAPI", "ActorStateCache", "state_key"]

#: Cache marker for a field known to be absent from the store hash.
#: Distinct from a stored ``None`` value so a warm ``get_all`` reports
#: exactly what a cold ``hgetall`` would.
_ABSENT = object()


def state_key(ref: ActorRef) -> str:
    return f"state:{ref.type}:{ref.id}"


class ActorStateCache:
    """Write-through view of one resident instance's persisted hash.

    ``fields`` holds every field whose store value is known (``_ABSENT``
    marks fields known to be missing); ``complete`` records whether the
    *whole* hash is known (set after a full read or a full wipe), which
    lets ``get_all`` and missing-field ``get`` answer without a round trip.
    """

    __slots__ = ("fields", "complete")

    def __init__(self) -> None:
        self.fields: dict[str, Any] = {}
        self.complete = False


class ActorStateAPI:
    """Get/set/remove persisted fields of one actor instance."""

    def __init__(
        self,
        client: StoreClient,
        ref: ActorRef,
        cache: ActorStateCache | None = None,
    ):
        self._client = client
        self._key = state_key(ref)
        self._cache = cache

    async def get(self, field: str, default: Any = None) -> Any:
        cache = self._cache
        if cache is not None:
            if field in cache.fields:
                value = cache.fields[field]
                if value is _ABSENT or value is None:
                    return default
                return value
            if cache.complete:
                return default
        value = await self._client.hget(self._key, field)
        if cache is not None:
            cache.fields[field] = _ABSENT if value is None else value
        return default if value is None else value

    async def set(self, field: str, value: Any) -> None:
        await self._client.hset(self._key, field, value)
        if self._cache is not None:
            self._cache.fields[field] = value

    async def set_multiple(self, updates: dict[str, Any]) -> None:
        """Write several fields in one store round trip."""
        if not updates:
            return
        await self._client.hset_many(self._key, updates)
        if self._cache is not None:
            self._cache.fields.update(updates)

    async def get_multiple(self, fields: tuple[str, ...]) -> dict[str, Any]:
        """Read several fields in one store round trip (missing -> None)."""
        cache = self._cache
        if cache is not None and all(
            field in cache.fields or cache.complete for field in fields
        ):
            return {
                field: (
                    None
                    if cache.fields.get(field, _ABSENT) is _ABSENT
                    else cache.fields[field]
                )
                for field in fields
            }
        values = await self._client.hget_many(self._key, tuple(fields))
        if cache is not None:
            for field, value in values.items():
                cache.fields[field] = _ABSENT if value is None else value
        return values

    async def remove(self, field: str) -> bool:
        removed = await self._client.hdel(self._key, field)
        if self._cache is not None:
            self._cache.fields[field] = _ABSENT
        return removed

    async def get_all(self) -> dict[str, Any]:
        cache = self._cache
        if cache is not None and cache.complete:
            return {
                field: value
                for field, value in cache.fields.items()
                if value is not _ABSENT
            }
        values = await self._client.hgetall(self._key)
        if cache is not None:
            cache.fields = dict(values)
            cache.complete = True
        return values

    async def remove_all(self) -> bool:
        """Delete all persisted state (e.g. an Order actor upon arrival at
        its destination port, Section 5)."""
        removed = await self._client.delete_hash(self._key)
        if self._cache is not None:
            self._cache.fields = {}
            self._cache.complete = True
        return removed
