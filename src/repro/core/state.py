"""The ``actor.state`` persistence API (Section 2.1).

Actor state lives in a per-instance hash in the simulated Redis, accessed
through the hosting component's store client -- so a fenced (failed)
component can no longer mutate any actor's persisted state, and KAR's retry
guarantees are independent of whether actors use this API at all.
"""

from __future__ import annotations

from typing import Any

from repro.core.refs import ActorRef
from repro.kvstore import StoreClient

__all__ = ["ActorStateAPI", "state_key"]


def state_key(ref: ActorRef) -> str:
    return f"state:{ref.type}:{ref.id}"


class ActorStateAPI:
    """Get/set/remove persisted fields of one actor instance."""

    def __init__(self, client: StoreClient, ref: ActorRef):
        self._client = client
        self._key = state_key(ref)

    async def get(self, field: str, default: Any = None) -> Any:
        value = await self._client.hget(self._key, field)
        return default if value is None else value

    async def set(self, field: str, value: Any) -> None:
        await self._client.hset(self._key, field, value)

    async def set_multiple(self, updates: dict[str, Any]) -> None:
        for field, value in updates.items():
            await self._client.hset(self._key, field, value)

    async def remove(self, field: str) -> bool:
        return await self._client.hdel(self._key, field)

    async def get_all(self) -> dict[str, Any]:
        return await self._client.hgetall(self._key)

    async def remove_all(self) -> bool:
        """Delete all persisted state (e.g. an Order actor upon arrival at
        its destination port, Section 5)."""
        return await self._client.delete_hash(self._key)
