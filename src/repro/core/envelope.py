"""Wire-format envelopes for invocation requests and responses.

An envelope corresponds to a message in the formal semantics (Section 3.2):
a request carries ``(request id, return address, a.m(v))`` and a response
carries ``(request id, return address, v)``. The implementation adds the
fields Section 4 describes: the caller's queue for response routing, the
caller's component for cancellation, the ancestor chain for reentrancy, the
pending-callee annotation written by reconciliation (happen-before), and a
step counter so a tail call (which reuses the caller's request id) supersedes
the request it completes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.core.refs import ActorRef
from repro.persist.framing import (
    REQUEST_TYPE_ID,
    RESPONSE_TYPE_ID,
    register_frame_type,
)

__all__ = ["Request", "Response", "TailCall"]

#: Binary-frame table id for TailCall (ids below 64 are runtime-reserved).
TAILCALL_TYPE_ID = 4


@dataclass(frozen=True, slots=True)
class Request:
    """An invocation request bound for the callee component's queue."""

    request_id: str
    step: int
    actor: ActorRef
    method: str
    args: tuple
    return_address: str | None  # caller's request id; None for tell / root
    reply_to: str | None  # member id whose queue receives the response
    caller_actor: ActorRef | None  # for response re-routing after failures
    caller_member: str | None  # for the cancellation liveness check
    ancestors: tuple[str, ...] = ()  # request-id chain, root first
    tail_lock: bool = False  # tail call to self: retain the actor lock
    after_callee: str | None = None  # happen-before postponement (recovery)
    copy_epoch: int = 0  # generation that copied this request (0 = original)
    expects_reply: bool = True  # False for tell (response self-acks only)
    attempts: int = 0  # recovery copies delivered so far (redelivery count)
    attempt_log: tuple[float, ...] = ()  # timestamps of those copies

    @property
    def dedup_key(self) -> tuple[str, int]:
        """Requests are deduplicated by (id, step): reconciliation may copy
        the same pending request more than once if it is itself interrupted
        ("request messages already copied ... are skipped", Section 4.3)."""
        return (self.request_id, self.step)

    def tail_successor(
        self, actor: ActorRef, method: str, args: tuple, current: ActorRef
    ) -> "Request":
        """The single message that atomically completes this request while
        issuing the next one (Section 2.3): same id, same return address,
        bumped step; the lock is retained iff the callee is the caller."""
        return replace(
            self,
            step=self.step + 1,
            actor=actor,
            method=method,
            args=args,
            tail_lock=(actor == current),
            after_callee=None,
            copy_epoch=0,
            attempts=0,
            attempt_log=(),
        )

    def recovery_copy(
        self, epoch: int, after_callee: str | None, now: float | None = None
    ) -> "Request":
        """A redelivery of this request, stamped into its attempt history
        so redelivery caps and dead-letter evidence can count real copies."""
        log = self.attempt_log if now is None else self.attempt_log + (now,)
        return replace(
            self,
            copy_epoch=epoch,
            after_callee=after_callee,
            attempts=self.attempts + 1,
            attempt_log=log,
        )


@dataclass(frozen=True, slots=True)
class Response:
    """A result (or propagated error / synthetic cancellation) message."""

    request_id: str
    value: Any = None
    error: str | None = None
    cancelled: bool = False


@dataclass(frozen=True, slots=True)
class TailCall:
    """Sentinel returned from an actor method to request a tail call.

    Built by :meth:`ActorContext.tail_call`; the runtime recognizes it and
    atomically records the completion of the current invocation together
    with the request to invoke the target (Section 2.3).
    """

    actor: ActorRef
    method: str
    args: tuple


register_frame_type(Request, REQUEST_TYPE_ID)
register_frame_type(Response, RESPONSE_TYPE_ID)
register_frame_type(TailCall, TAILCALL_TYPE_ID)
