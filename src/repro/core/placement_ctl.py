"""Load-aware placement control (the adaptive half of the scale-out story).

Static bounded-load consistent hashing balances component *counts*; under
zipfian traffic one hot component pins a single worker loop while the rest
idle. This module closes the loop:

- the **load plane**: each control tick samples every live worker's
  decaying busy window and per-component load from its
  :class:`~repro.core.cluster.WorkerLoop` and publishes the snapshot
  through the shared store (``_cluster:<app>:load``), so any observer --
  human or worker -- reads the same view of current hotness;
- the **controller**: on the same tick it plans at most
  ``migration_budget`` placement actions, with hysteresis
  (``rebalance_cooldown``) so it reacts to sustained skew, not noise:

  * **merge** split children back into their parent once the busiest
    worker has idled below the merge floor for ``MERGE_PATIENCE_TICKS``
    consecutive ticks (the skew subsided cluster-wide);
  * **split** a component whose own busy rate exceeds ``split_threshold``
    -- it saturates any single worker, so no migration can help it;
  * **migrate** the hottest movable component off the busiest worker when
    worker imbalance ``(max - min) / max`` exceeds
    ``rebalance_threshold``.

Every action rides the existing drain -> fence -> replay-tail handoff
(:class:`~repro.core.cluster.KarCluster`), so exactly-once settlement is
preserved by the same machinery that covers crashes and joins.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.sharding import parent_partition

if TYPE_CHECKING:
    from repro.core.cluster import KarCluster

__all__ = ["PlacementController"]

#: Consecutive cold ticks before split children merge back; patience keeps
#: a briefly idle hot component from flapping split -> merge -> split.
MERGE_PATIENCE_TICKS = 4

#: Ignore imbalance while the busiest worker is under this busy rate: an
#: almost-idle cluster has nothing worth paying a handoff for.
MIN_ACTIONABLE_RATE = 0.2


class PlacementController:
    """Plans load-driven migrations/splits/merges for one cluster."""

    def __init__(self, cluster: "KarCluster"):
        self.cluster = cluster
        self.config = cluster.config
        self.load_key = f"_cluster:{cluster.name}:load"
        self.ticks = 0
        #: Actions planned, by kind (scheduled, not necessarily performed;
        #: the cluster counts performed ones).
        self.planned: dict[str, int] = {"migrate": 0, "split": 0, "merge": 0}
        self._last_action_at = -float("inf")
        self._running = False
        self._cold_ticks: dict[str, int] = {}

    # ------------------------------------------------------------------
    # the control tick
    # ------------------------------------------------------------------
    def tick(self, now: float) -> None:
        self.ticks += 1
        worker_rates, component_loads = self._sample(now)
        self._publish(worker_rates, component_loads)
        if not self.config.adaptive_placement:
            return
        if self._running:
            return
        if now - self._last_action_at < self.config.rebalance_cooldown:
            return
        actions = self._plan(worker_rates, component_loads)
        if not actions:
            return
        self._last_action_at = now
        self._running = True
        self.cluster.kernel.spawn(
            self._run(actions),
            name=f"placement-ctl:{self.cluster.name}",
        )

    def _sample(
        self, now: float
    ) -> tuple[dict[str, float], dict[str, dict[str, Any]]]:
        worker_rates: dict[str, float] = {}
        component_loads: dict[str, dict[str, Any]] = {}
        for worker_id, worker in sorted(self.cluster.workers.items()):
            if not worker.alive or worker.retired:
                continue
            worker_rates[worker_id] = worker.loop.busy_rate(now)
            for name, load in worker.loop.component_loads(now).items():
                if name in worker.hosted:
                    component_loads[name] = dict(load, worker=worker_id)
        return worker_rates, component_loads

    def _publish(
        self,
        worker_rates: dict[str, float],
        component_loads: dict[str, dict[str, Any]],
    ) -> None:
        """Whole-snapshot publish: stale entries never linger."""
        backend = self.cluster.store.backend
        backend.hset(self.load_key, "workers", worker_rates)
        backend.hset(self.load_key, "components", component_loads)

    def load_snapshot(self) -> dict[str, Any]:
        """The last published load-plane snapshot (store-backed)."""
        return dict(self.cluster.store.backend.hgetall(self.load_key))

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _plan(
        self,
        worker_rates: dict[str, float],
        component_loads: dict[str, dict[str, Any]],
    ) -> list[tuple[str, ...]]:
        budget = max(1, self.config.migration_budget)
        actions: list[tuple[str, ...]] = []
        self._plan_merges(worker_rates, actions, budget)
        if len(actions) < budget:
            self._plan_splits(component_loads, actions, budget)
        if len(actions) < budget:
            self._plan_migration(worker_rates, component_loads, actions)
        for action in actions:
            self.planned[action[0]] += 1
        return actions

    def _plan_merges(
        self,
        worker_rates: dict[str, float],
        actions: list[tuple[str, ...]],
        budget: int,
    ) -> None:
        """Merge split children back once the *cluster* has cooled.

        The cool signal is deliberately not the children's own load: after
        a split the parent's actors re-key over the whole candidate set,
        so lightly-loaded children are the normal steady state of a
        *successful* split. Merging on that signal resurrects the hot
        parent mid-burst and flaps split -> merge -> split. Instead the
        children stay out as long as any worker is meaningfully busy, and
        fold back only when the busiest worker idles below the merge floor
        for ``MERGE_PATIENCE_TICKS`` consecutive ticks.
        """
        floor = self.config.split_threshold * self.config.split_merge_ratio
        peak = max(worker_rates.values(), default=0.0)
        for parent in sorted(self.cluster.split_children):
            if peak >= floor:
                self._cold_ticks[parent] = 0
                continue
            self._cold_ticks[parent] = self._cold_ticks.get(parent, 0) + 1
            if (
                self._cold_ticks[parent] >= MERGE_PATIENCE_TICKS
                and len(actions) < budget
            ):
                self._cold_ticks[parent] = 0
                actions.append(("merge", parent))

    def _plan_splits(
        self,
        component_loads: dict[str, dict[str, Any]],
        actions: list[tuple[str, ...]],
        budget: int,
    ) -> None:
        candidates = sorted(
            (
                (load["busy_rate"], name)
                for name, load in component_loads.items()
                if load["busy_rate"] > self.config.split_threshold
                and name not in self.cluster.split_children
                and parent_partition(name) is None
            ),
            reverse=True,
        )
        for _rate, name in candidates:
            if len(actions) >= budget:
                return
            actions.append(("split", name))

    def _plan_migration(
        self,
        worker_rates: dict[str, float],
        component_loads: dict[str, dict[str, Any]],
        actions: list[tuple[str, ...]],
    ) -> None:
        if len(worker_rates) < 2:
            return
        busiest = max(worker_rates, key=lambda wid: (worker_rates[wid], wid))
        coolest = min(worker_rates, key=lambda wid: (worker_rates[wid], wid))
        peak, trough = worker_rates[busiest], worker_rates[coolest]
        if peak <= MIN_ACTIONABLE_RATE:
            return
        if (peak - trough) / peak <= self.config.rebalance_threshold:
            return
        splitting = {action[1] for action in actions}
        hosted = sorted(
            (
                (load["busy_rate"], name)
                for name, load in component_loads.items()
                if load["worker"] == busiest and name not in splitting
            ),
            reverse=True,
        )
        if len(hosted) < 2:
            # A lone component *is* the worker's load; moving it only
            # relocates the hotspot (splitting is the cure, handled above).
            return
        gap = peak - trough
        # Largest component that fits in the gap -- moving it must not
        # just swap which worker is hottest.
        for rate, name in hosted:
            if rate <= gap:
                actions.append(("migrate", name, coolest))
                return

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _run(self, actions: list[tuple[str, ...]]) -> None:
        cluster = self.cluster
        try:
            for action in actions:
                try:
                    if action[0] == "merge":
                        await cluster._merge_component(action[1])
                    elif action[0] == "split":
                        await cluster._split_component(action[1])
                    else:
                        await cluster._migrate_component(action[1], action[2])
                except Exception as error:  # keep the control plane alive
                    cluster.trace.emit(
                        "placement.error",
                        action=list(action),
                        error=repr(error),
                    )
        finally:
            self._running = False

    def stats(self) -> dict[str, Any]:
        return {
            "ticks": self.ticks,
            "planned": dict(self.planned),
            "last_action_at": self._last_action_at,
        }
