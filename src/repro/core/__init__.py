"""The KAR runtime: actors, tail calls, retry orchestration, reconciliation.

Public surface:

- :class:`KarApplication` -- wire up infrastructure and components;
- :class:`Actor` -- base class for application actors;
- :class:`ActorRef` / :func:`actor_proxy` -- actor references;
- :class:`ActorContext` -- per-invocation API (call / tell / tail_call /
  state / reminders), handed to every actor method;
- :class:`KarConfig` -- timing parameters and feature flags;
- :class:`TailCall` -- the value an actor method returns to chain work;
- errors: :class:`ActorMethodError`, :class:`InvocationCancelled`,
  :class:`NoPlacementError`.
"""

from repro.core.actor import Actor, ActorRegistry
from repro.core.api import KarApi
from repro.core.app import KarApplication
from repro.core.cluster import DecayingCounter, KarCluster, KarWorker, WorkerLoop
from repro.core.config import KarConfig
from repro.core.context import ActorContext
from repro.core.dispatcher import ActorMailbox
from repro.core.envelope import Request, Response, TailCall
from repro.core.errors import (
    ActorMethodError,
    BreakerOpenError,
    InvocationCancelled,
    KarError,
    NoPlacementError,
    UnknownActorTypeError,
)
from repro.core.overload import (
    BackoffPolicy,
    CircuitBreaker,
    DeadLetter,
    OverloadGuard,
    RetryBudget,
)
from repro.core.placement import PlacementService
from repro.core.placement_ctl import PlacementController
from repro.core.refs import ActorRef, actor_proxy
from repro.core.reminders import ReminderAPI
from repro.core.retention import RetentionSet
from repro.core.router import Router
from repro.core.runtime import Component
from repro.core.sharding import HashRing, parent_partition, sub_partition_names
from repro.core.state import ActorStateAPI, ActorStateCache

__all__ = [
    "Actor",
    "ActorContext",
    "ActorMailbox",
    "ActorMethodError",
    "ActorRef",
    "ActorRegistry",
    "ActorStateAPI",
    "ActorStateCache",
    "BackoffPolicy",
    "BreakerOpenError",
    "CircuitBreaker",
    "Component",
    "DeadLetter",
    "DecayingCounter",
    "HashRing",
    "InvocationCancelled",
    "KarApi",
    "KarApplication",
    "KarCluster",
    "KarConfig",
    "KarError",
    "KarWorker",
    "NoPlacementError",
    "OverloadGuard",
    "PlacementController",
    "PlacementService",
    "ReminderAPI",
    "Request",
    "RetentionSet",
    "RetryBudget",
    "Response",
    "Router",
    "TailCall",
    "UnknownActorTypeError",
    "WorkerLoop",
    "actor_proxy",
    "parent_partition",
    "sub_partition_names",
]
