"""Application components: the paired app + runtime (sidecar) processes.

Each :class:`Component` owns one message queue (its partition), a consumer
loop that delivers responses to suspended callers and dispatches requests to
per-actor mailboxes, and a :class:`~repro.core.router.Router` transport that
resolves placements and batches every outgoing envelope through a send
outbox (Section 4.1). A component is one failure domain: killing it abandons
every in-flight method execution, exactly like the formal failure rule.

The retry-orchestration mechanics live here too:

- requests annotated with ``after_callee`` by reconciliation are *parked*
  until the callee's response (possibly synthetic) arrives -- the
  happen-before guarantee of Sections 2.2/3.4;
- execution of a nested call whose caller's component is dead is elided and
  answered with a synthetic response when cancellation is enabled
  (Section 4.4);
- tail calls atomically complete the current request while issuing the next
  one: a single produced message serves as both (Section 2.3).

Memory management lives in a per-component maintenance loop: instances idle
past ``idle_passivation_timeout`` are passivated (``Actor.deactivate``,
then eviction of the instance, its mailbox, and its state cache), and the
dedup evidence (settled ids, handled keys) is retention-clocked in step
with broker record expiry -- so a long-running component's footprint tracks
its working set, not its lifetime history.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Any

from repro.core.actor import Actor
from repro.core.context import ActorContext
from repro.core.dispatcher import ActorMailbox
from repro.core.envelope import Request, Response, TailCall
from repro.core.errors import ActorMethodError, InvocationCancelled
from repro.core.overload import CircuitBreaker, DeadLetter, OverloadGuard
from repro.core.placement import PlacementService
from repro.core.refs import ActorRef
from repro.core.retention import RetentionSet
from repro.core.router import Router
from repro.core.state import ActorStateCache
from repro.kvstore import FencedClientError, PipelinedStoreClient
from repro.mq import FencedMemberError, GenerationInfo
from repro.sim import SimProcess

if TYPE_CHECKING:
    from repro.core.app import KarApplication

__all__ = ["Component"]

_FENCE_ERRORS = (FencedMemberError, FencedClientError)


class Component:
    """One application component (app process + paired runtime process)."""

    def __init__(
        self,
        app: "KarApplication",
        name: str,
        actor_types: tuple[str, ...],
        epoch: int,
        worker=None,
    ):
        self.app = app
        self.name = name
        self.actor_types = frozenset(actor_types)
        self.epoch = epoch
        #: Hosting worker event loop (scale-out mode), or ``None`` when the
        #: application runs single-loop. The worker supplies the group
        #: coordinator *view* and the event-loop cost horizon.
        self.worker = worker
        # Interned: the member id names this incarnation in every request
        # header, fence set, placement entry, and journal frame.
        self.member_id = sys.intern(f"{name}#{epoch}")
        self.process = SimProcess(self.member_id)
        self.member = None
        self.store_client = None
        self.placement: PlacementService | None = None
        self.router = Router(self)
        self._instances: dict[ActorRef, Actor] = {}
        self._mailboxes: dict[ActorRef, ActorMailbox] = {}
        self._pending_calls: dict[str, Any] = {}
        self._parked: dict[str, list[Request]] = {}
        # Completion evidence is retention-clocked, not kept forever: a
        # duplicate can only be minted from an unexpired broker record, so
        # evidence older than the retention horizon is garbage (swept by
        # the maintenance loop).
        self._settled: RetentionSet = RetentionSet()
        self._handled: RetentionSet = RetentionSet()
        # Per-resident-instance lifecycle bookkeeping (passivation) and
        # write-through state caches; all three evict together.
        self._state_caches: dict[ActorRef, ActorStateCache] = {}
        self._last_active: dict[ActorRef, float] = {}
        self.passivations = 0
        self._live_members: set[str] | None = None
        self.is_leader = False
        # Overload control (retry budgets, breakers, mailbox admission):
        # per-incarnation state, sharing the component's fate like dedup
        # evidence does. ``None`` keeps the legacy unguarded behaviour.
        self.overload: OverloadGuard | None = (
            OverloadGuard(app.config, app.kernel)
            if app.config.overload_guard
            else None
        )

    # ------------------------------------------------------------------
    # shortcuts
    # ------------------------------------------------------------------
    @property
    def kernel(self):
        return self.app.kernel

    @property
    def config(self):
        return self.app.config

    @property
    def coordinator(self):
        if self.worker is not None:
            return self.worker.coordinator
        return self.app.coordinator

    @property
    def trace(self):
        return self.app.trace

    @property
    def alive(self) -> bool:
        return self.process.alive

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Component":
        # Claim the partition family before consuming it: acquiring at this
        # epoch fences any older incarnation still holding the lease (the
        # handoff fence of the scale-out protocol). Epochs only grow, so in
        # single-loop mode this is the same supersession restart_component
        # always implied.
        self.app.broker.acquire_partition_lease(
            self.app.topic_name, self.name, self.member_id, self.epoch
        )
        self.member = self.coordinator.join(self.member_id, self.process)
        if self.config.store_pipeline:
            # Same-turn store operations share one backend round trip; the
            # flusher lives on this component's failure domain.
            self.store_client = PipelinedStoreClient(
                self.app.store,
                self.member_id,
                process=self.process,
                batch_max=self.config.store_batch_max,
            )
        else:
            self.store_client = self.app.store.client(self.member_id)
        self.placement = PlacementService(
            self.store_client, self.config.placement_cache
        )
        self.coordinator.on_generation(self._on_generation)
        self.kernel.spawn(
            self._consume_loop(), self.process, name=f"consume:{self.member_id}"
        )
        self.kernel.spawn(
            self._reminder_loop(), self.process, name=f"reminders:{self.member_id}"
        )
        self.kernel.spawn(
            self._maintenance_loop(),
            self.process,
            name=f"maintenance:{self.member_id}",
        )
        if self.worker is not None and self.config.lease_ttl is not None:
            self.kernel.spawn(
                self._lease_renewal_loop(),
                self.process,
                name=f"lease-renew:{self.member_id}",
            )
        self.trace.emit("component.start", member=self.member_id)
        return self

    def fail(self) -> None:
        """Abrupt fail-stop of the paired app + runtime processes."""
        if self.process.alive:
            self.trace.emit("component.fail", member=self.member_id)
            self.process.kill()

    @property
    def quiescent(self) -> bool:
        """No frame executing, nothing queued, nothing awaiting transport."""
        return (
            all(mailbox.idle for mailbox in self._mailboxes.values())
            and not self._pending_calls
            and not self._parked
            and self.router.outbox_idle
        )

    async def drain(self, timeout: float) -> bool:
        """Graceful-handoff step one: wait for in-flight work to finish.

        Polls until the component is quiescent or ``timeout`` simulated
        seconds pass; returns whether quiescence was reached. A timed-out
        drain is not an error -- the caller proceeds to fence the old
        incarnation and reconciliation recovers whatever was cut off, the
        same as a crash (that equivalence is exactly what the rebalance
        edge tests pin down).
        """
        deadline = self.kernel.now + timeout
        while self.kernel.now < deadline:
            if self.quiescent:
                return True
            await self.kernel.sleep(0.01)
        return self.quiescent

    def stop(self) -> None:
        """Graceful departure: leave the group (which fences this member),
        then terminate the paired processes. Unlike :meth:`fail`, the
        group learns immediately instead of waiting out a session timeout."""
        if not self.process.alive:
            return
        self.trace.emit("component.stop", member=self.member_id)
        self.coordinator.leave(self.member_id)
        if self.process.alive:
            self.process.kill()

    def _suicide(self) -> None:
        """We were deemed failed (fenced) while still running: terminate.

        This is the paired-process termination of Section 4.1 -- a fenced
        zombie must stop rather than keep computing with stale authority.
        """
        if self.process.alive:
            self.trace.emit("component.fenced_exit", member=self.member_id)
            self.process.kill()

    async def _lease_renewal_loop(self) -> None:
        """The partition lease's TTL heartbeat (scale-out mode only).

        Renewal is deliberately *not* tied to the worker's store heartbeat:
        a wedged worker keeps heartbeating (its processes are alive) but
        stops renewing, which is exactly the liveness gap the control
        plane's lease sweep detects. Being fenced out of the lease means a
        successor took over -- paired-process termination, like any fence.
        """
        ttl = self.config.lease_ttl
        assert ttl is not None
        interval = max(ttl / 4.0, 0.01)
        try:
            while True:
                await self.kernel.sleep(interval)
                if self.worker is not None and self.worker.wedged:
                    continue
                self.app.broker.renew_partition_lease(
                    self.app.topic_name, self.name, self.member_id, self.epoch
                )
        except _FENCE_ERRORS:
            self._suicide()

    # ------------------------------------------------------------------
    # invocation entry point (used by ActorContext and external clients)
    # ------------------------------------------------------------------
    async def invoke(
        self,
        caller: Request | None,
        ref: ActorRef,
        method: str,
        args: tuple,
        expects_reply: bool = True,
    ) -> Any:
        """Issue an actor invocation from this component.

        ``caller`` is the request of the invoking method for nested calls
        (carrying its id and ancestry), or ``None`` for root invocations from
        external clients. Blocking calls await the response; tells return
        once the request is durably queued.
        """
        await self._hop()  # app -> sidecar
        request_id = self.app.ids.fresh()
        if expects_reply and caller is not None:
            return_address = caller.request_id
            ancestors = caller.ancestors + (caller.request_id,)
        else:
            # Tells are fresh roots: they queue like any other invocation
            # and never bypass the actor lock (Section 3.2's (tell) rule
            # attaches no return address).
            return_address = None
            ancestors = ()
        # Responses go to the caller's queue for calls, but to the *callee's
        # own* queue for tells (Section 4.1) -- the completion record must
        # live and die with the request it completes, or reconciliation
        # could re-run an already-completed tell after the evidence is gone.
        reply_to = self.member_id if expects_reply else None
        request = Request(
            request_id=request_id,
            step=0,
            actor=ref,
            # One method name is shared by every request, dedup key, and
            # journal frame that mentions it; interning makes those copies
            # one object and the hot-path comparisons pointer checks.
            method=sys.intern(method),
            args=tuple(args),
            return_address=return_address,
            reply_to=reply_to,
            caller_actor=caller.actor if caller is not None else None,
            caller_member=self.member_id,
            ancestors=ancestors,
            expects_reply=expects_reply,
        )
        await self._overhead()
        future = None
        if expects_reply:
            future = self.kernel.create_future()
            self._pending_calls[request_id] = future
        await self._route_request(request)
        if not expects_reply:
            await self._hop()  # ack back to the app process
            return None
        response: Response = await future
        await self._hop()  # sidecar -> app
        if response.cancelled:
            raise InvocationCancelled(request_id)
        if response.error is not None:
            raise ActorMethodError(response.error)
        return response.value

    # ------------------------------------------------------------------
    # routing (delegated to the transport layer; see repro.core.router)
    # ------------------------------------------------------------------
    async def _route_request(self, request: Request) -> None:
        await self.router.route_request(request)

    async def _send_response(self, request: Request, response: Response) -> None:
        await self.router.send_response(request, response)

    # ------------------------------------------------------------------
    # consumer
    # ------------------------------------------------------------------
    async def _consume_loop(self) -> None:
        try:
            while True:
                records = await self.member.poll()
                for record in records:
                    envelope = record.value
                    if isinstance(envelope, Response):
                        self._handle_response(envelope)
                    elif isinstance(envelope, Request):
                        self._handle_request(envelope)
        except _FENCE_ERRORS:
            self._suicide()

    def _handle_response(self, response: Response) -> None:
        if self._settled.observe(response.request_id, self.kernel.now):
            # Late duplicate: the caller already observed an outcome for
            # this id (e.g. a synthetic cancellation raced the real
            # response). Never resolve a pending future for a settled id --
            # the first outcome is the one the caller acted on.
            self.trace.emit("response.duplicate", request=response.request_id)
        else:
            future = self._pending_calls.pop(response.request_id, None)
            if future is not None and not future.done():
                future.set_result(response)
        # Happen-before: release any retry parked on this callee.
        for parked in self._parked.pop(response.request_id, ()):
            self.trace.emit(
                "request.unparked",
                request=parked.request_id,
                after_callee=response.request_id,
            )
            self._admit(parked)

    def _handle_request(self, request: Request) -> None:
        if request.dedup_key in self._handled:
            # A reconciliation restart copied this request twice (Section
            # 4.3: "request messages already copied ... are skipped").
            # Observing the duplicate also refreshes the evidence's
            # retention stamp: the copy proves an unexpired record still
            # exists that could be copied again.
            self._handled.observe(request.dedup_key, self.kernel.now)
            self.trace.emit(
                "request.duplicate", request=request.request_id, step=request.step
            )
            return
        if self.overload is not None:
            breaker = self.overload.breaker_diverts(request, self.kernel.now)
            if breaker is not None:
                # Diverted to the parking lot *without* being marked
                # handled: the request has not executed, and its eventual
                # replay must be admitted here. Exactly-once is preserved
                # because the one real execution happens at replay,
                # deduplicated like any reconciliation copy.
                self._park_dead_letter(request, "breaker_open", breaker)
                return
        self._handled.observe(request.dedup_key, self.kernel.now)
        if (
            request.after_callee is not None
            and request.after_callee not in self._settled
        ):
            # The retried caller must wait for its prior callee to settle
            # (the oblique dashed line of Figure 1, scenarios 4-7).
            self.trace.emit(
                "request.parked",
                request=request.request_id,
                after_callee=request.after_callee,
            )
            self._parked.setdefault(request.after_callee, []).append(request)
            return
        self._admit(request)

    def _admit(self, request: Request) -> None:
        mailbox = self._mailboxes.get(request.actor)
        if mailbox is None:
            capacity = (
                self.config.mailbox_capacity if self.overload is not None else None
            )
            mailbox = self._mailboxes[request.actor] = ActorMailbox(capacity)
        self._last_active[request.actor] = self.kernel.now
        if mailbox.try_admit(request):
            self._spawn_executor(request)
        elif self.overload is not None:
            self.overload.observe_pending(len(mailbox.pending))
            for shed in mailbox.shed_overflow():
                # Admission control: the oldest queued retries go back to
                # the budget-paced backoff path instead of growing the
                # queue without bound. First attempts are never shed.
                self.trace.emit(
                    "mailbox.shed",
                    request=shed.request_id,
                    step=shed.step,
                    actor=str(shed.actor),
                    pending=len(mailbox.pending),
                )
                self.kernel.spawn(
                    self._requeue_shed(shed),
                    self.process,
                    name=f"shed:{shed.request_id}.{shed.step}@{self.member_id}",
                )

    async def _requeue_shed(self, request: Request) -> None:
        """Re-admit a shed retry after budget-paced jittered backoff.

        The request was already marked handled in ``_handle_request``, so
        re-admission goes straight to ``_admit`` (not back through dedup).
        Repeat sheds of the same request back off further.
        """
        guard = self.overload
        if guard is None:
            self._admit(request)
            return
        attempt = guard.note_shed(request.dedup_key)
        await guard.pace_retry(attempt)
        guard.shed_requeues += 1
        self._admit(request)

    # ------------------------------------------------------------------
    # dead-letter parking (breaker diverts)
    # ------------------------------------------------------------------
    def _park_dead_letter(
        self, request: Request, reason: str, breaker: CircuitBreaker
    ) -> None:
        """Write a diverted request to the durable parking-lot topic with
        its full evidence: the redelivery timestamps it accumulated and the
        recent failures that tripped (or keep open) the breaker."""
        history = tuple(
            (at, "redelivered by reconciliation") for at in request.attempt_log
        ) + tuple(breaker.recent_failures)
        letter = DeadLetter(
            request=request,
            reason=reason,
            parked_at=self.kernel.now,
            attempts=request.attempts,
            failure_history=history,
            parked_by=self.member_id,
        )
        if self.overload is not None:
            self.overload.parked += 1
        self.trace.emit(
            "deadletter.parked",
            request=request.request_id,
            step=request.step,
            actor=str(request.actor),
            method=request.method,
            reason=reason,
            member=self.member_id,
        )
        self.kernel.spawn(
            self._produce_dead_letter(letter),
            self.process,
            name=f"park:{request.request_id}.{request.step}@{self.member_id}",
        )

    async def _produce_dead_letter(self, letter: DeadLetter) -> None:
        try:
            await self.app.park_dead_letter(letter, self.member_id)
        except _FENCE_ERRORS:
            self._suicide()

    def _spawn_executor(self, request: Request) -> None:
        self.kernel.spawn(
            self._execute(request),
            self.process,
            name=f"exec:{request.request_id}.{request.step}@{self.member_id}",
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _execute(self, request: Request) -> None:
        try:
            if self.worker is not None:
                # Event-loop contention: executions hosted on one worker
                # serialize on its busy horizon (no-op at zero cost). The
                # component name attributes the charge to the load plane.
                await self.worker.loop.charge(self.name)
            if self.overload is not None:
                self.overload.clear_shed(request.dedup_key)
            kind, payload = await self._run_method(request)
            self._record_outcome(request, kind, payload)
            tail_to_self = False
            if kind == "tail":
                successor: Request = payload
                tail_to_self = successor.tail_lock
                await self._hop()  # app -> sidecar with the tail call
                # One message atomically completes this request and issues
                # the next one (Section 2.3).
                await self._route_request(successor)
                self.trace.emit(
                    "invoke.end",
                    request=request.request_id,
                    step=request.step,
                    actor=str(request.actor),
                    method=request.method,
                    outcome="tail",
                    tail_to_self=tail_to_self,
                    member=self.member_id,
                )
            else:
                if kind == "value":
                    response = Response(request.request_id, value=payload)
                elif kind == "error":
                    response = Response(request.request_id, error=payload)
                else:  # cancelled
                    response = Response(request.request_id, cancelled=True)
                await self._hop()
                await self._send_response(request, response)
                self.trace.emit(
                    "invoke.end",
                    request=request.request_id,
                    step=request.step,
                    actor=str(request.actor),
                    method=request.method,
                    outcome=kind,
                    member=self.member_id,
                )
            self._finish_frame(request, tail_to_self)
        except _FENCE_ERRORS:
            self._suicide()

    def _record_outcome(self, request: Request, kind: str, payload: Any) -> None:
        """Feed the execution outcome to the circuit breaker for this
        (actor type, method). "cancelled" is neutral: an elided invocation
        says nothing about the method's health."""
        if self.overload is None:
            return
        now = self.kernel.now
        if kind == "error":
            transition = self.overload.record_failure(request, str(payload), now)
        elif kind in ("value", "tail"):
            transition = self.overload.record_success(request, now)
        else:
            return
        if transition is not None:
            self.trace.emit(
                "breaker.transition",
                actor_type=request.actor.type,
                method=request.method,
                transition=transition,
                member=self.member_id,
            )

    async def _run_method(self, request: Request) -> tuple[str, Any]:
        if self._should_elide(request):
            self.trace.emit(
                "invoke.elided",
                request=request.request_id,
                actor=str(request.actor),
                method=request.method,
                caller_member=request.caller_member,
            )
            return ("cancelled", None)
        instance = self._instances.get(request.actor)
        ctx = ActorContext(self, request)
        if instance is None:
            try:
                actor_class = self.app.registry.resolve(request.actor.type)
            except Exception as error:  # noqa: BLE001 - app boundary
                return ("error", f"{type(error).__name__}: {error}")
            instance = actor_class()
            instance.ref = request.actor
            self._instances[request.actor] = instance
            self.trace.emit(
                "actor.activate", actor=str(request.actor), member=self.member_id
            )
            try:
                await instance.activate(ctx)
            except _FENCE_ERRORS:
                raise
            except Exception as error:  # noqa: BLE001 - app boundary
                del self._instances[request.actor]
                self._state_caches.pop(request.actor, None)
                return ("error", f"{type(error).__name__}: {error}")
        await self._hop()  # sidecar -> app dispatch
        self.trace.emit(
            "invoke.start",
            request=request.request_id,
            step=request.step,
            actor=str(request.actor),
            method=request.method,
            member=self.member_id,
            copy_epoch=request.copy_epoch,
        )
        try:
            method = self.app.registry.method(instance, request.method)
        except Exception as error:  # noqa: BLE001 - app boundary
            return ("error", f"{type(error).__name__}: {error}")
        try:
            result = await method(ctx, *request.args)
        except _FENCE_ERRORS:
            raise
        except Exception as error:  # noqa: BLE001 - app boundary
            self.trace.emit(
                "invoke.error",
                request=request.request_id,
                actor=str(request.actor),
                method=request.method,
                error=f"{type(error).__name__}: {error}",
            )
            return ("error", f"{type(error).__name__}: {error}")
        if isinstance(result, TailCall):
            successor = request.tail_successor(
                result.actor, result.method, result.args, request.actor
            )
            return ("tail", successor)
        return ("value", result)

    def _should_elide(self, request: Request) -> bool:
        """Cancellation (Section 4.4): skip a nested call whose caller's
        component is absent from the live list of the latest reconciliation."""
        if not self.config.cancellation:
            return False
        if request.return_address is None or request.caller_member is None:
            return False  # only nested calls are cancellable (Section 3.6)
        if self._live_members is None:
            return False  # no generation observed yet: presume alive
        return request.caller_member not in self._live_members

    def _finish_frame(self, request: Request, tail_to_self: bool) -> None:
        self._last_active[request.actor] = self.kernel.now
        mailbox = self._mailboxes.get(request.actor)
        if mailbox is None:
            return
        successor = mailbox.complete_frame(request, tail_to_self)
        if successor is not None:
            self._spawn_executor(successor)

    # ------------------------------------------------------------------
    # failure recovery hooks
    # ------------------------------------------------------------------
    def _on_generation(self, info: GenerationInfo) -> None:
        if not self.process.alive or self.member is None:
            return
        if self.member_id not in info.members:
            self._suicide()
            return
        self.router.invalidate_membership()
        self._live_members = set(info.members)
        failed_names = {m.rsplit("#", 1)[0] for m in info.failed}
        if failed_names:
            self.placement.invalidate_components(failed_names)
        self.is_leader = info.leader == self.member_id
        if self.is_leader:
            self.kernel.spawn(
                self._lead_reconciliation(info),
                self.process,
                name=f"reconcile:{self.member_id}",
            )

    async def _lead_reconciliation(self, info: GenerationInfo) -> None:
        from repro.core.reconciler import Reconciler

        try:
            await Reconciler(self).run(info)
        except _FENCE_ERRORS:
            self._suicide()

    # ------------------------------------------------------------------
    # reminders (leader-run daemon; see repro.core.reminders)
    # ------------------------------------------------------------------
    async def _reminder_loop(self) -> None:
        from repro.core.reminders import deliver_due_reminders

        try:
            while True:
                await self.kernel.sleep(self.config.reminder_tick)
                if not self.is_leader or not self.app.reminders_in_use:
                    continue
                await deliver_due_reminders(self)
        except _FENCE_ERRORS:
            self._suicide()

    # ------------------------------------------------------------------
    # actor lifecycle & memory management (idle passivation, dedup GC)
    # ------------------------------------------------------------------
    def state_cache_for(self, ref: ActorRef) -> ActorStateCache | None:
        """Write-through state cache for a *resident* instance's own state
        (``ctx.state``); disabled by config, never used for ``state_of``."""
        if not self.config.state_cache:
            return None
        cache = self._state_caches.get(ref)
        if cache is None:
            cache = self._state_caches[ref] = ActorStateCache()
        return cache

    def existing_state_cache(self, ref: ActorRef) -> ActorStateCache | None:
        """Cache for ``ref`` only if one is already resident here.

        ``state_of`` views share the resident instance's cache so their
        writes stay coherent with it, but must not mint cache entries for
        actors hosted elsewhere (no single-writer guarantee there).
        """
        if not self.config.state_cache:
            return None
        return self._state_caches.get(ref)

    async def _maintenance_loop(self) -> None:
        """Periodic housekeeping: expire dedup evidence in step with broker
        record expiry, and passivate actors idle past the configured
        timeout. Both keep a long-running component's memory bounded by its
        *working set* instead of its lifetime history."""
        try:
            while True:
                await self.kernel.sleep(self.config.maintenance_interval)
                self._sweep_dedup_evidence()
                if self.config.idle_passivation_timeout is not None:
                    await self._sweep_idle_actors()
        except _FENCE_ERRORS:
            self._suicide()

    def _sweep_dedup_evidence(self) -> None:
        """The paper's retention rule: dedup evidence only needs to outlive
        the unexpired messages that could duplicate it, so the sweep cutoff
        tracks the broker retention horizon (plus delivery-lag slack)."""
        horizon = (
            self.config.broker.retention_seconds
            + self.config.dedup_retention_slack
        )
        cutoff = self.kernel.now - horizon
        if cutoff <= 0.0:
            return
        swept = self._settled.sweep(cutoff) + self._handled.sweep(cutoff)
        if swept:
            self.trace.emit(
                "dedup.swept",
                member=self.member_id,
                swept=swept,
                settled=len(self._settled),
                handled=len(self._handled),
            )

    async def _sweep_idle_actors(self) -> None:
        timeout = self.config.idle_passivation_timeout
        now = self.kernel.now
        idle = [
            ref
            for ref, mailbox in self._mailboxes.items()
            if mailbox.idle
            and now - self._last_active.get(ref, 0.0) >= timeout
        ]
        for ref in idle:
            # Passivations await (hops, the deactivate hook), so an actor
            # later in the sweep may have served requests meanwhile:
            # re-check its idle clock at its turn, not the sweep snapshot.
            if self.kernel.now - self._last_active.get(ref, 0.0) < timeout:
                continue
            await self._passivate(ref)

    async def _passivate(self, ref: ActorRef) -> None:
        """Deactivate and evict one idle instance (with its mailbox, state
        cache, and activity stamp). The mailbox lock is held with a token
        no request can match, so a request arriving mid-deactivate queues
        behind the teardown and transparently re-activates the actor."""
        mailbox = self._mailboxes.get(ref)
        if mailbox is None:
            return
        token = f"passivate:{self.app.ids.fresh()}"
        if not mailbox.begin_passivation(token):
            return
        instance = self._instances.get(ref)
        deactivate_error = None
        if instance is not None:
            request = Request(
                request_id=token,
                step=0,
                actor=ref,
                method="deactivate",
                args=(),
                return_address=None,
                reply_to=None,
                caller_actor=None,
                caller_member=self.member_id,
                expects_reply=False,
            )
            ctx = ActorContext(self, request)
            await self._hop()  # sidecar -> app: run the deactivate hook
            try:
                await instance.deactivate(ctx)
            except _FENCE_ERRORS:
                # Fenced mid-deactivate: the component is dead and recovery
                # owns the actor now; nothing to release.
                raise
            except Exception as error:  # noqa: BLE001 - app boundary
                deactivate_error = f"{type(error).__name__}: {error}"
            await self._hop()  # app -> sidecar
        self._instances.pop(ref, None)
        self._state_caches.pop(ref, None)
        self._last_active.pop(ref, None)
        self.passivations += 1
        self.trace.emit(
            "actor.passivate",
            actor=str(ref),
            member=self.member_id,
            error=deactivate_error,
        )
        successor = mailbox.end_passivation(token)
        if successor is not None:
            # A request arrived mid-deactivate: it owns the lock now and
            # will re-activate the actor on execution.
            self._spawn_executor(successor)
        elif self._mailboxes.get(ref) is mailbox and mailbox.idle:
            del self._mailboxes[ref]

    # ------------------------------------------------------------------
    # latency charges (out-of-process runtime architecture, Section 4.1)
    # ------------------------------------------------------------------
    async def _hop(self) -> None:
        await self.kernel.sleep(
            self.config.sidecar_latency.sample(self.kernel.rng)
        )

    async def _overhead(self) -> None:
        await self.kernel.sleep(
            self.config.invoke_overhead.sample(self.kernel.rng)
        )

    def __repr__(self) -> str:
        state = "alive" if self.process.alive else "dead"
        return f"Component({self.member_id}, {state})"
