"""Actor base class and type registry.

Actors are plain Python classes whose public coroutine methods take the
invocation context as their first argument:

.. code-block:: python

    class Latch(Actor):
        async def activate(self, ctx):
            self.v = 0

        async def set(self, ctx, v):
            self.v = v

        async def get(self, ctx):
            return self.v

``activate`` plays the role of a constructor and is implicitly invoked at
(re)instantiation time (Section 2); ``deactivate`` is optional and is
invoked when the runtime *passivates* an instance that has been idle past
``KarConfig.idle_passivation_timeout`` -- flush any in-memory state there,
because the instance object is discarded afterwards and the next request
re-activates a fresh one from persisted state. In-memory attributes are
likewise lost on failure; persist what matters via ``ctx.state``.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING

from repro.core.errors import KarError
from repro.core.refs import ActorRef

if TYPE_CHECKING:
    from repro.core.context import ActorContext

__all__ = ["Actor", "ActorRegistry"]

_RESERVED = {"activate", "deactivate"}


class Actor:
    """Base class for KAR actors. Subclasses define async methods."""

    #: Set by the runtime at instantiation.
    ref: ActorRef

    async def activate(self, ctx: "ActorContext") -> None:
        """Called on construction and on reconstruction after a failure;
        restore persisted state here (Section 2.1)."""

    async def deactivate(self, ctx: "ActorContext") -> None:
        """Called when the runtime passivates the instance (idle past the
        configured timeout). Flush volatile state via ``ctx.state`` here;
        the instance and its mailbox are evicted once this returns, and
        the next request transparently re-activates the actor."""


class ActorRegistry:
    """Maps actor type names to classes and validates method lookups."""

    def __init__(self):
        self._types: dict[str, type[Actor]] = {}

    def register(self, actor_class: type[Actor], name: str | None = None) -> str:
        type_name = name or actor_class.__name__
        if type_name in self._types and self._types[type_name] is not actor_class:
            raise KarError(f"actor type {type_name!r} registered twice")
        self._types[type_name] = actor_class
        return type_name

    def resolve(self, type_name: str) -> type[Actor]:
        try:
            return self._types[type_name]
        except KeyError:
            raise KarError(f"unknown actor type {type_name!r}") from None

    def method(self, instance: Actor, method_name: str):
        if method_name.startswith("_") or method_name in _RESERVED:
            raise KarError(f"method {method_name!r} is not invocable")
        method = getattr(instance, method_name, None)
        if method is None or not inspect.iscoroutinefunction(method):
            raise KarError(
                f"{type(instance).__name__} has no invocable method {method_name!r}"
            )
        return method

    @property
    def type_names(self) -> list[str]:
        return sorted(self._types)

    def __contains__(self, type_name: str) -> bool:
        return type_name in self._types
