"""Reconciliation: the leader-driven recovery algorithm of Section 4.3.

When membership changes, the elected leader:

1. catalogs all unexpired messages across the application topic;
2. discards requests with a matching response or a superseding tail call
   (a later request with the same id);
3. identifies pending requests stranded in failed components' queues,
   re-places their actors (CAS on the store), and copies the requests to the
   chosen live components -- moving tail-calls-to-self to the front, per the
   formal semantics' (tail-self) rule;
4. transposes the callee->caller map: a copied request that had a live
   nested call is annotated with the callee's id, so the receiving runtime
   postpones the retry until the callee's response arrives (happen-before);
5. fences failed components at the store (forceful disconnection) and
   discards their queues;
6. resumes the group.

A failure during reconciliation kills the leader, which produces a new
generation whose leader simply restarts reconciliation; copies are
idempotent (consumers deduplicate by request id and step).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.envelope import Request, Response
from repro.core.overload import DEAD_LETTER_PARTITION, DeadLetter
from repro.mq import GenerationInfo

if TYPE_CHECKING:
    from repro.core.runtime import Component

__all__ = ["Reconciler", "UNPLACED_PARTITION"]

#: Queue for pending requests whose actor type has no live host; revisited
#: every reconciliation ("KAR queues requests to unavailable types
#: separately, revisiting this queue when new components are added").
UNPLACED_PARTITION = "_unplaced"


class Reconciler:
    """One reconciliation attempt, run on the leader component's process."""

    def __init__(self, component: "Component"):
        self.component = component
        self.app = component.app
        self.kernel = component.kernel
        self.config = component.config

    async def run(self, info: GenerationInfo) -> None:
        component = self.component
        coordinator = component.coordinator
        topic = self.app.broker.topic(self.app.topic_name)
        trace = component.trace

        catalog = topic.snapshot_unexpired(self.kernel.now)
        scan_cost = self.config.reconcile_base.sample(
            self.kernel.rng
        ) + self.config.reconcile_per_message * len(catalog)
        trace.emit(
            "reconcile.start",
            generation=info.generation,
            leader=component.member_id,
            cataloged=len(catalog),
            failed=list(info.failed),
        )
        await self.kernel.sleep(scan_cost)

        live_members = set(info.members)
        responses: set[str] = set()
        latest_request: dict[str, tuple[str, Request]] = {}
        children: dict[str, list[str]] = {}
        for record in catalog:
            envelope = record.value
            if isinstance(envelope, Response):
                responses.add(envelope.request_id)
            elif isinstance(envelope, Request):
                current = latest_request.get(envelope.request_id)
                if current is None or self._supersedes(
                    record.partition, envelope, current[0], current[1], live_members
                ):
                    latest_request[envelope.request_id] = (
                        record.partition,
                        envelope,
                    )
                if envelope.return_address is not None:
                    children.setdefault(envelope.return_address, [])
                    if envelope.request_id not in children[envelope.return_address]:
                        children[envelope.return_address].append(
                            envelope.request_id
                        )

        # Pending = no matching response; stranded = latest record sits in a
        # queue whose owner is no longer a group member.
        stranded = [
            (partition, request)
            for request_id, (partition, request) in latest_request.items()
            if request_id not in responses and partition not in live_members
        ]
        # Formal (tail-self) ordering: tail calls that own their actor's lock
        # recover first, then everything else in arrival order.
        stranded.sort(key=lambda item: (not item[1].tail_lock, item[1].request_id))

        # Redelivery cap (overload control): a stranded request that has
        # already been recovery-copied ``redelivery_limit`` times is a
        # poison-pill suspect -- park it in the dead-letter topic with its
        # attempt history instead of feeding the crash-reconcile loop again.
        # Requests already parked (by a breaker or a prior sweep) are
        # skipped entirely: redelivery now belongs to the parking lot.
        limit = (
            self.config.redelivery_limit if self.config.overload_guard else None
        )
        parked_index = (
            self.app.dead_letter_index() if limit is not None else frozenset()
        )
        parked: list[DeadLetter] = []

        copies: list[tuple[str, Request]] = []
        unplaced: list[Request] = []
        for _partition, request in stranded:
            if limit is not None:
                if request.dedup_key in parked_index:
                    trace.emit(
                        "reconcile.already_parked",
                        request=request.request_id,
                        step=request.step,
                    )
                    continue
                if request.attempts >= limit:
                    parked.append(
                        self._dead_letter(request, limit, info.generation)
                    )
                    continue
            candidates = component.router.live_candidates(request.actor.type)
            if not candidates:
                unplaced.append(request)
                continue
            target_name = await component.placement.resolve(
                request.actor, candidates
            )
            target_member = component.router.live_incarnation(target_name)
            if target_member is None:
                unplaced.append(request)
                continue
            if self.config.orchestrate_retries:
                after_callee = self._pending_callee(
                    request, children, responses
                )
            else:
                # At-least-once baseline (Figure 2b): redeliver immediately,
                # letting retries overlap live callees from prior attempts.
                after_callee = None
            copies.append(
                (
                    target_member,
                    request.recovery_copy(
                        info.generation, after_callee, self.kernel.now
                    ),
                )
            )

        await self.kernel.sleep(self.config.reconcile_per_copy * max(len(copies), 1))

        # Abort if a newer generation exists: its leader owns recovery now,
        # and we must not drop queues it still needs to catalog.
        if coordinator.generation != info.generation:
            trace.emit("reconcile.superseded", generation=info.generation)
            return

        # One batched internal produce per group: the copies (and the
        # rebuilt unplaced queue) hit the broker log as a single journal
        # write instead of one write+flush per stranded request.
        if copies:
            self.app.broker.produce_internal_batch(
                self.app.topic_name,
                [(target_member, request) for target_member, request in copies],
            )
        for target_member, request in copies:
            trace.emit(
                "reconcile.copy",
                request=request.request_id,
                step=request.step,
                target=target_member,
                after_callee=request.after_callee,
            )

        # Park poison-pill suspects durably (their own topic, outside this
        # catalog). Idempotent across leader restarts: the parked_index
        # skip above makes a re-park a no-op next sweep, and replay dedups
        # by (id, step) regardless.
        if parked:
            self.app.broker.produce_internal_batch(
                self.app.dead_letter_topic,
                [(DEAD_LETTER_PARTITION, letter) for letter in parked],
            )
            if component.overload is not None:
                component.overload.parked += len(parked)
        for letter in parked:
            trace.emit(
                "deadletter.parked",
                request=letter.request.request_id,
                step=letter.request.step,
                actor=str(letter.request.actor),
                method=letter.request.method,
                reason=letter.reason,
                attempts=letter.attempts,
                member=component.member_id,
            )

        # Rebuild the unplaced queue from scratch (idempotent on restart).
        topic.drop_partition(UNPLACED_PARTITION)
        if unplaced:
            self.app.broker.produce_internal_batch(
                self.app.topic_name,
                [(UNPLACED_PARTITION, request) for request in unplaced],
            )
        for request in unplaced:
            trace.emit(
                "reconcile.unplaced",
                request=request.request_id,
                actor_type=request.actor.type,
            )

        # Forcefully disconnect failed components from the store and every
        # registered external service. Dead queues are NOT discarded while
        # they still hold unexpired messages: responses and superseding tail
        # calls in them are the evidence that keeps later reconciliations
        # from re-running completed work (completed invocations are never
        # repeated). Retention expires them; empty queues are then dropped
        # ("discarded or flushed for later reuse", Section 4.3).
        dead_partitions = [
            partition
            for partition in list(topic.partitions)
            if partition not in live_members and partition != UNPLACED_PARTITION
        ]
        dropped = 0
        for partition in dead_partitions:
            self.app.store.fence(partition)
            self.app.broker.fence(partition)
            for service in self.app.external_services:
                service.fence(partition)
            if self.config.completion_log:
                # Every request carries its completion evidence in its own
                # queue (the transactional completion log), and stranded
                # requests were just copied out -- so the dead queue can be
                # discarded immediately.
                topic.drop_partition(partition)
                dropped += 1
                continue
            remaining = topic.partition(partition).unexpired(self.kernel.now)
            if not remaining:
                topic.drop_partition(partition)
                dropped += 1

        trace.emit(
            "reconcile.end",
            generation=info.generation,
            copied=len(copies),
            unplaced=len(unplaced),
            parked=len(parked),
            dropped=dropped,
        )
        coordinator.resume(info.generation)

    def _dead_letter(
        self, request: Request, limit: int, generation: int
    ) -> DeadLetter:
        now = self.kernel.now
        history = tuple(
            (at, f"recovery copy #{index + 1} after component failure")
            for index, at in enumerate(request.attempt_log)
        ) + ((now, f"redelivery limit {limit} reached; parked"),)
        return DeadLetter(
            request=request,
            reason="redelivery_limit",
            parked_at=now,
            attempts=request.attempts,
            failure_history=history,
            parked_by=f"reconciler:{self.component.member_id}@g{generation}",
        )

    @staticmethod
    def _supersedes(
        candidate_partition: str,
        candidate: Request,
        current_partition: str,
        current: Request,
        live_members: set[str],
    ) -> bool:
        """Whether ``candidate`` is the better record of its request id.

        A higher step always wins (a tail call supersedes the request it
        completes). At equal step: a copy in a live queue wins over one in
        a dead queue (the request is already in a survivor's hands and must
        not be copied again), and otherwise the *latest* recovery copy
        (highest copy epoch) wins -- its attempt history is the complete
        redelivery record, which the redelivery cap counts against.
        """
        if candidate.step != current.step:
            return candidate.step > current.step
        candidate_live = candidate_partition in live_members
        current_live = current_partition in live_members
        if candidate_live != current_live:
            return candidate_live
        return candidate.copy_epoch > current.copy_epoch

    @staticmethod
    def _pending_callee(
        request: Request,
        children: dict[str, list[str]],
        responses: set[str],
    ) -> str | None:
        """Transpose the callee->caller map (Section 4.3): if the stranded
        caller has a nested call without a response, the retry must wait for
        it. A KAR task has at most one live child (blocking nested calls)."""
        for child_id in children.get(request.request_id, ()):    # oldest first
            if child_id not in responses:
                return child_id
        return None
