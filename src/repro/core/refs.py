"""Actor references.

An actor is identified by its type and a unique instance id (Section 2).
``actor_proxy`` synthesizes a reference; multiple calls with the same
parameters yield equal references to the same instance. Proxies never
instantiate actors -- instantiation happens implicitly on first invocation.
"""

from __future__ import annotations

import sys
import zlib
from dataclasses import dataclass

from repro.persist.framing import ACTORREF_TYPE_ID, register_frame_type

__all__ = ["ActorRef", "actor_proxy"]


@dataclass(frozen=True, order=True, slots=True)
class ActorRef:
    """Reference to an actor instance: ``(type, instance id)``."""

    type: str
    id: str

    def stable_hash(self) -> int:
        """Deterministic hash (Python's builtin str hash is salted per
        process; placement decisions must be reproducible across runs)."""
        return zlib.crc32(f"{self.type}:{self.id}".encode())

    def __str__(self) -> str:
        return f"{self.type}[{self.id}]"


register_frame_type(ActorRef, ACTORREF_TYPE_ID)


def actor_proxy(actor_type: str, instance_id: str) -> ActorRef:
    """Synthesize a reference to an actor instance (``actor.proxy``).

    The type string is interned: one actor type names thousands of refs,
    requests, and placement keys, and sharing the object keeps the ref
    equality checks on the dispatch hot path at pointer speed.
    """
    return ActorRef(sys.intern(actor_type), instance_id)
