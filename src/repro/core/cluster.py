"""Multi-worker scale-out: N event loops over the shared durable backends.

The paper's deployment (Section 5) is many sidecar processes sharing one
Kafka and one Redis. This module reproduces that shape inside the simulator:

- a :class:`KarWorker` is one worker event loop -- its own failure domain
  (a :class:`~repro.sim.SimProcess`), its own
  :class:`~repro.mq.GroupCoordinator` *view* onto the shared store-backed
  group state, and a :class:`WorkerLoop` busy horizon that serializes the
  CPU cost of every actor invocation it hosts (``KarConfig.
  worker_loop_cost``). With a positive cost one worker is a genuine
  throughput ceiling, and sharding components across N workers buys ~N x;
- a :class:`KarCluster` is the control plane: it extends
  :class:`~repro.core.app.KarApplication` with worker lifecycle (add,
  graceful remove, kill), consistent-hash assignment of actor-hosting
  components to workers (:mod:`repro.core.sharding`), worker failure
  detection through store heartbeats, and the live partition-handoff
  protocol.

The handoff protocol (drain -> fence old epoch -> replay tail -> resume):

1. **drain** -- the leaving component finishes in-flight frames and flushes
   its send outbox (:meth:`~repro.core.runtime.Component.drain`), bounded
   by ``drain_timeout``;
2. **fence** -- the old incarnation leaves the group (or, on a crash, is
   evicted by the session-timeout watchdog); either way the broker fences
   its member id, and the successor's partition-lease acquisition at
   ``epoch + 1`` fences whatever zombie survives even a cold restart;
3. **replay tail** -- the rebalance elects a leader whose reconciliation
   re-places every request stranded in the old incarnation's queue onto
   the live membership (the paper's retry orchestration: dedup by
   (request id, step) keeps the replay exactly-once);
4. **resume** -- the leader lifts the group pause and traffic continues
   against the new incarnation, whose placement entries are unchanged
   (placement stores component *names*, so moving a component between
   workers never invalidates where its actors live).

Workers agree through the store, not through shared Python objects: the
group state is CAS-bumped generations in the store backend, worker
liveness is a heartbeat hash in the same store, and every coordinator view
polls for foreign generations from its watchdog.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.app import KarApplication
from repro.core.config import KarConfig
from repro.core.placement_ctl import PlacementController
from repro.core.runtime import Component
from repro.core.sharding import HashRing, parent_partition, sub_partition_names
from repro.kvstore import StoreBackend
from repro.mq import BrokerLog, GroupCoordinator
from repro.sim import Kernel, SimProcess

__all__ = ["DecayingCounter", "KarCluster", "KarWorker", "WorkerLoop"]

_LN2 = math.log(2.0)


class DecayingCounter:
    """An exponentially decaying accumulator (half-life in seconds).

    Deposits fold the decay in lazily -- no ticking task -- so reading the
    counter is pure arithmetic on (value, stamp). ``rate`` converts the
    decayed mass into the steady input rate that would sustain it: a
    constant inflow of ``r`` per second equilibrates at
    ``r * halflife / ln 2``.
    """

    __slots__ = ("halflife", "_value", "_stamp")

    def __init__(self, halflife: float):
        self.halflife = halflife
        self._value = 0.0
        self._stamp = 0.0

    def add(self, amount: float, now: float) -> None:
        self._value = self.value(now) + amount
        self._stamp = now

    def value(self, now: float) -> float:
        if self._value == 0.0:
            return 0.0
        return self._value * 0.5 ** ((now - self._stamp) / self.halflife)

    def rate(self, now: float) -> float:
        return self.value(now) * _LN2 / self.halflife


class WorkerLoop:
    """The busy horizon of one worker event loop.

    Charges serialize: each one starts no earlier than the previous one
    ended, so concurrent executions hosted on the same worker queue behind
    each other exactly like coroutines on one OS event loop. A zero cost
    returns without yielding to the scheduler, leaving single-loop runs
    event-for-event identical to the pre-scale-out runtime.

    Besides the lifetime totals the loop keeps decaying *windows* -- busy
    seconds and call counts, per loop and per hosted component -- which are
    the load plane's signal: current hotness, not accumulated history.
    """

    def __init__(self, kernel: Kernel, cost: float, halflife: float = 5.0):
        self.kernel = kernel
        self.cost = cost
        self.halflife = halflife
        self.busy_until = 0.0
        self.calls_charged = 0
        self.busy_seconds_total = 0.0
        #: Set when the hosting worker wedges: charges stall forever (the
        #: loop stops making progress) while heartbeats keep flowing.
        self.stalled = False
        self._busy_window = DecayingCounter(halflife)
        self._component_busy: dict[str, DecayingCounter] = {}
        self._component_calls: dict[str, DecayingCounter] = {}

    async def charge(self, component: str | None = None) -> None:
        if self.stalled:
            # A wedged loop never schedules the execution; the stuck task
            # dies with the component process when the control plane
            # re-hosts it.
            await self.kernel.create_future()
        self.calls_charged += 1
        now = self.kernel.now
        if component is not None:
            self._window(self._component_calls, component).add(1.0, now)
        if self.cost <= 0.0:
            return
        start = max(now, self.busy_until)
        self.busy_until = start + self.cost
        self.busy_seconds_total += self.cost
        self._busy_window.add(self.cost, now)
        if component is not None:
            self._window(self._component_busy, component).add(self.cost, now)
        await self.kernel.sleep(self.busy_until - now)

    def _window(
        self, windows: dict[str, DecayingCounter], component: str
    ) -> DecayingCounter:
        window = windows.get(component)
        if window is None:
            window = windows[component] = DecayingCounter(self.halflife)
        return window

    # ------------------------------------------------------------------
    # load plane readings
    # ------------------------------------------------------------------
    def busy_seconds(self, now: float) -> float:
        """Decayed busy-seconds window (current hotness, not history)."""
        return self._busy_window.value(now)

    def busy_rate(self, now: float) -> float:
        """Fraction of this loop currently consumed by charges (0..~1)."""
        return self._busy_window.rate(now)

    def component_loads(self, now: float) -> dict[str, dict[str, float]]:
        """Per-component decayed load: calls/sec and busy-rate share."""
        names = set(self._component_busy) | set(self._component_calls)
        loads: dict[str, dict[str, float]] = {}
        for name in sorted(names):
            calls = self._component_calls.get(name)
            busy = self._component_busy.get(name)
            loads[name] = {
                "calls_per_s": calls.rate(now) if calls is not None else 0.0,
                "busy_rate": busy.rate(now) if busy is not None else 0.0,
            }
        return loads

    def forget_component(self, name: str) -> None:
        """Drop a migrated-away component's windows so its old host stops
        reporting phantom load for it."""
        self._component_busy.pop(name, None)
        self._component_calls.pop(name, None)

    def export_component(
        self, name: str
    ) -> tuple[DecayingCounter | None, DecayingCounter | None]:
        """Detach a component's load windows for transfer to another loop.

        A migration must *carry* the component's load history: resetting
        it on every move makes the hottest component look perpetually cool
        right after each handoff, so the controller keeps migrating the
        hotspot instead of ever seeing it cross the split threshold.
        """
        return (
            self._component_busy.pop(name, None),
            self._component_calls.pop(name, None),
        )

    def adopt_component(
        self,
        name: str,
        windows: tuple[DecayingCounter | None, DecayingCounter | None],
    ) -> None:
        """Install load windows exported from the previous host."""
        busy, calls = windows
        if busy is not None:
            self._component_busy[name] = busy
        if calls is not None:
            self._component_calls[name] = calls


class KarWorker:
    """One worker event loop: a failure domain hosting components.

    The worker heartbeats into the shared store (`_cluster:<app>:heartbeats`)
    so the control plane detects its death the same way the group detects a
    member's -- by silence, observed through the shared backend.
    """

    def __init__(self, app: "KarCluster", worker_id: str):
        self.app = app
        self.worker_id = worker_id
        self.kernel = app.kernel
        self.process = SimProcess(f"worker:{worker_id}")
        self.loop = WorkerLoop(
            app.kernel,
            app.config.worker_loop_cost,
            halflife=app.config.load_halflife,
        )
        #: A wedged worker keeps heartbeating (its processes are alive) but
        #: its loop stalls and its leases stop renewing -- the failure mode
        #: only the lease TTL sweep can detect.
        self.wedged = False
        #: This worker's own view onto the shared group state.
        self.coordinator = GroupCoordinator(
            app.broker, app.name, app.topic_name, state=app.coordinator.state
        )
        self.coordinator.ensure_watchdog()
        #: Component names currently hosted on this loop.
        self.hosted: set[str] = set()
        #: Set on graceful removal; a retired worker takes no new components.
        self.retired = False
        self.kernel.spawn(
            self._heartbeat_loop(),
            self.process,
            name=f"worker-heartbeat:{worker_id}",
        )

    @property
    def alive(self) -> bool:
        return self.process.alive

    async def _heartbeat_loop(self) -> None:
        interval = self.app.config.worker_heartbeat_interval
        backend = self.app.store.backend
        key = self.app.worker_heartbeat_key
        while True:
            backend.hset(key, self.worker_id, self.kernel.now)
            await self.kernel.sleep(interval)

    def wedge(self) -> None:
        """Wedge this worker: heartbeats keep flowing, progress stops.

        Models a live-but-stuck event loop (GC death spiral, hung syscall
        on the hot path): the heartbeat task still runs, so session-timeout
        detection never fires; only the partition leases going unrenewed
        reveals the worker is not actually doing work.
        """
        self.wedged = True
        self.loop.stalled = True
        self.app.trace.emit("worker.wedge", worker=self.worker_id)

    def stats(self) -> dict[str, Any]:
        """Per-worker slice of the unified evidence surface."""
        components = [
            component
            for component in self.app.components.values()
            if component.worker is self
        ]
        live = [c for c in components if c.alive]
        now = self.kernel.now
        return {
            "alive": self.alive,
            "retired": self.retired,
            "wedged": self.wedged,
            "hosted": sorted(self.hosted),
            "calls_charged": self.loop.calls_charged,
            # The decayed window: *current* hotness. The lifetime counter
            # moved to busy_seconds_total.
            "busy_seconds": self.loop.busy_seconds(now),
            "busy_seconds_total": self.loop.busy_seconds_total,
            "busy_rate": self.loop.busy_rate(now),
            "component_load": self.loop.component_loads(now),
            "outbox_batches": sum(c.router.batches_flushed for c in live),
            "outbox_records": sum(c.router.records_sent for c in live),
        }

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"KarWorker({self.worker_id}, {state}, hosted={sorted(self.hosted)})"


class KarCluster(KarApplication):
    """A KAR application running as N worker event loops.

    The cluster *is* a :class:`KarApplication` -- same broker, store, group,
    client surface, and recovery machinery -- plus a control plane that
    shards actor-hosting components across workers by consistent hashing
    and migrates them on worker join, graceful leave, and crash. Client
    components (no actor types) stay external, exactly like the paper's
    simulators driving the deployment from outside.
    """

    def __init__(
        self,
        kernel: Kernel,
        config: KarConfig | None = None,
        name: str = "app",
        workers: int = 2,
        *,
        store_backend: StoreBackend | None = None,
        broker_log: BrokerLog | None = None,
        worker_ids: tuple[str, ...] | None = None,
    ):
        super().__init__(
            kernel,
            config,
            name,
            store_backend=store_backend,
            broker_log=broker_log,
        )
        self.worker_heartbeat_key = f"_cluster:{name}:heartbeats"
        #: Workers the control plane declared failed (evidence surface).
        self.workers_failed: list[str] = []
        #: Component migrations performed (join/leave/crash re-hosting and
        #: load-triggered moves).
        self.migrations = 0
        #: Hot-component splits / cool-down merges performed.
        self.splits = 0
        self.merges = 0
        #: Leases the control plane expired (wedged-worker detections).
        self.lease_expirations = 0
        #: parent component -> its live sub-partition names, while split.
        self.split_children: dict[str, tuple[str, ...]] = {}
        #: Serializes drain->fence->restart handoffs: concurrent movers
        #: (join rebalance, the placement controller, graceful removal)
        #: must not drain or restart the same component at once.
        self._handoff_active = False
        self.placement_ctl = PlacementController(self)
        ids = worker_ids or tuple(f"w{index}" for index in range(workers))
        for worker_id in ids:
            self.workers[worker_id] = KarWorker(self, worker_id)
        kernel.spawn(self._control_loop(), name=f"cluster-control:{name}")

    # ------------------------------------------------------------------
    # worker-aware component hosting
    # ------------------------------------------------------------------
    def _live_workers(self) -> list[KarWorker]:
        return [
            worker
            for worker in self.workers.values()
            if worker.alive and not worker.retired
        ]

    def _assign_worker(self, name: str) -> KarWorker:
        """Consistent-hash placement with bounded load.

        Walks ``name``'s ring successors and takes the first live worker
        whose hosted count is minimal -- ring-stable under membership
        change, perfectly balanced under incremental adds.
        """
        live = self._live_workers()
        if not live:
            raise RuntimeError("no live workers to host components")
        by_id = {worker.worker_id: worker for worker in live}
        ring = HashRing(sorted(by_id))
        floor = min(len(worker.hosted) for worker in live)
        for worker_id in ring.successors(name):
            if len(by_id[worker_id].hosted) <= floor:
                return by_id[worker_id]
        return by_id[next(iter(ring.successors(name)))]  # pragma: no cover

    def add_component(
        self, name: str, actor_types: tuple[str, ...] = (), *, worker=None
    ) -> Component:
        if worker is None and actor_types:
            worker = self._assign_worker(name)
        component = super().add_component(name, actor_types, worker=worker)
        if worker is not None:
            worker.hosted.add(name)
        return component

    def restart_component(self, name: str, *, worker=None) -> Component:
        old = self.components.get(name)
        if old is not None and old.worker is not None:
            old.worker.hosted.discard(name)
        if worker is None and self.component_types.get(name):
            worker = self._assign_worker(name)
        component = super().restart_component(name, worker=worker)
        if worker is not None:
            worker.hosted.add(name)
        return component

    def worker_of(self, component_name: str) -> str | None:
        component = self.components.get(component_name)
        if component is None or component.worker is None:
            return None
        return component.worker.worker_id

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def add_worker(self, worker_id: str | None = None) -> KarWorker:
        """Start a new worker loop and migrate its ring share onto it."""
        if worker_id is None:
            index = len(self.workers)
            while f"w{index}" in self.workers:
                index += 1
            worker_id = f"w{index}"
        if worker_id in self.workers and self.workers[worker_id].alive:
            raise ValueError(f"worker {worker_id!r} is already running")
        worker = self.workers[worker_id] = KarWorker(self, worker_id)
        self.kernel.spawn(
            self._rebalance_components(),
            name=f"cluster-join:{worker_id}",
        )
        return worker

    def kill_worker(self, worker_id: str) -> None:
        """Abrupt fail-stop of a worker loop and everything it hosts.

        The group watchdog evicts the dead members on session timeout and
        the control plane re-hosts their component names on the survivors;
        reconciliation then replays the stranded tail of each migrated
        partition.
        """
        worker = self.workers[worker_id]
        self.trace.emit(
            "worker.kill", worker=worker_id, hosted=sorted(worker.hosted)
        )
        for name in sorted(worker.hosted):
            component = self.components.get(name)
            if (
                component is not None
                and component.alive
                and component.worker is worker
            ):
                component.process.kill()
        worker.process.kill()

    async def remove_worker_async(self, worker_id: str) -> None:
        """Graceful leave: drain and hand off every hosted component, then
        stop the worker loop. The settled set must match a crash's -- the
        only difference is who pays (drain here, reconciliation there)."""
        worker = self.workers[worker_id]
        worker.retired = True
        self.trace.emit(
            "worker.retire", worker=worker_id, hosted=sorted(worker.hosted)
        )
        await self._acquire_handoff_gate()
        try:
            for name in sorted(worker.hosted):
                component = self.components.get(name)
                if component is None or component.worker is not worker:
                    worker.hosted.discard(name)
                    continue
                await self._handoff(component)
        finally:
            self._release_handoff_gate()
        worker.process.kill()

    def remove_worker(
        self, worker_id: str, timeout: float | None = 600.0
    ) -> None:
        """Synchronous driver for :meth:`remove_worker_async`."""
        task = self.kernel.spawn(
            self.remove_worker_async(worker_id),
            name=f"cluster-leave:{worker_id}",
        )
        self.kernel.run_until_complete(task, timeout=timeout)

    async def _handoff(self, component: Component) -> None:
        """Drain -> fence old epoch -> (reconciliation replays the tail)
        -> resume, for one component."""
        name = component.name
        drained = await component.drain(self.config.drain_timeout)
        component.stop()
        target = self._assign_worker(name)
        self.trace.emit(
            "component.handoff",
            component=name,
            drained=drained,
            to_worker=target.worker_id,
        )
        self.migrations += 1
        self.restart_component(name, worker=target)

    # ------------------------------------------------------------------
    # the handoff gate (one drain->fence->restart mover at a time)
    # ------------------------------------------------------------------
    async def _acquire_handoff_gate(self) -> None:
        while self._handoff_active:
            await self.kernel.sleep(0.01)
        self._handoff_active = True

    def _release_handoff_gate(self) -> None:
        self._handoff_active = False

    def _target_worker(self, target_id: str | None, name: str) -> KarWorker:
        """Re-validate a migration target *after* the drain.

        The drain can outlast the target: a worker killed while it is the
        destination of an in-flight handoff must not strand the draining
        component, so a dead or retired target falls back to ring
        assignment over the current live set.
        """
        if target_id is not None:
            target = self.workers.get(target_id)
            if target is not None and target.alive and not target.retired:
                return target
        return self._assign_worker(name)

    # ------------------------------------------------------------------
    # adaptive placement actions (invoked by the placement controller)
    # ------------------------------------------------------------------
    async def _migrate_component(
        self, name: str, target_id: str | None
    ) -> bool:
        """Load-triggered move of one component: the same drain -> fence ->
        replay handoff as a worker join, aimed at a chosen target."""
        await self._acquire_handoff_gate()
        try:
            component = self.components.get(name)
            if (
                component is None
                or not component.alive
                or component.worker is None
            ):
                return False
            source = component.worker
            drained = await component.drain(self.config.drain_timeout)
            if not component.alive:
                # Crashed mid-drain; the failure path owns the re-host.
                return False
            component.stop()
            source.hosted.discard(name)
            windows = source.loop.export_component(name)
            target = self._target_worker(target_id, name)
            self.trace.emit(
                "component.handoff",
                component=name,
                drained=drained,
                to_worker=target.worker_id,
            )
            self.migrations += 1
            self.restart_component(name, worker=target)
            # The load history moves with the component so the controller
            # keeps seeing its true hotness across the handoff.
            target.loop.adopt_component(name, windows)
            return True
        finally:
            self._release_handoff_gate()

    async def _split_component(self, name: str) -> bool:
        """Split a hot component into sub-partitions spread over workers.

        Drain -> fence the parent (it leaves the group; its lease family
        stays fenced at its final epoch) -> start ``split_factor`` children
        announcing the same actor types. Placement re-keys the parent's
        actors by id over the new candidate set on the next send, and
        reconciliation replays whatever the drain left stranded in the
        parent's queue -- the split rides the exact machinery a crash does,
        so exactly-once settlement is preserved by construction.
        """
        await self._acquire_handoff_gate()
        try:
            component = self.components.get(name)
            if (
                component is None
                or not component.alive
                or component.worker is None
                or name in self.split_children
                or parent_partition(name) is not None
            ):
                return False
            types = tuple(sorted(self.component_types.get(name, ())))
            if not types:
                return False
            children = sub_partition_names(
                name, max(2, self.config.split_factor)
            )
            source = component.worker
            drained = await component.drain(self.config.drain_timeout)
            if not component.alive:
                return False
            component.stop()
            source.hosted.discard(name)
            source.loop.forget_component(name)
            self.split_children[name] = children
            self.splits += 1
            self.trace.emit(
                "component.split",
                component=name,
                children=list(children),
                drained=drained,
            )
            targets = self._spread_targets(len(children))
            for child, target in zip(children, targets):
                self.add_component(child, types, worker=target)
            return True
        finally:
            self._release_handoff_gate()

    async def _merge_component(self, name: str) -> bool:
        """Merge a cooled component's sub-partitions back into the parent.

        Children drain and leave one by one; the parent restarts at its
        next epoch and the actors re-key back as child placements die.
        """
        await self._acquire_handoff_gate()
        try:
            children = self.split_children.get(name)
            if children is None:
                return False
            for child in children:
                component = self.components.get(child)
                if component is not None and component.alive:
                    await component.drain(self.config.drain_timeout)
                # The drain may have raced a failure re-host; fence
                # whichever incarnation is current now.
                component = self.components.get(child)
                if component is not None and component.alive:
                    component.stop()
                if component is not None and component.worker is not None:
                    component.worker.hosted.discard(child)
                    component.worker.loop.forget_component(child)
                # Forget the child entirely so no failure path resurrects
                # it after the merge.
                self.components.pop(child, None)
                self.component_types.pop(child, None)
            self.split_children.pop(name, None)
            self.merges += 1
            self.trace.emit(
                "component.merge", component=name, children=list(children)
            )
            self.restart_component(name)
            return True
        finally:
            self._release_handoff_gate()

    def _spread_targets(self, count: int) -> list[KarWorker]:
        """The ``count`` least-busy live workers, cycling if needed."""
        now = self.kernel.now
        live = sorted(
            self._live_workers(),
            key=lambda worker: (
                worker.loop.busy_rate(now),
                len(worker.hosted),
                worker.worker_id,
            ),
        )
        if not live:
            raise RuntimeError("no live workers to host components")
        return [live[index % len(live)] for index in range(count)]

    # ------------------------------------------------------------------
    # control loop: worker failure detection via store heartbeats
    # ------------------------------------------------------------------
    async def _control_loop(self) -> None:
        config = self.config
        backend = self.store.backend
        while not self._shutdown:
            await self.kernel.sleep(config.worker_heartbeat_interval)
            if self._shutdown:
                return
            beats = backend.hgetall(self.worker_heartbeat_key)
            now = self.kernel.now
            for worker_id, worker in list(self.workers.items()):
                if worker.retired:
                    continue
                last = float(beats.get(worker_id, 0.0))
                if now - last > config.worker_session_timeout:
                    self._on_worker_failed(worker)
            if config.lease_ttl is not None:
                self._sweep_expired_leases(self.kernel.now)
            self.placement_ctl.tick(self.kernel.now)

    def _sweep_expired_leases(self, now: float) -> None:
        """Expire partition ownership the holder stopped renewing.

        Heartbeats prove the worker's processes are scheduled; lease
        renewal proves its loop still makes progress. A hosted component
        whose lease age exceeds ``lease_ttl`` therefore sits on a wedged
        worker: expel its member from the group at once and declare the
        worker failed, which re-hosts everything it carried (the successor
        incarnations fence the zombies at epoch + 1).
        """
        ttl = self.config.lease_ttl
        assert ttl is not None
        for worker in list(self.workers.values()):
            if not worker.alive or worker.retired:
                continue
            for name in sorted(worker.hosted):
                component = self.components.get(name)
                if (
                    component is None
                    or not component.alive
                    or component.worker is not worker
                ):
                    continue
                age = self.broker.lease_renewal_age(
                    self.topic_name, name, now
                )
                if age is None or age <= ttl:
                    continue
                self.lease_expirations += 1
                self.trace.emit(
                    "lease.expired",
                    component=name,
                    worker=worker.worker_id,
                    age=round(age, 6),
                )
                worker.coordinator.expel(
                    component.member_id, reason="lease_expired"
                )
                self._on_worker_failed(worker)
                break

    def _on_worker_failed(self, worker: KarWorker) -> None:
        """Re-host a silent worker's components on the survivors."""
        worker.retired = True
        self.workers_failed.append(worker.worker_id)
        self.trace.emit(
            "worker.failed",
            worker=worker.worker_id,
            hosted=sorted(worker.hosted),
        )
        for name in sorted(worker.hosted):
            component = self.components.get(name)
            if component is None or component.worker is not worker:
                worker.hosted.discard(name)
                continue
            if component.alive:
                # A worker that stopped heartbeating is dead by declaration;
                # any still-running hosted process is a zombie to terminate
                # (the paired-process rule applied at worker granularity).
                component.process.kill()
            self.migrations += 1
            self.restart_component(name)
        if worker.alive:
            worker.process.kill()

    async def _rebalance_components(self) -> None:
        """Migrate components whose ring assignment moved (worker join).

        The assignment is load-weighted when the load plane has signal:
        components carry their measured busy rates onto the ring, so a
        join rebalance spreads *load*, not just counts (an idle cluster
        falls back to the legacy count rule). Each move re-validates its
        target after the drain -- a worker killed while it is the target
        of an in-flight handoff must not strand the draining component.
        """
        live_ids = sorted(
            worker.worker_id for worker in self._live_workers()
        )
        if not live_ids:
            return
        hosted_names = sorted(
            name
            for name, component in self.components.items()
            if component.worker is not None and component.alive
        )
        now = self.kernel.now
        weights = {
            name: load["busy_rate"]
            for worker in self._live_workers()
            for name, load in worker.loop.component_loads(now).items()
            if name in worker.hosted
        }
        desired = HashRing(live_ids).assign(hosted_names, weights=weights)
        for name in hosted_names:
            component = self.components.get(name)
            if component is None or not component.alive:
                continue
            current = component.worker
            if (
                current is not None
                and current.worker_id == desired.get(name)
            ):
                continue
            await self._migrate_component(name, desired.get(name))

    # ------------------------------------------------------------------
    # evidence surface
    # ------------------------------------------------------------------
    def _placement_stats(self) -> dict[str, Any]:
        """The adaptive-placement slice of the unified evidence surface."""
        return {
            "adaptive": self.config.adaptive_placement,
            "migrations": self.migrations,
            "splits": self.splits,
            "merges": self.merges,
            "lease_expirations": self.lease_expirations,
            "split_children": {
                parent: list(children)
                for parent, children in sorted(self.split_children.items())
            },
            "controller": self.placement_ctl.stats(),
            "load": self.placement_ctl.load_snapshot(),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._shutdown:
            return
        for worker in self.workers.values():
            worker.coordinator.close()
            if worker.alive:
                worker.process.kill()
        super().shutdown()

    def reopen(self) -> "KarCluster":
        """Cold restart of the whole cluster over the same durable
        backends, with the same worker topology."""
        worker_ids = tuple(sorted(self.workers))
        self.shutdown()
        from repro.persist import reopen_persistence

        store_backend, broker_log = reopen_persistence(
            self.config.persistence,
            self.name,
            self.store.backend,
            self.broker.log,
        )
        cluster = KarCluster(
            self.kernel,
            self.config,
            self.name,
            store_backend=store_backend,
            broker_log=broker_log,
            worker_ids=worker_ids,
        )
        cluster.registry = self.registry
        return cluster
