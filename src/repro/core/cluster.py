"""Multi-worker scale-out: N event loops over the shared durable backends.

The paper's deployment (Section 5) is many sidecar processes sharing one
Kafka and one Redis. This module reproduces that shape inside the simulator:

- a :class:`KarWorker` is one worker event loop -- its own failure domain
  (a :class:`~repro.sim.SimProcess`), its own
  :class:`~repro.mq.GroupCoordinator` *view* onto the shared store-backed
  group state, and a :class:`WorkerLoop` busy horizon that serializes the
  CPU cost of every actor invocation it hosts (``KarConfig.
  worker_loop_cost``). With a positive cost one worker is a genuine
  throughput ceiling, and sharding components across N workers buys ~N x;
- a :class:`KarCluster` is the control plane: it extends
  :class:`~repro.core.app.KarApplication` with worker lifecycle (add,
  graceful remove, kill), consistent-hash assignment of actor-hosting
  components to workers (:mod:`repro.core.sharding`), worker failure
  detection through store heartbeats, and the live partition-handoff
  protocol.

The handoff protocol (drain -> fence old epoch -> replay tail -> resume):

1. **drain** -- the leaving component finishes in-flight frames and flushes
   its send outbox (:meth:`~repro.core.runtime.Component.drain`), bounded
   by ``drain_timeout``;
2. **fence** -- the old incarnation leaves the group (or, on a crash, is
   evicted by the session-timeout watchdog); either way the broker fences
   its member id, and the successor's partition-lease acquisition at
   ``epoch + 1`` fences whatever zombie survives even a cold restart;
3. **replay tail** -- the rebalance elects a leader whose reconciliation
   re-places every request stranded in the old incarnation's queue onto
   the live membership (the paper's retry orchestration: dedup by
   (request id, step) keeps the replay exactly-once);
4. **resume** -- the leader lifts the group pause and traffic continues
   against the new incarnation, whose placement entries are unchanged
   (placement stores component *names*, so moving a component between
   workers never invalidates where its actors live).

Workers agree through the store, not through shared Python objects: the
group state is CAS-bumped generations in the store backend, worker
liveness is a heartbeat hash in the same store, and every coordinator view
polls for foreign generations from its watchdog.
"""

from __future__ import annotations

from typing import Any

from repro.core.app import KarApplication
from repro.core.config import KarConfig
from repro.core.runtime import Component
from repro.core.sharding import HashRing
from repro.kvstore import StoreBackend
from repro.mq import BrokerLog, GroupCoordinator
from repro.sim import Kernel, SimProcess

__all__ = ["KarCluster", "KarWorker", "WorkerLoop"]


class WorkerLoop:
    """The busy horizon of one worker event loop.

    Charges serialize: each one starts no earlier than the previous one
    ended, so concurrent executions hosted on the same worker queue behind
    each other exactly like coroutines on one OS event loop. A zero cost
    returns without yielding to the scheduler, leaving single-loop runs
    event-for-event identical to the pre-scale-out runtime.
    """

    def __init__(self, kernel: Kernel, cost: float):
        self.kernel = kernel
        self.cost = cost
        self.busy_until = 0.0
        self.calls_charged = 0
        self.busy_seconds = 0.0

    async def charge(self) -> None:
        self.calls_charged += 1
        if self.cost <= 0.0:
            return
        now = self.kernel.now
        start = max(now, self.busy_until)
        self.busy_until = start + self.cost
        self.busy_seconds += self.cost
        await self.kernel.sleep(self.busy_until - now)


class KarWorker:
    """One worker event loop: a failure domain hosting components.

    The worker heartbeats into the shared store (`_cluster:<app>:heartbeats`)
    so the control plane detects its death the same way the group detects a
    member's -- by silence, observed through the shared backend.
    """

    def __init__(self, app: "KarCluster", worker_id: str):
        self.app = app
        self.worker_id = worker_id
        self.kernel = app.kernel
        self.process = SimProcess(f"worker:{worker_id}")
        self.loop = WorkerLoop(app.kernel, app.config.worker_loop_cost)
        #: This worker's own view onto the shared group state.
        self.coordinator = GroupCoordinator(
            app.broker, app.name, app.topic_name, state=app.coordinator.state
        )
        self.coordinator.ensure_watchdog()
        #: Component names currently hosted on this loop.
        self.hosted: set[str] = set()
        #: Set on graceful removal; a retired worker takes no new components.
        self.retired = False
        self.kernel.spawn(
            self._heartbeat_loop(),
            self.process,
            name=f"worker-heartbeat:{worker_id}",
        )

    @property
    def alive(self) -> bool:
        return self.process.alive

    async def _heartbeat_loop(self) -> None:
        interval = self.app.config.worker_heartbeat_interval
        backend = self.app.store.backend
        key = self.app.worker_heartbeat_key
        while True:
            backend.hset(key, self.worker_id, self.kernel.now)
            await self.kernel.sleep(interval)

    def stats(self) -> dict[str, Any]:
        """Per-worker slice of the unified evidence surface."""
        components = [
            component
            for component in self.app.components.values()
            if component.worker is self
        ]
        live = [c for c in components if c.alive]
        return {
            "alive": self.alive,
            "retired": self.retired,
            "hosted": sorted(self.hosted),
            "calls_charged": self.loop.calls_charged,
            "busy_seconds": self.loop.busy_seconds,
            "outbox_batches": sum(c.router.batches_flushed for c in live),
            "outbox_records": sum(c.router.records_sent for c in live),
        }

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"KarWorker({self.worker_id}, {state}, hosted={sorted(self.hosted)})"


class KarCluster(KarApplication):
    """A KAR application running as N worker event loops.

    The cluster *is* a :class:`KarApplication` -- same broker, store, group,
    client surface, and recovery machinery -- plus a control plane that
    shards actor-hosting components across workers by consistent hashing
    and migrates them on worker join, graceful leave, and crash. Client
    components (no actor types) stay external, exactly like the paper's
    simulators driving the deployment from outside.
    """

    def __init__(
        self,
        kernel: Kernel,
        config: KarConfig | None = None,
        name: str = "app",
        workers: int = 2,
        *,
        store_backend: StoreBackend | None = None,
        broker_log: BrokerLog | None = None,
        worker_ids: tuple[str, ...] | None = None,
    ):
        super().__init__(
            kernel,
            config,
            name,
            store_backend=store_backend,
            broker_log=broker_log,
        )
        self.worker_heartbeat_key = f"_cluster:{name}:heartbeats"
        #: Workers the control plane declared failed (evidence surface).
        self.workers_failed: list[str] = []
        #: Component migrations performed (join/leave/crash re-hosting).
        self.migrations = 0
        ids = worker_ids or tuple(f"w{index}" for index in range(workers))
        for worker_id in ids:
            self.workers[worker_id] = KarWorker(self, worker_id)
        kernel.spawn(self._control_loop(), name=f"cluster-control:{name}")

    # ------------------------------------------------------------------
    # worker-aware component hosting
    # ------------------------------------------------------------------
    def _live_workers(self) -> list[KarWorker]:
        return [
            worker
            for worker in self.workers.values()
            if worker.alive and not worker.retired
        ]

    def _assign_worker(self, name: str) -> KarWorker:
        """Consistent-hash placement with bounded load.

        Walks ``name``'s ring successors and takes the first live worker
        whose hosted count is minimal -- ring-stable under membership
        change, perfectly balanced under incremental adds.
        """
        live = self._live_workers()
        if not live:
            raise RuntimeError("no live workers to host components")
        by_id = {worker.worker_id: worker for worker in live}
        ring = HashRing(sorted(by_id))
        floor = min(len(worker.hosted) for worker in live)
        for worker_id in ring.successors(name):
            if len(by_id[worker_id].hosted) <= floor:
                return by_id[worker_id]
        return by_id[next(iter(ring.successors(name)))]  # pragma: no cover

    def add_component(
        self, name: str, actor_types: tuple[str, ...] = (), *, worker=None
    ) -> Component:
        if worker is None and actor_types:
            worker = self._assign_worker(name)
        component = super().add_component(name, actor_types, worker=worker)
        if worker is not None:
            worker.hosted.add(name)
        return component

    def restart_component(self, name: str, *, worker=None) -> Component:
        old = self.components.get(name)
        if old is not None and old.worker is not None:
            old.worker.hosted.discard(name)
        if worker is None and self.component_types.get(name):
            worker = self._assign_worker(name)
        component = super().restart_component(name, worker=worker)
        if worker is not None:
            worker.hosted.add(name)
        return component

    def worker_of(self, component_name: str) -> str | None:
        component = self.components.get(component_name)
        if component is None or component.worker is None:
            return None
        return component.worker.worker_id

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def add_worker(self, worker_id: str | None = None) -> KarWorker:
        """Start a new worker loop and migrate its ring share onto it."""
        if worker_id is None:
            index = len(self.workers)
            while f"w{index}" in self.workers:
                index += 1
            worker_id = f"w{index}"
        if worker_id in self.workers and self.workers[worker_id].alive:
            raise ValueError(f"worker {worker_id!r} is already running")
        worker = self.workers[worker_id] = KarWorker(self, worker_id)
        self.kernel.spawn(
            self._rebalance_components(),
            name=f"cluster-join:{worker_id}",
        )
        return worker

    def kill_worker(self, worker_id: str) -> None:
        """Abrupt fail-stop of a worker loop and everything it hosts.

        The group watchdog evicts the dead members on session timeout and
        the control plane re-hosts their component names on the survivors;
        reconciliation then replays the stranded tail of each migrated
        partition.
        """
        worker = self.workers[worker_id]
        self.trace.emit(
            "worker.kill", worker=worker_id, hosted=sorted(worker.hosted)
        )
        for name in sorted(worker.hosted):
            component = self.components.get(name)
            if (
                component is not None
                and component.alive
                and component.worker is worker
            ):
                component.process.kill()
        worker.process.kill()

    async def remove_worker_async(self, worker_id: str) -> None:
        """Graceful leave: drain and hand off every hosted component, then
        stop the worker loop. The settled set must match a crash's -- the
        only difference is who pays (drain here, reconciliation there)."""
        worker = self.workers[worker_id]
        worker.retired = True
        self.trace.emit(
            "worker.retire", worker=worker_id, hosted=sorted(worker.hosted)
        )
        for name in sorted(worker.hosted):
            component = self.components.get(name)
            if component is None or component.worker is not worker:
                worker.hosted.discard(name)
                continue
            await self._handoff(component)
        worker.process.kill()

    def remove_worker(
        self, worker_id: str, timeout: float | None = 600.0
    ) -> None:
        """Synchronous driver for :meth:`remove_worker_async`."""
        task = self.kernel.spawn(
            self.remove_worker_async(worker_id),
            name=f"cluster-leave:{worker_id}",
        )
        self.kernel.run_until_complete(task, timeout=timeout)

    async def _handoff(self, component: Component) -> None:
        """Drain -> fence old epoch -> (reconciliation replays the tail)
        -> resume, for one component."""
        name = component.name
        drained = await component.drain(self.config.drain_timeout)
        component.stop()
        target = self._assign_worker(name)
        self.trace.emit(
            "component.handoff",
            component=name,
            drained=drained,
            to_worker=target.worker_id,
        )
        self.migrations += 1
        self.restart_component(name, worker=target)

    # ------------------------------------------------------------------
    # control loop: worker failure detection via store heartbeats
    # ------------------------------------------------------------------
    async def _control_loop(self) -> None:
        config = self.config
        backend = self.store.backend
        while not self._shutdown:
            await self.kernel.sleep(config.worker_heartbeat_interval)
            if self._shutdown:
                return
            beats = backend.hgetall(self.worker_heartbeat_key)
            now = self.kernel.now
            for worker_id, worker in list(self.workers.items()):
                if worker.retired:
                    continue
                last = float(beats.get(worker_id, 0.0))
                if now - last > config.worker_session_timeout:
                    self._on_worker_failed(worker)

    def _on_worker_failed(self, worker: KarWorker) -> None:
        """Re-host a silent worker's components on the survivors."""
        worker.retired = True
        self.workers_failed.append(worker.worker_id)
        self.trace.emit(
            "worker.failed",
            worker=worker.worker_id,
            hosted=sorted(worker.hosted),
        )
        for name in sorted(worker.hosted):
            component = self.components.get(name)
            if component is None or component.worker is not worker:
                worker.hosted.discard(name)
                continue
            if component.alive:
                # A worker that stopped heartbeating is dead by declaration;
                # any still-running hosted process is a zombie to terminate
                # (the paired-process rule applied at worker granularity).
                component.process.kill()
            self.migrations += 1
            self.restart_component(name)
        if worker.alive:
            worker.process.kill()

    async def _rebalance_components(self) -> None:
        """Migrate components whose ring assignment moved (worker join)."""
        live_ids = sorted(
            worker.worker_id for worker in self._live_workers()
        )
        if not live_ids:
            return
        hosted_names = sorted(
            name
            for name, component in self.components.items()
            if component.worker is not None and component.alive
        )
        desired = HashRing(live_ids).assign(hosted_names)
        for name in hosted_names:
            component = self.components.get(name)
            if component is None or not component.alive:
                continue
            current = component.worker
            target_id = desired[name]
            if current is not None and current.worker_id == target_id:
                continue
            drained = await component.drain(self.config.drain_timeout)
            component.stop()
            if current is not None:
                current.hosted.discard(name)
            self.trace.emit(
                "component.handoff",
                component=name,
                drained=drained,
                to_worker=target_id,
            )
            self.migrations += 1
            self.restart_component(
                name, worker=self.workers[target_id]
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._shutdown:
            return
        for worker in self.workers.values():
            worker.coordinator.close()
            if worker.alive:
                worker.process.kill()
        super().shutdown()

    def reopen(self) -> "KarCluster":
        """Cold restart of the whole cluster over the same durable
        backends, with the same worker topology."""
        worker_ids = tuple(sorted(self.workers))
        self.shutdown()
        from repro.persist import reopen_persistence

        store_backend, broker_log = reopen_persistence(
            self.config.persistence,
            self.name,
            self.store.backend,
            self.broker.log,
        )
        cluster = KarCluster(
            self.kernel,
            self.config,
            self.name,
            store_backend=store_backend,
            broker_log=broker_log,
            worker_ids=worker_ids,
        )
        cluster.registry = self.registry
        return cluster
