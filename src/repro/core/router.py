"""Per-component transport: routing, the send outbox, and batched flushing.

Every envelope a component emits -- requests from ``invoke``, tail-call
successors, responses and tell self-acks -- passes through this layer.
It resolves a destination partition (placement + live-incarnation lookup),
enqueues the envelope in a per-component *outbox* with a per-message
durability future, and lets a flusher coalesce everything accumulated
within ``KarConfig.send_linger`` (up to ``send_batch_max`` envelopes) into
a single ``GroupMember.send_batch`` produce round trip.

Semantics are those of the unbatched transport:

- a durability future only resolves after the covering batch's produce
  ack, so callers still observe "durably queued" exactly when the broker
  acknowledged their record;
- fencing is checked at append time and rejects the whole batch -- every
  waiting sender observes :class:`FencedMemberError` and the component
  runs its fenced-exit path;
- a stale destination inside a batch fails only its own entries: the
  affected envelope is re-routed (placement invalidated, re-resolved,
  re-enqueued) while the rest of the batch lands;
- tail calls remain a single record that atomically completes the current
  request while issuing the next one (Section 2.3);
- completion-log mode keeps using ``send_transaction`` so the caller's
  response and the local completion record stay atomic (Section 4.3).

The routing tables derived from group membership (which component names
are live, which member incarnation answers for a name) are memoized per
coordinator generation instead of being rebuilt on every attempt; the
generation listener invalidates them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.mq import FencedMemberError, StaleRouteError

if TYPE_CHECKING:
    from repro.core.envelope import Request, Response
    from repro.core.runtime import Component
    from repro.mq.records import Record

__all__ = ["Router"]

#: Legacy fixed delay before re-checking for a live component supporting an
#: actor type ("KAR queues requests to unavailable types separately,
#: revisiting this queue when new components are added", Section 4.3).
#: Used only with ``overload_guard=False``; with the guard on, every routing
#: retry is paced by the jittered-backoff + retry-budget policy instead.
_PLACEMENT_RETRY_DELAY = 0.25


class _OutboxEntry:
    """One queued envelope and the future resolved at its produce ack."""

    __slots__ = ("partition", "envelope", "future")

    def __init__(self, partition: str, envelope: Any, future):
        self.partition = partition
        self.envelope = envelope
        self.future = future


class Router:
    """Routing and batched sending for one component."""

    def __init__(self, component: "Component"):
        self.component = component
        self._outbox: list[_OutboxEntry] = []
        self._flusher_running = False
        # Membership-derived routing tables, memoized per generation.
        self._generation_seen = -1
        self._candidates: dict[str, list[str]] = {}
        self._incarnations: dict[str, str] | None = None
        # Evidence counters for the throughput benchmarks.
        self.batches_flushed = 0
        self.records_sent = 0
        self.largest_batch = 0

    # ------------------------------------------------------------------
    # shortcuts
    # ------------------------------------------------------------------
    @property
    def kernel(self):
        return self.component.kernel

    @property
    def config(self):
        return self.component.config

    @property
    def coordinator(self):
        return self.component.coordinator

    @property
    def placement(self):
        return self.component.placement

    @property
    def trace(self):
        return self.component.trace

    # ------------------------------------------------------------------
    # membership-derived routing tables (memoized per generation)
    # ------------------------------------------------------------------
    def invalidate_membership(self) -> None:
        """Flush the memoized tables (called on every new generation)."""
        self._generation_seen = self.coordinator.generation
        self._candidates.clear()
        self._incarnations = None

    def _refresh_membership(self) -> None:
        if self.coordinator.generation != self._generation_seen:
            self.invalidate_membership()

    def live_candidates(self, actor_type: str) -> list[str]:
        """Sorted live component names announcing ``actor_type``."""
        self._refresh_membership()
        cached = self._candidates.get(actor_type)
        if cached is None:
            names = {
                m.rsplit("#", 1)[0] for m in self.coordinator.member_ids()
            }
            component_types = self.component.app.component_types
            cached = self._candidates[actor_type] = sorted(
                name
                for name in names
                if actor_type in component_types.get(name, frozenset())
            )
        return cached

    def live_incarnation(self, component_name: str) -> str | None:
        """The live member id answering for a component name, if any."""
        self._refresh_membership()
        if self._incarnations is None:
            table: dict[str, str] = {}
            for member_id in self.coordinator.member_ids():
                # During a handoff two incarnations can momentarily coexist
                # in the membership; the newest epoch holds the lease.
                base, _sep, epoch = member_id.rpartition("#")
                held = table.get(base)
                if held is None or int(epoch) > int(held.rpartition("#")[2]):
                    table[base] = member_id
            self._incarnations = table
        return self._incarnations.get(component_name)

    @property
    def outbox_idle(self) -> bool:
        """No envelopes waiting and no flush in flight (drain criterion)."""
        return not self._outbox and not self._flusher_running

    # ------------------------------------------------------------------
    # the send outbox
    # ------------------------------------------------------------------
    def send_durable(self, partition: str, envelope: Any):
        """Enqueue one envelope for the next batched flush.

        Returns a future resolved with the appended :class:`Record` once
        the covering batch's produce round trip acknowledged, or failed
        with :class:`StaleRouteError` (this entry must be re-routed) or a
        fence error (the component is dead).
        """
        future = self.kernel.create_future()
        self._outbox.append(_OutboxEntry(partition, envelope, future))
        if not self._flusher_running:
            self._flusher_running = True
            self.kernel.spawn(
                self._flush_outbox(),
                self.component.process,
                name=f"outbox:{self.component.member_id}",
            )
        return future

    async def _flush_outbox(self) -> None:
        """Drain the outbox in FIFO batches after the linger window.

        ``send_linger == 0.0`` still coalesces everything enqueued in the
        same event-loop turn (the zero-delay sleep runs after already
        scheduled work at this instant) while adding no simulated latency.
        FIFO draining keeps per-partition send order across batches.
        """
        await self.kernel.sleep(self.config.send_linger)
        while self._outbox:
            limit = max(1, self.config.send_batch_max)
            batch = self._outbox[:limit]
            del self._outbox[: len(batch)]
            try:
                await self._flush_batch(batch)
            except FencedMemberError as error:
                # Append-time fencing rejects whole batches: nothing was
                # appended, and this member can never send again. Fail every
                # waiting sender (their tasks run the fenced-exit path).
                for entry in batch + self._outbox:
                    if not entry.future.done():
                        entry.future.set_exception(error)
                self._outbox.clear()
                break
        self._flusher_running = False

    async def _flush_batch(self, batch: list[_OutboxEntry]) -> None:
        member = self.component.member
        self.batches_flushed += 1
        self.largest_batch = max(self.largest_batch, len(batch))
        if len(batch) == 1:
            # Singleton batches take the single-record produce path: same
            # round trip, same semantics, friendlier to fault injection.
            entry = batch[0]
            try:
                record = await member.send(entry.partition, entry.envelope)
            except StaleRouteError as error:
                if not entry.future.done():
                    entry.future.set_exception(error)
                return
            self.records_sent += 1
            if not entry.future.done():
                entry.future.set_result(record)
            return
        outcomes = await member.send_batch(
            [(entry.partition, entry.envelope) for entry in batch]
        )
        for entry, outcome in zip(batch, outcomes):
            if isinstance(outcome, StaleRouteError):
                if not entry.future.done():
                    entry.future.set_exception(outcome)
            else:
                self.records_sent += 1
                if not entry.future.done():
                    entry.future.set_result(outcome)

    # ------------------------------------------------------------------
    # retry pacing
    # ------------------------------------------------------------------
    async def _retry_pause(self, attempt: int) -> None:
        """Pace one routing retry: jittered backoff + retry budget with the
        overload guard on, the legacy fixed sleep with it off."""
        guard = self.component.overload
        if guard is None:
            await self.kernel.sleep(_PLACEMENT_RETRY_DELAY)
        else:
            await guard.pace_retry(attempt)

    async def _pace_if_guarded(self, attempt: int) -> None:
        """Pace retry paths that were historically immediate (stale routes,
        dead incarnations): backoff-paced with the guard on, immediate with
        it off, preserving the legacy retry loop exactly."""
        guard = self.component.overload
        if guard is not None:
            await guard.pace_retry(attempt)

    # ------------------------------------------------------------------
    # request routing
    # ------------------------------------------------------------------
    async def route_request(self, request: "Request") -> None:
        """Resolve placement and durably enqueue; retries stale routes."""
        guard = self.component.overload
        if guard is not None and request.copy_epoch == 0 and request.attempts == 0:
            # A first attempt: never throttled, and it earns retry credit.
            guard.budget.deposit(self.kernel.now)
        attempt = 0
        while True:
            await self.coordinator.wait_unpaused()
            candidates = self.live_candidates(request.actor.type)
            if not candidates:
                await self._retry_pause(attempt)
                attempt += 1
                continue
            target_name = await self.placement.resolve(request.actor, candidates)
            target_member = self.live_incarnation(target_name)
            if target_member is None:
                self.placement.invalidate_components({target_name})
                await self._pace_if_guarded(attempt)
                attempt += 1
                continue
            try:
                await self.send_durable(target_member, request)
            except StaleRouteError:
                self.placement.invalidate_components({target_name})
                await self._pace_if_guarded(attempt)
                attempt += 1
                continue
            self.trace.emit(
                "request.sent",
                request=request.request_id,
                step=request.step,
                actor=str(request.actor),
                method=request.method,
                target=target_member,
                sender=self.component.member_id,
            )
            return

    # ------------------------------------------------------------------
    # response routing
    # ------------------------------------------------------------------
    async def send_response(
        self, request: "Request", response: "Response"
    ) -> None:
        """Route a response to the caller's queue; if the caller's component
        died, follow the caller actor's (re-assigned) placement instead.

        Tells self-acknowledge into the *executing* component's own queue
        (Section 4.1): the completion record then shares the fate (and the
        retention clock) of the request it completes.
        """
        member_id = self.component.member_id
        if not request.expects_reply:
            await self.send_durable(member_id, response)
            self.trace.emit(
                "response.sent",
                request=response.request_id,
                target=member_id,
                self_ack=True,
            )
            return
        if request.reply_to is None:
            return
        if self.config.completion_log:
            await self._send_response_transactional(request, response)
            return
        attempt = 0
        while True:
            target, resolved_name = await self._resolve_response_target(request)
            if target is None:
                # Root caller (external client) is gone: nobody to answer,
                # but the completion evidence must still reach a journal.
                # Self-acknowledge into the executing component's own queue
                # (the tell discipline): reconciliation -- including one
                # running after a cold restart, when per-component dedup
                # evidence is gone -- then sees the request as settled and
                # never re-runs it.
                await self.send_durable(member_id, response)
                self.trace.emit(
                    "response.dropped",
                    request=response.request_id,
                    self_ack=True,
                )
                return
            try:
                await self.send_durable(target, response)
            except StaleRouteError:
                # The resolved target died while the send was in flight:
                # drop the cached placement so the retry re-resolves instead
                # of spinning on the dead entry.
                if resolved_name is not None:
                    self.placement.invalidate_components({resolved_name})
                await self._pace_if_guarded(attempt)
                attempt += 1
                continue
            self.trace.emit(
                "response.sent",
                request=response.request_id,
                target=target,
                error=response.error,
                cancelled=response.cancelled,
            )
            return

    def is_live_member(self, member_id: str) -> bool:
        """Whether ``member_id`` itself (not merely its component name) is
        still a group member -- the reply-to liveness check."""
        return self.coordinator.is_member(member_id)

    async def _resolve_response_target(
        self, request: "Request"
    ) -> tuple[str | None, str | None]:
        """Where the response to ``request`` should go right now.

        Returns ``(target_member, resolved_component_name)``. The caller's
        own queue wins while its member incarnation is live; a dead
        caller's *actor* is re-resolved through placement (the response
        follows the re-assigned actor). ``(None, None)`` means the caller
        was a root external client that no longer exists -- the response
        has no destination and only its completion evidence matters. On a
        stale-route send failure the caller invalidates
        ``resolved_component_name`` and asks again.
        """
        attempt = 0
        while True:
            await self.coordinator.wait_unpaused()
            if self.is_live_member(request.reply_to):
                return request.reply_to, None
            if request.caller_actor is None:
                return None, None
            candidates = self.live_candidates(request.caller_actor.type)
            if not candidates:
                await self._retry_pause(attempt)
                attempt += 1
                continue
            resolved_name = await self.placement.resolve(
                request.caller_actor, candidates
            )
            target = self.live_incarnation(resolved_name)
            if target is None:
                self.placement.invalidate_components({resolved_name})
                await self._pace_if_guarded(attempt)
                attempt += 1
                continue
            return target, resolved_name

    async def _send_response_transactional(
        self, request: "Request", response: "Response"
    ) -> None:
        """Completion-log mode (Section 4.3's future-work alternative):
        one message-queue transaction atomically (1) sends the caller the
        result and (2) logs the completion in this component's own queue.
        The local completion record lets reconciliation discard this queue
        eagerly on failure without ever re-running completed work."""
        member = self.component.member
        member_id = self.component.member_id
        while True:
            target, resolved_name = await self._resolve_response_target(request)
            if target is None:
                self.trace.emit("response.dropped", request=response.request_id)
                # Still log the completion locally so the request is never
                # retried for a caller that no longer exists.
                await member.send(member_id, response)
                return
            try:
                await member.send_transaction(
                    [(target, response), (member_id, response)]
                )
            except StaleRouteError:
                if resolved_name is not None:
                    self.placement.invalidate_components({resolved_name})
                continue
            self.trace.emit(
                "response.sent",
                request=response.request_id,
                target=target,
                completion_logged=True,
            )
            return
