"""Cluster configurations of the evaluation (Section 6.2).

Three deployment profiles differing only in where time goes:

- **ClusterDev** -- Kafka/Redis in-cluster, single replica, no persistent
  volumes: fast produces;
- **ClusterProd** -- in-cluster with attached persistent volumes (1000
  IOPS) and 3-way Kafka replication: produces pay replication+flush;
- **Managed** -- IBM's managed Event Streams / Databases for Redis in the
  same region: produces and store round trips pay the extra distance.

Latency bases are calibrated so the *medians* land near Table 2; jitter is
small and symmetric so medians are stable. The failure-campaign
configuration reproduces the detector settings of Section 4.3/6.1
(heartbeats every 3 s, 10 s session grace, ~2.4 s consensus) and a
reconciliation cost proportional to the unexpired message backlog.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import KarConfig
from repro.mq import BrokerConfig
from repro.sim import Latency

__all__ = [
    "CLUSTER_DEV",
    "CLUSTER_PROD",
    "MANAGED",
    "PROFILES",
    "ClusterProfile",
    "campaign_kar_config",
]


@dataclass(frozen=True)
class ClusterProfile:
    """One column-group of Table 2."""

    name: str
    http_rtt: float  # Direct HTTP round trip (seconds)
    produce: Latency  # Kafka produce incl. replication acks
    consume: Latency  # Kafka fetch
    store_rtt: Latency  # Redis round trip (placement / actor.state)
    sidecar: Latency  # one app<->runtime hop
    overhead: Latency  # per-invocation bookkeeping

    def kar_config(self, placement_cache: bool = True) -> KarConfig:
        return KarConfig(
            broker=BrokerConfig(
                produce_latency=self.produce,
                consume_latency=self.consume,
            ),
            store_latency=self.store_rtt,
            sidecar_latency=self.sidecar,
            invoke_overhead=self.overhead,
            placement_cache=placement_cache,
        )


def _ms(milliseconds: float, jitter_ms: float = 0.0) -> Latency:
    return Latency(milliseconds / 1000.0, jitter_ms / 1000.0)


CLUSTER_DEV = ClusterProfile(
    name="ClusterDev",
    http_rtt=0.00260,
    produce=_ms(1.60, 0.15),
    consume=_ms(0.55, 0.08),
    store_rtt=_ms(0.50, 0.05),
    sidecar=_ms(0.45, 0.05),
    overhead=_ms(0.47, 0.05),
)

CLUSTER_PROD = ClusterProfile(
    name="ClusterProd",
    http_rtt=0.00260,
    produce=_ms(4.20, 0.40),
    consume=_ms(1.11, 0.12),
    store_rtt=_ms(0.90, 0.08),
    sidecar=_ms(0.55, 0.05),
    overhead=_ms(0.59, 0.05),
)

MANAGED = ClusterProfile(
    name="Managed",
    http_rtt=0.00260,
    produce=_ms(5.85, 0.50),
    consume=_ms(1.43, 0.15),
    store_rtt=_ms(2.26, 0.20),
    sidecar=_ms(0.25, 0.03),
    overhead=_ms(0.24, 0.03),
)

PROFILES = (CLUSTER_DEV, CLUSTER_PROD, MANAGED)


def campaign_kar_config() -> KarConfig:
    """Configuration for the fault-injection campaign (Sections 6.1, 4.3).

    Detection: heartbeats every 3 s, session timeout 10 s -- detection lands
    in roughly [7, 10.5] s of the kill. Consensus: 2.2 s join window plus a
    short sync barrier (~2.4 s total, occasional stragglers to ~3.2 s).
    Reconciliation: a base cost plus a per-catalogued-message scan cost; the
    backlog is bounded by the ten-minute retention, yielding the median
    ~9-10 s with a heavy tail like Figure 7a.
    """
    return KarConfig(
        broker=BrokerConfig(
            produce_latency=_ms(4.20, 0.40),
            consume_latency=_ms(1.11, 0.12),
            heartbeat_interval=3.0,
            session_timeout=10.0,
            watchdog_interval=1.0,
            rebalance_join_window=2.2,
            rebalance_sync_latency=Latency(0.24, 0.2, floor=0.03),
            retention_seconds=600.0,
        ),
        store_latency=_ms(0.90, 0.08),
        sidecar_latency=_ms(0.55, 0.05),
        invoke_overhead=_ms(0.59, 0.05),
        reconcile_base=Latency(4.0, 1.5, floor=2.0),
        reconcile_per_message=0.00058,
        reconcile_per_copy=0.01,
    )
