"""Summary statistics matching the paper's Table 1 columns."""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["summary_stats"]


def summary_stats(values: Iterable[float]) -> dict:
    """Average, StdDev, Median, Min, Max -- the Table 1 columns."""
    data = sorted(values)
    if not data:
        return {"count": 0, "avg": None, "std": None, "median": None,
                "min": None, "max": None}
    count = len(data)
    mean = sum(data) / count
    variance = sum((x - mean) ** 2 for x in data) / count
    middle = count // 2
    if count % 2:
        median = data[middle]
    else:
        median = (data[middle - 1] + data[middle]) / 2
    return {
        "count": count,
        "avg": mean,
        "std": math.sqrt(variance),
        "median": median,
        "min": data[0],
        "max": data[-1],
    }
