"""Benchmark harnesses regenerating the paper's tables and figures."""

from repro.bench.configs import (
    CLUSTER_DEV,
    CLUSTER_PROD,
    MANAGED,
    PROFILES,
    ClusterProfile,
    campaign_kar_config,
)
from repro.bench.failure_harness import CampaignResult, FailureCampaign
from repro.bench.latency_harness import LatencyHarness
from repro.bench.report import render_series, render_table
from repro.bench.stats import summary_stats

__all__ = [
    "CLUSTER_DEV",
    "CLUSTER_PROD",
    "CampaignResult",
    "ClusterProfile",
    "FailureCampaign",
    "LatencyHarness",
    "MANAGED",
    "PROFILES",
    "campaign_kar_config",
    "render_series",
    "render_table",
    "summary_stats",
]
