"""Plain-text table rendering for benchmark output.

The benches print the same rows/series the paper reports so runs can be
eyeballed against the original tables and figures.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_value", "render_series", "render_table"]


def format_value(value: Any, digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    digits: int = 3,
) -> str:
    text_rows = [[format_value(cell, digits) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * width for width in widths]))
    for row in text_rows:
        out.append(line(row))
    return "\n".join(out)


def render_series(
    name: str, points: Iterable[tuple[Any, ...]], columns: Sequence[str],
    digits: int = 3,
) -> str:
    """A figure rendered as its data series (one row per point)."""
    return render_table(columns, points, title=name, digits=digits)
