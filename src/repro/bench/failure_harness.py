"""The fault-injection campaign of Section 6.1.

A virtual five-node cluster: infrastructure (broker, store, simulators) on
nodes that are never killed, and two *victim nodes*, each hosting one
replica of the "actors" server and one of the "singletons" server
(Figure 5b). The harness repeatedly hard-stops a random victim node
(abruptly terminating both components on it), waits for automatic recovery,
restarts the node, and fast-forwards a random sub-two-minute interval --
exactly the experiment design of Section 6.1.

Per failure it records the three outage phases (Figure 7a / Table 1):

- **detection** -- kill to the coordinator evicting the dead members;
- **consensus** -- eviction to the new group generation;
- **reconciliation** -- generation to the leader resuming the group;

plus the maximum order latency in the surrounding window (Figure 7b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.configs import campaign_kar_config
from repro.bench.stats import summary_stats
from repro.core import KarConfig
from repro.reefer import (
    ReeferApplication,
    ReeferConfig,
    check_invariants,
)
from repro.sim import Kernel

__all__ = ["CampaignResult", "FailureCampaign", "FailureRecord"]

#: Victim nodes: node -> components killed together by a node hard stop.
VICTIM_NODES = {
    "node-a": ("actors-0", "singletons-0"),
    "node-b": ("actors-1", "singletons-1"),
}


@dataclass
class FailureRecord:
    index: int
    node: str
    kill_time: float
    detection: float
    consensus: float
    reconciliation: float
    total: float
    max_order_latency: float | None
    generations: tuple[int, ...]


@dataclass
class CampaignResult:
    records: list[FailureRecord] = field(default_factory=list)
    invariant_violations: list[str] = field(default_factory=list)
    invariant_details: dict = field(default_factory=dict)
    orders_submitted: int = 0
    orders_completed: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0

    def phase_stats(self) -> dict[str, dict]:
        return {
            "Total Outage": summary_stats([r.total for r in self.records]),
            "Detection": summary_stats([r.detection for r in self.records]),
            "Consensus": summary_stats([r.consensus for r in self.records]),
            "Reconciliation": summary_stats(
                [r.reconciliation for r in self.records]
            ),
        }

    def latency_stats(self) -> dict:
        return summary_stats(
            [r.max_order_latency for r in self.records
             if r.max_order_latency is not None]
        )


class FailureCampaign:
    """Drives N single-node (or paired, or total) failures."""

    def __init__(
        self,
        seed: int = 0,
        failures: int = 30,
        kar_config: KarConfig | None = None,
        reefer_config: ReeferConfig | None = None,
        paired: bool = False,
        min_gap: float = 15.0,
        max_gap: float = 120.0,
        recovery_timeout: float = 180.0,
    ):
        self.kernel = Kernel(seed=seed)
        self.failures = failures
        self.paired = paired
        self.min_gap = min_gap
        self.max_gap = max_gap
        self.recovery_timeout = recovery_timeout
        self.reefer = ReeferApplication(
            self.kernel,
            kar_config or campaign_kar_config(),
            reefer_config
            or ReeferConfig(order_rate=0.5, anomaly_rate=0.02,
                            containers_per_depot=200),
        )
        # Campaigns run long: tracing every invocation would dominate memory.
        self.reefer.app.trace.enabled = False

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        import time as _time

        wall_start = _time.monotonic()
        kernel = self.kernel
        reefer = self.reefer
        coordinator = reefer.app.coordinator
        result = CampaignResult()

        reefer.start()
        kernel.run(until=kernel.now + 30.0)  # warm-up

        for index in range(self.failures):
            node = kernel.rng.choice(sorted(VICTIM_NODES))
            components = VICTIM_NODES[node]
            kill_time = kernel.now
            history_mark = len(coordinator.history)
            for component in components:
                reefer.kill(component)

            if self.paired:
                # Second node failure timed to land inside the first
                # recovery (during consensus or reconciliation).
                other = next(n for n in sorted(VICTIM_NODES) if n != node)
                delay = 10.0 + kernel.rng.uniform(1.0, 10.0)
                kernel.schedule(
                    delay,
                    lambda o=other: [
                        reefer.kill(c)
                        for c in VICTIM_NODES[o]
                        if reefer.app.components[c].alive
                    ],
                )

            record = self._await_recovery(
                index, node, kill_time, history_mark, components
            )
            if record is not None:
                result.records.append(record)

            # Restart dead victims (the node comes back with new replicas).
            for name in [c for cs in VICTIM_NODES.values() for c in cs]:
                if not reefer.app.components[name].alive:
                    reefer.restart(name)
            self._await_unpaused(60.0)

            gap = kernel.rng.uniform(self.min_gap, self.max_gap)
            kernel.run(until=kernel.now + gap)

        reefer.drain(max_wait=600.0)
        report = check_invariants(reefer)
        result.invariant_violations = report.violations
        result.invariant_details = report.details
        result.orders_submitted = len(reefer.metrics.submitted)
        result.orders_completed = len(reefer.metrics.completed)
        result.sim_seconds = kernel.now
        result.wall_seconds = _time.monotonic() - wall_start
        return result

    # ------------------------------------------------------------------
    def _await_recovery(
        self,
        index: int,
        node: str,
        kill_time: float,
        history_mark: int,
        components: tuple[str, ...],
    ) -> FailureRecord | None:
        """Run until every failure-generation triggered by this kill has
        been reconciled and resumed; extract the phase breakdown."""
        kernel = self.kernel
        coordinator = self.reefer.app.coordinator
        deadline = kill_time + self.recovery_timeout
        dead_members = {
            self.reefer.app.components[name].member_id for name in components
        }
        while kernel.now < deadline:
            relevant = [
                record
                for record in coordinator.history[history_mark:]
                if record.reason == "failure"
            ]
            covered = {
                member for record in relevant for member in record.failed
            }
            if (
                relevant
                and dead_members.issubset(covered)
                and relevant[-1].resumed_at is not None
                and not coordinator.paused
            ):
                # Earlier generations may have been superseded by a later
                # failure before their leader resumed (paired failures);
                # only the last one must have resumed. Reconciliation is
                # whatever recovery time is not detection or consensus.
                first = relevant[0]
                last = relevant[-1]
                detection = first.triggered_at - kill_time
                consensus = sum(
                    r.completed_at - r.triggered_at for r in relevant
                )
                total = last.resumed_at - kill_time
                reconciliation = max(total - detection - consensus, 0.0)
                window_hi = last.resumed_at + 25.0
                kernel.run(until=kernel.now + 25.0)  # let spikes complete
                max_latency = self.reefer.metrics.max_latency_in_window(
                    kill_time - 5.0, window_hi
                )
                return FailureRecord(
                    index=index,
                    node=node,
                    kill_time=kill_time,
                    detection=detection,
                    consensus=consensus,
                    reconciliation=reconciliation,
                    total=total,
                    max_order_latency=max_latency,
                    generations=tuple(r.generation for r in relevant),
                )
            kernel.run(until=min(kernel.now + 0.5, deadline))
        return None  # recovery did not finish in time (reported as missing)

    def _await_unpaused(self, max_wait: float) -> None:
        kernel = self.kernel
        coordinator = self.reefer.app.coordinator
        deadline = kernel.now + max_wait
        while kernel.now < deadline and coordinator.paused:
            kernel.run(until=min(kernel.now + 0.5, deadline))


def run_total_failure_iterations(
    seed: int = 0,
    iterations: int = 5,
    downtime: float = 30.0,
    kar_config: KarConfig | None = None,
) -> dict:
    """The complete-application-failure scenario of Section 6.1: kill every
    application component except the simulators, wait, restart, verify."""
    kernel = Kernel(seed=seed)
    reefer = ReeferApplication(
        kernel,
        kar_config or campaign_kar_config(),
        ReeferConfig(order_rate=0.5, anomaly_rate=0.0,
                     containers_per_depot=200),
    )
    reefer.app.trace.enabled = False
    reefer.start()
    kernel.run(until=kernel.now + 20.0)
    survived = 0
    for _ in range(iterations):
        for name in [c for cs in VICTIM_NODES.values() for c in cs]:
            if reefer.app.components[name].alive:
                reefer.kill(name)
        kernel.run(until=kernel.now + downtime)
        for name in [c for cs in VICTIM_NODES.values() for c in cs]:
            reefer.restart(name)
        kernel.run(until=kernel.now + 60.0)
        if not reefer.app.coordinator.paused:
            survived += 1
        kernel.run(until=kernel.now + 20.0)
    reefer.drain(max_wait=600.0)
    report = check_invariants(reefer)
    return {
        "iterations": iterations,
        "recovered": survived,
        "violations": report.violations,
        "details": report.details,
    }
