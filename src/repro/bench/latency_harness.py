"""Round-trip latency measurements for Table 2 (Section 6.2).

Four systems, measured with the same minimal request-response pattern and a
20-byte payload, communicating processes on different worker nodes:

- **Direct HTTP** -- a non-reliable POST between two processes;
- **Kafka Only** -- two processes exchanging messages straight through the
  (simulated) broker, no KAR runtime;
- **KAR Actor** -- a KAR actor method invocation (default configuration);
- **KAR Actor (no cache)** -- placement cache disabled, paying one store
  round trip per invocation.
"""

from __future__ import annotations

from repro.bench.configs import ClusterProfile
from repro.bench.stats import summary_stats
from repro.core import Actor, KarApplication, actor_proxy
from repro.net import DirectHttpBaseline
from repro.mq import Broker, BrokerConfig, GroupCoordinator
from repro.sim import Kernel, SimProcess

__all__ = ["LatencyHarness"]

_PAYLOAD = "x" * 20  # "a small payload (20 bytes of user data)"


class EchoActor(Actor):
    async def echo(self, ctx, payload):
        return payload


class LatencyHarness:
    """Median round-trip latency of each system under one profile."""

    def __init__(self, profile: ClusterProfile, iterations: int = 300,
                 seed: int = 0):
        self.profile = profile
        self.iterations = iterations
        self.seed = seed

    # ------------------------------------------------------------------
    def measure_direct_http(self) -> dict:
        kernel = Kernel(seed=self.seed)
        endpoint = DirectHttpBaseline(
            kernel, rtt=self.profile.http_rtt,
            handler=lambda payload: payload,
        )
        samples = []

        async def driver():
            for _ in range(self.iterations):
                start = kernel.now
                await endpoint.request(_PAYLOAD)
                samples.append(kernel.now - start)

        kernel.run_until_complete(kernel.spawn(driver()))
        return summary_stats(samples)

    # ------------------------------------------------------------------
    def measure_kafka_only(self) -> dict:
        kernel = Kernel(seed=self.seed)
        broker = Broker(
            kernel,
            BrokerConfig(
                produce_latency=self.profile.produce,
                consume_latency=self.profile.consume,
            ),
        )
        group = GroupCoordinator(broker, "bench", "bench-topic")
        group.on_generation(lambda info: group.resume(info.generation))
        ping_process = SimProcess("ping")
        pong_process = SimProcess("pong")
        ping = group.join("ping", ping_process)
        pong = group.join("pong", pong_process)
        samples = []

        async def responder():
            while True:
                records = await pong.poll()
                for record in records:
                    await pong.send("ping", record.value)

        async def driver():
            for _ in range(self.iterations):
                start = kernel.now
                await ping.send("pong", _PAYLOAD)
                await ping.poll()
                samples.append(kernel.now - start)

        kernel.spawn(responder(), pong_process, name="responder")
        task = kernel.spawn(driver(), ping_process, name="driver")
        kernel.run_until_complete(task, timeout=3600.0)
        return summary_stats(samples)

    # ------------------------------------------------------------------
    def measure_kar_actor(self, placement_cache: bool = True) -> dict:
        kernel = Kernel(seed=self.seed)
        app = KarApplication(
            kernel, self.profile.kar_config(placement_cache=placement_cache)
        )
        app.register_actor(EchoActor, name="Echo")
        app.add_component("workers", ("Echo",))
        client = app.client()
        app.settle()
        ref = actor_proxy("Echo", "bench")
        samples = []

        async def driver():
            # One warm-up call instantiates the actor (and fills the cache).
            await client.invoke(None, ref, "echo", (_PAYLOAD,), True)
            for _ in range(self.iterations):
                start = kernel.now
                await client.invoke(None, ref, "echo", (_PAYLOAD,), True)
                samples.append(kernel.now - start)

        task = kernel.spawn(driver(), client.process, name="driver")
        kernel.run_until_complete(task, timeout=36000.0)
        return summary_stats(samples)

    # ------------------------------------------------------------------
    def row(self) -> tuple:
        """One Table 2 row: medians in milliseconds."""
        direct = self.measure_direct_http()
        kafka = self.measure_kafka_only()
        kar = self.measure_kar_actor(placement_cache=True)
        kar_nocache = self.measure_kar_actor(placement_cache=False)
        return (
            self.profile.name,
            direct["median"] * 1000.0,
            kafka["median"] * 1000.0,
            kar["median"] * 1000.0,
            kar_nocache["median"] * 1000.0,
        )
