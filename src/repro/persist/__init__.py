"""Pluggable persistence: backend selection for the store and the broker.

The paper's recovery guarantees rest on calls, responses, and actor state
living in services that survive application death (Sections 3.3, 4.2). This
package decides *where* those services keep their bytes:

- ``memory`` (default): state lives in the backend objects themselves.
  They survive :meth:`KarApplication.shutdown` / ``reopen`` (modelling an
  infrastructure service that outlives the application processes) but not
  the death of the Python process.
- ``sqlite``: the store writes a WAL-mode SQLite file and the broker
  appends to a JSONL file journal, one set of files per application name
  under ``PersistenceConfig.root``. A cold restart -- a brand-new process
  pointed at the same directory -- replays journals and reconstructs every
  topic, partition, placement, and unsettled call.

Backends are chosen through :class:`KarConfig.persistence`; the heavy
implementations are imported lazily so this module stays cycle-free.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.kvstore.backend import StoreBackend
    from repro.mq.log import BrokerLog

__all__ = [
    "PersistenceConfig",
    "build_persistence",
    "reopen_persistence",
    "wipe_persistence",
]


@dataclass(frozen=True)
class PersistenceConfig:
    """Backend selection and durability knobs for one application.

    ``mode`` is ``"memory"`` or ``"sqlite"``. ``root`` names the directory
    holding the durable files (required for ``sqlite``); one store database
    and one broker journal are created per application name. ``codec``
    picks the wire encoding for durable bytes: ``"binary"`` (default) uses
    the length-prefixed frames of :mod:`repro.persist.framing`; ``"json"``
    keeps the legacy tagged-JSON text (greppable journals, slower and
    larger). Either reader accepts files written by the other -- the frame
    header's version byte dispatches -- and a journal found in the other
    format is rewritten into the configured one on open. ``synchronous``
    sets the SQLite synchronous pragma (``"OFF"``/``"NORMAL"``/``"FULL"``);
    ``fsync_journal`` forces an ``os.fsync`` after every journal flush.
    The journal is rewritten in place (retention-driven compaction) once at
    least ``compact_min_records`` expired records sit on disk *and* the
    retained records are below ``compact_ratio`` of the lines written.
    """

    mode: str = "memory"
    root: str | None = None
    codec: str = "binary"
    synchronous: str = "NORMAL"
    fsync_journal: bool = False
    compact_min_records: int = 4096
    compact_ratio: float = 0.5

    @staticmethod
    def sqlite(root: str, **overrides: Any) -> "PersistenceConfig":
        return PersistenceConfig(mode="sqlite", root=root, **overrides)


def _paths(config: PersistenceConfig, app_name: str) -> tuple[str, str]:
    if config.root is None:
        raise ValueError("PersistenceConfig.root is required for durable modes")
    os.makedirs(config.root, exist_ok=True)
    store_path = os.path.join(config.root, f"{app_name}.store.sqlite3")
    journal_path = os.path.join(config.root, f"{app_name}.journal")
    return store_path, journal_path


def build_persistence(
    config: PersistenceConfig, app_name: str
) -> tuple["StoreBackend", "BrokerLog"]:
    """Instantiate the (store backend, broker log) pair for one app."""
    if config.mode == "memory":
        from repro.kvstore.backend import MemoryStoreBackend
        from repro.mq.log import MemoryBrokerLog

        return MemoryStoreBackend(), MemoryBrokerLog()
    if config.mode == "sqlite":
        from repro.kvstore.backend import SqliteStoreBackend
        from repro.mq.log import FileJournalLog

        if config.codec not in ("json", "binary"):
            raise ValueError(f"unknown persistence codec {config.codec!r}")
        store_path, journal_path = _paths(config, app_name)
        return (
            SqliteStoreBackend(
                store_path,
                synchronous=config.synchronous,
                codec=config.codec,
            ),
            FileJournalLog(
                journal_path,
                fsync=config.fsync_journal,
                compact_min_records=config.compact_min_records,
                compact_ratio=config.compact_ratio,
                codec=config.codec,
            ),
        )
    raise ValueError(f"unknown persistence mode {config.mode!r}")


def reopen_persistence(
    config: PersistenceConfig,
    app_name: str,
    store_backend: "StoreBackend",
    broker_log: "BrokerLog",
) -> tuple["StoreBackend", "BrokerLog"]:
    """Backends for a restarted application.

    Memory backends survive as live objects (the simulated service outlived
    the app), so they are handed back verbatim; durable backends are
    reconstructed from their files, which is exactly what a new process
    would do after a crash.
    """
    if config.mode == "memory":
        return store_backend, broker_log
    return build_persistence(config, app_name)


def wipe_persistence(config: PersistenceConfig, app_name: str) -> None:
    """Delete any durable files for ``app_name`` (a truly fresh start)."""
    if config.mode == "memory":
        return
    store_path, journal_path = _paths(config, app_name)
    for path in (
        store_path,
        store_path + "-wal",
        store_path + "-shm",
        journal_path,
        journal_path + ".meta.json",
        journal_path + ".lock",
    ):
        if os.path.exists(path):
            os.remove(path)
