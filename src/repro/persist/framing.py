"""Binary wire framing: the hot-path codec behind durable backends.

The tagged-JSON codec (:mod:`repro.persist.codec`) keeps journals greppable
but pays recursive tag dispatch, per-record import-path strings, and a full
JSON parse on every envelope. This module is the fast path: a compact
length-free binary value encoding under a magic + version frame header, so
one byte of version dispatch selects between the binary decoder and the
legacy JSON codec -- a journal written before this codec existed replays
through the same reader.

Frame layout::

    +-------------------+---------+---------------------------+
    | magic  b"\\xabKR"  | version | payload                   |
    +-------------------+---------+---------------------------+
      3 bytes             1 byte    version 1: tagged-JSON utf-8
                                    version 2: binary value encoding

Anything *without* the magic prefix (a raw JSON text, the pre-framing
store/journal format) decodes through the legacy codec, so old databases
and journals need no conversion step to be readable.

The binary value encoding is opcode-dispatched with fast paths for the
types the runtime actually persists:

- scalars, strings, lists, tuples, str-keyed dicts each cost one opcode
  byte plus their payload; sets encode in a deterministic byte order
  (identical states -> identical frames, independent of the hash seed);
- registered dataclasses (:func:`register_frame_type`) encode as a 2-byte
  table id plus *positional* field values -- no import-path string and no
  field names per record;
- ``ActorRef`` / ``Request`` / ``Response`` get dedicated opcodes;
  hot identifier fields (method names, member ids, actor types) are
  interned on decode so replay shares one string object per distinct id;
- a :class:`FrameCache` memoizes the encoded immutable core of each
  ``Request`` so retry and recovery copies -- which change only the retry
  header (``after_callee``/``copy_epoch``/``attempts``/``attempt_log``) --
  never re-encode the unchanged fields;
- unregistered dataclasses fall back to import-path encoding and anything
  else to raw pickle bytes, mirroring the JSON codec's durability ladder.
"""

from __future__ import annotations

import json
import pickle
import struct
import sys
from dataclasses import fields as dataclass_fields
from dataclasses import is_dataclass
from operator import attrgetter, itemgetter
from typing import Any, Callable

from repro.persist.codec import CodecError, _resolve_type, from_wire, to_wire

__all__ = [
    "FrameCache",
    "FramingError",
    "MAGIC",
    "VERSION_BINARY",
    "VERSION_JSON",
    "decode_value",
    "dumps_frame",
    "encode_value",
    "loads_frame",
    "register_frame_type",
]

#: Frame magic. The first byte is a UTF-8 continuation byte, so no JSON (or
#: any valid UTF-8) text can start with it: presence of the magic is an
#: unambiguous format discriminator against the legacy codec.
MAGIC = b"\xabKR"
#: Version byte 1: the payload is the legacy tagged-JSON encoding (utf-8).
VERSION_JSON = 1
#: Version byte 2: the payload is the binary value encoding of this module.
VERSION_BINARY = 2

_HEADER_JSON = MAGIC + bytes((VERSION_JSON,))
_HEADER_BINARY = MAGIC + bytes((VERSION_BINARY,))


class FramingError(CodecError):
    """A value could not be framed or a frame could not be decoded."""


# ----------------------------------------------------------------------
# opcodes
# ----------------------------------------------------------------------
_OP_NONE = 0x00
_OP_TRUE = 0x01
_OP_FALSE = 0x02
_OP_INT8 = 0x03
_OP_INT32 = 0x04
_OP_INT64 = 0x05
_OP_INTBIG = 0x06
_OP_FLOAT = 0x07
_OP_STR8 = 0x08
_OP_STR32 = 0x09
_OP_BYTES = 0x0A
_OP_LIST = 0x0B
_OP_TUPLE8 = 0x0C
_OP_TUPLE32 = 0x0D
_OP_DICTSTR = 0x0E
_OP_MAP = 0x0F
_OP_SET = 0x10
_OP_FROZENSET = 0x11
_OP_DATACLASS = 0x12
_OP_DATACLASS_PATH = 0x13
_OP_PICKLE = 0x14
_OP_ACTORREF = 0x15
_OP_REQUEST = 0x16
_OP_RESPONSE = 0x17

_S_INT32 = struct.Struct("<i")
_S_INT64 = struct.Struct("<q")
_S_FLOAT = struct.Struct("<d")
_S_U16 = struct.Struct("<H")
_S_U32 = struct.Struct("<I")

_INT8_MIN, _INT8_MAX = -0x80, 0x7F
_INT32_MIN, _INT32_MAX = -0x80000000, 0x7FFFFFFF
_INT64_MIN, _INT64_MAX = -0x8000000000000000, 0x7FFFFFFFFFFFFFFF


# ----------------------------------------------------------------------
# the dataclass frame table
# ----------------------------------------------------------------------
#: Well-known table ids (reserved; user registrations must use >= 64).
ACTORREF_TYPE_ID = 1
REQUEST_TYPE_ID = 2
RESPONSE_TYPE_ID = 3

#: Request fields that change on retry/recovery copies; everything else is
#: the immutable core memoized by :class:`FrameCache`.
_RETRY_HEADER_FIELDS = ("after_callee", "copy_epoch", "attempts", "attempt_log")

#: Request core fields whose decoded strings are interned (hot identifiers
#: repeated across millions of records).
_INTERNED_REQUEST_FIELDS = ("request_id", "method", "reply_to", "caller_member")


def _tuple_getter(names: tuple[str, ...]) -> Callable[[Any], tuple]:
    """An attrgetter that always yields a tuple (one C call per object)."""
    if not names:
        return lambda obj: ()
    if len(names) == 1:
        single = attrgetter(names[0])
        return lambda obj: (single(obj),)
    return attrgetter(*names)


class _RegisteredType:
    """One row of the frame table: a dataclass and its positional layout."""

    __slots__ = (
        "arg_order",
        "cls",
        "core_names",
        "field_names",
        "get_core",
        "get_fields",
        "get_header",
        "header_names",
        "intern_core_indices",
        "type_id",
        "wire_count",
    )

    def __init__(self, cls: type, type_id: int):
        self.cls = cls
        self.type_id = type_id
        self.field_names: tuple[str, ...] = tuple(
            f.name for f in dataclass_fields(cls)
        )
        # Request-only split: core (memoizable) vs retry header.
        self.core_names: tuple[str, ...] = self.field_names
        self.header_names: tuple[str, ...] = ()
        self.intern_core_indices: tuple[int, ...] = ()
        if type_id == REQUEST_TYPE_ID:
            self.core_names = tuple(
                name
                for name in self.field_names
                if name not in _RETRY_HEADER_FIELDS
            )
            self.header_names = tuple(
                name for name in self.field_names if name in _RETRY_HEADER_FIELDS
            )
            self.intern_core_indices = tuple(
                self.core_names.index(name)
                for name in _INTERNED_REQUEST_FIELDS
                if name in self.core_names
            )
        # Wire order is core then header; arg_order maps each constructor
        # argument back to its wire position so decode builds positionally.
        wire_names = self.core_names + self.header_names
        self.wire_count = len(wire_names)
        # itemgetter with 2+ indices yields the constructor args as a
        # tuple in one C call; tiny types never take the request path.
        self.arg_order: Callable[[list], tuple] = (
            itemgetter(*(wire_names.index(name) for name in self.field_names))
            if len(self.field_names) > 1
            else tuple
        )
        self.get_fields = _tuple_getter(self.field_names)
        self.get_core = _tuple_getter(self.core_names)
        self.get_header = _tuple_getter(self.header_names)


_TABLE_BY_TYPE: dict[type, _RegisteredType] = {}
_TABLE_BY_ID: dict[int, _RegisteredType] = {}

#: Decoder fast-path entries, pinned at registration time (None until the
#: defining module imports; the slow lookup self-heals by importing it).
_REQUEST_ENTRY: _RegisteredType | None = None
_RESPONSE_ENTRY: _RegisteredType | None = None
_ACTORREF_ENTRY: _RegisteredType | None = None


def register_frame_type(cls: type, type_id: int) -> type:
    """Register a dataclass in the binary frame table.

    Registered types encode as ``(table id, positional field values)``
    instead of an import-path string plus field names per record. Ids must
    be stable across every process that reads a journal: the runtime's own
    types own ids below 64, applications register at 64 and above, at
    import time (before any journal is replayed). Returns ``cls`` so the
    call composes as a decorator.
    """
    if not (is_dataclass(cls) and isinstance(cls, type)):
        raise FramingError(f"{cls!r} is not a dataclass type")
    if not 0 < type_id <= 0xFFFF:
        raise FramingError(f"frame type id {type_id} out of range 1..65535")
    existing = _TABLE_BY_ID.get(type_id)
    if existing is not None and existing.cls is not cls:
        raise FramingError(
            f"frame type id {type_id} already registered to {existing.cls!r}"
        )
    entry = _RegisteredType(cls, type_id)
    _TABLE_BY_TYPE[cls] = entry
    _TABLE_BY_ID[type_id] = entry
    # Pin the hot-opcode entries in module globals: the decoder reads them
    # per record, and a dict probe per record is measurable at journal
    # replay volume.
    global _REQUEST_ENTRY, _RESPONSE_ENTRY, _ACTORREF_ENTRY
    if type_id == REQUEST_TYPE_ID:
        _REQUEST_ENTRY = entry
    elif type_id == RESPONSE_TYPE_ID:
        _RESPONSE_ENTRY = entry
    elif type_id == ACTORREF_TYPE_ID:
        _ACTORREF_ENTRY = entry
    return cls


def _lookup_type_id(type_id: int) -> _RegisteredType:
    entry = _TABLE_BY_ID.get(type_id)
    if entry is None:
        # The table self-populates when the defining modules import; a
        # standalone decode (journal inspection tooling) may get here
        # before any of them has loaded.
        import repro.core.envelope  # noqa: F401
        import repro.core.overload  # noqa: F401
        import repro.core.refs  # noqa: F401
        import repro.mq.records  # noqa: F401

        entry = _TABLE_BY_ID.get(type_id)
    if entry is None:
        raise FramingError(f"unknown frame table id {type_id}")
    return entry


# ----------------------------------------------------------------------
# the request frame cache
# ----------------------------------------------------------------------
class FrameCache:
    """Memoized encoded cores of recently framed ``Request`` envelopes.

    Keyed by ``(request_id, step)`` -- the same identity the runtime dedups
    on -- and guarded by identity checks on the core fields, so a hit can
    only serve bytes for the exact same message. Retry and recovery copies
    (built with ``dataclasses.replace``, which preserves field object
    identity) hit the cache and re-encode nothing but the retry header.
    One cache per journal/store backend: request ids are only unique per
    application, so the memo must not outlive or span apps.
    """

    __slots__ = ("_entries", "capacity", "hits", "misses")

    def __init__(self, capacity: int = 4096):
        self._entries: dict[tuple[str, int], tuple[tuple, bytes]] = {}
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    def core_bytes(self, entry: _RegisteredType, request: Any) -> bytes:
        key = (request.request_id, request.step)
        cached = self._entries.get(key)
        core = entry.get_core(request)
        if cached is not None and cached[0] == core:
            # Tuple equality short-circuits on element identity, so copies
            # built with dataclasses.replace compare in C at pointer speed.
            self.hits += 1
            return cached[1]
        self.misses += 1
        buf = bytearray()
        for item in core:
            _encode(item, buf, self)
        encoded = bytes(buf)
        if len(self._entries) >= self.capacity:
            self._entries.clear()
        self._entries[key] = (core, encoded)
        return encoded


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _encode_str(value: str, buf: bytearray) -> None:
    payload = value.encode("utf-8")
    size = len(payload)
    if size < 0x100:
        buf.append(_OP_STR8)
        buf.append(size)
    else:
        buf.append(_OP_STR32)
        buf += _S_U32.pack(size)
    buf += payload


def _encode_int(value: int, buf: bytearray) -> None:
    if _INT8_MIN <= value <= _INT8_MAX:
        buf.append(_OP_INT8)
        buf.append(value & 0xFF)
    elif _INT32_MIN <= value <= _INT32_MAX:
        buf.append(_OP_INT32)
        buf += _S_INT32.pack(value)
    elif _INT64_MIN <= value <= _INT64_MAX:
        buf.append(_OP_INT64)
        buf += _S_INT64.pack(value)
    else:
        payload = value.to_bytes(
            (value.bit_length() + 8) // 8, "little", signed=True
        )
        buf.append(_OP_INTBIG)
        buf += _S_U32.pack(len(payload))
        buf += payload


def _encode(value: Any, buf: bytearray, cache: FrameCache | None) -> None:
    if value is None:
        buf.append(_OP_NONE)
        return
    kind = type(value)
    if kind is bool:
        buf.append(_OP_TRUE if value else _OP_FALSE)
        return
    if kind is str:
        payload = value.encode("utf-8")
        size = len(payload)
        if size < 0x100:
            buf.append(_OP_STR8)
            buf.append(size)
        else:
            buf.append(_OP_STR32)
            buf += _S_U32.pack(size)
        buf += payload
        return
    if kind is int:
        if _INT8_MIN <= value <= _INT8_MAX:
            buf.append(_OP_INT8)
            buf.append(value & 0xFF)
        else:
            _encode_int(value, buf)
        return
    if kind is float:
        buf.append(_OP_FLOAT)
        buf += _S_FLOAT.pack(value)
        return
    if kind is tuple:
        count = len(value)
        if count < 0x100:
            buf.append(_OP_TUPLE8)
            buf.append(count)
        else:
            buf.append(_OP_TUPLE32)
            buf += _S_U32.pack(count)
        for item in value:
            _encode(item, buf, cache)
        return
    if kind is list:
        buf.append(_OP_LIST)
        buf += _S_U32.pack(len(value))
        for item in value:
            _encode(item, buf, cache)
        return
    if kind is dict:
        for key in value:
            if type(key) is not str:
                _encode_map(value, buf, cache)
                return
        buf.append(_OP_DICTSTR)
        buf += _S_U32.pack(len(value))
        for key, item in value.items():
            _encode_str(key, buf)
            _encode(item, buf, cache)
        return
    if kind is set or kind is frozenset:
        buf.append(_OP_SET if kind is set else _OP_FROZENSET)
        buf += _S_U32.pack(len(value))
        # Deterministic frames: members sort by their encoded bytes, which
        # is total, hash-seed-independent, and needs no comparable types.
        members = []
        for item in value:
            member = bytearray()
            _encode(item, member, cache)
            members.append(bytes(member))
        members.sort()
        for member in members:
            buf += member
        return
    entry = _TABLE_BY_TYPE.get(kind)
    if entry is not None:
        type_id = entry.type_id
        if type_id == ACTORREF_TYPE_ID:
            buf.append(_OP_ACTORREF)
            _encode_str(value.type, buf)
            _encode_str(value.id, buf)
            return
        if type_id == REQUEST_TYPE_ID:
            buf.append(_OP_REQUEST)
            if cache is not None:
                buf += cache.core_bytes(entry, value)
            else:
                for item in entry.get_core(value):
                    _encode(item, buf, cache)
            for item in entry.get_header(value):
                _encode(item, buf, cache)
            return
        if type_id == RESPONSE_TYPE_ID:
            buf.append(_OP_RESPONSE)
            for item in entry.get_fields(value):
                _encode(item, buf, cache)
            return
        buf.append(_OP_DATACLASS)
        buf += _S_U16.pack(type_id)
        for item in entry.get_fields(value):
            _encode(item, buf, cache)
        return
    _encode_slow(value, buf, cache)


def _encode_map(
    value: dict[Any, Any], buf: bytearray, cache: FrameCache | None
) -> None:
    buf.append(_OP_MAP)
    buf += _S_U32.pack(len(value))
    for key, item in value.items():
        _encode(key, buf, cache)
        _encode(item, buf, cache)


def _encode_slow(value: Any, buf: bytearray, cache: FrameCache | None) -> None:
    """Cold tail of the dispatch: subclasses, unregistered dataclasses,
    bytes, and the pickle fallback."""
    if isinstance(value, (bytes, bytearray)):
        buf.append(_OP_BYTES)
        buf += _S_U32.pack(len(value))
        buf += value
        return
    if is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        buf.append(_OP_DATACLASS_PATH)
        _encode_str(f"{cls.__module__}:{cls.__qualname__}", buf)
        names = tuple(f.name for f in dataclass_fields(value))
        if len(names) > 0xFF:
            raise FramingError(f"{cls!r} has too many fields to frame")
        buf.append(len(names))
        for name in names:
            _encode_str(name, buf)
            _encode(getattr(value, name), buf, cache)
        return
    if isinstance(value, (bool, int, float, str)):
        # Scalar subclasses take the base representation (same durability
        # contract as the JSON codec: types narrow to their wire shape).
        _encode(
            str(value)
            if isinstance(value, str)
            else float(value)
            if isinstance(value, float)
            else int(value),
            buf,
            cache,
        )
        return
    if isinstance(value, (list, tuple, dict, set, frozenset)):
        base: Any = (
            list(value)
            if isinstance(value, list)
            else tuple(value)
            if isinstance(value, tuple)
            else dict(value)
            if isinstance(value, dict)
            else set(value)
            if isinstance(value, set)
            else frozenset(value)
        )
        _encode(base, buf, cache)
        return
    try:
        payload = pickle.dumps(value)
    except Exception as error:  # noqa: BLE001 - report the offending value
        raise FramingError(
            f"value of type {type(value).__name__} is not durable: {error}"
        ) from error
    buf.append(_OP_PICKLE)
    buf += _S_U32.pack(len(payload))
    buf += payload


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def _take(data: bytes, start: int, end: int) -> bytes:
    """Slice with a length check: short slices mean a truncated frame."""
    if end > len(data):
        raise FramingError("truncated frame")
    return data[start:end]


def _decode_str(data: bytes, pos: int) -> tuple[str, int]:
    op = data[pos]
    if op == _OP_STR8:
        size = data[pos + 1]
        start = pos + 2
    elif op == _OP_STR32:
        size = _S_U32.unpack_from(data, pos + 1)[0]
        start = pos + 5
    else:
        raise FramingError(f"expected string opcode, found 0x{op:02x}")
    end = start + size
    if end > len(data):
        raise FramingError("truncated frame")
    return data[start:end].decode("utf-8"), end


def _decode_many(data: bytes, pos: int, count: int) -> tuple[list, int]:
    """Decode ``count`` consecutive values with the hot scalar opcodes
    inlined -- the per-field dispatch cost of frames (dataclass fields,
    container items, dict entries) without a function call per value."""
    values: list[Any] = []
    append = values.append
    total = len(data)
    for _ in range(count):
        op = data[pos]
        if op == _OP_STR8:
            size = data[pos + 1]
            start = pos + 2
            end = start + size
            if end > total:
                raise FramingError("truncated frame")
            append(data[start:end].decode("utf-8"))
            pos = end
        elif op == _OP_INT8:
            raw = data[pos + 1]
            append(raw - 0x100 if raw > _INT8_MAX else raw)
            pos += 2
        elif op == _OP_NONE:
            append(None)
            pos += 1
        elif op == _OP_TRUE:
            append(True)
            pos += 1
        elif op == _OP_FALSE:
            append(False)
            pos += 1
        elif op == _OP_FLOAT:
            append(_S_FLOAT.unpack_from(data, pos + 1)[0])
            pos += 9
        elif op == _OP_INT32:
            append(_S_INT32.unpack_from(data, pos + 1)[0])
            pos += 5
        elif op == _OP_TUPLE8:
            size = data[pos + 1]
            items, pos = _decode_many(data, pos + 2, size)
            append(tuple(items))
        elif op == _OP_ACTORREF:
            entry = _ACTORREF_ENTRY or _lookup_type_id(ACTORREF_TYPE_ID)
            strings, pos = _decode_many(data, pos + 1, 2)
            actor_type = strings[0]
            if type(actor_type) is not str:
                raise FramingError("malformed ActorRef frame")
            append(entry.cls(sys.intern(actor_type), strings[1]))
        else:
            value, pos = _decode(data, pos)
            append(value)
    return values, pos


def _decode(data: bytes, pos: int) -> tuple[Any, int]:
    # Scalars decode inline in _decode_many, so this function mostly sees
    # container and dataclass opcodes: they head the dispatch chain.
    op = data[pos]
    pos += 1
    if op == _OP_REQUEST:
        return _decode_request(data, pos)
    if op == _OP_TUPLE8:
        count = data[pos]
        items, pos = _decode_many(data, pos + 1, count)
        return tuple(items), pos
    if op == _OP_STR8:
        size = data[pos]
        end = pos + 1 + size
        if end > len(data):
            raise FramingError("truncated frame")
        return data[pos + 1 : end].decode("utf-8"), end
    if op == _OP_DICTSTR or op == _OP_MAP:
        count = _S_U32.unpack_from(data, pos)[0]
        # Keys and values interleave on the wire; decode them as one flat
        # run and pair them up in C.
        flat, pos = _decode_many(data, pos + 4, count * 2)
        pairs = iter(flat)
        return dict(zip(pairs, pairs)), pos
    if op == _OP_LIST:
        count = _S_U32.unpack_from(data, pos)[0]
        return _decode_many(data, pos + 4, count)
    if op == _OP_INT8:
        value = data[pos]
        return value - 0x100 if value > _INT8_MAX else value, pos + 1
    if op == _OP_NONE:
        return None, pos
    if op == _OP_TRUE:
        return True, pos
    if op == _OP_FALSE:
        return False, pos
    if op == _OP_FLOAT:
        return _S_FLOAT.unpack_from(data, pos)[0], pos + 8
    if op == _OP_INT32:
        return _S_INT32.unpack_from(data, pos)[0], pos + 4
    if op == _OP_INT64:
        return _S_INT64.unpack_from(data, pos)[0], pos + 8
    if op == _OP_RESPONSE:
        entry = _RESPONSE_ENTRY or _lookup_type_id(RESPONSE_TYPE_ID)
        values, pos = _decode_many(data, pos, len(entry.field_names))
        if type(values[0]) is str:
            values[0] = sys.intern(values[0])  # request_id
        return entry.cls(*values), pos
    if op == _OP_ACTORREF:
        entry = _ACTORREF_ENTRY or _lookup_type_id(ACTORREF_TYPE_ID)
        strings, pos = _decode_many(data, pos, 2)
        actor_type = strings[0]
        if type(actor_type) is not str:
            raise FramingError("malformed ActorRef frame")
        return entry.cls(sys.intern(actor_type), strings[1]), pos
    if op == _OP_STR32:
        size = _S_U32.unpack_from(data, pos)[0]
        end = pos + 4 + size
        return _take(data, pos + 4, end).decode("utf-8"), end
    if op == _OP_TUPLE32:
        count = _S_U32.unpack_from(data, pos)[0]
        items, pos = _decode_many(data, pos + 4, count)
        return tuple(items), pos
    if op == _OP_SET or op == _OP_FROZENSET:
        count = _S_U32.unpack_from(data, pos)[0]
        items, pos = _decode_many(data, pos + 4, count)
        return (set(items) if op == _OP_SET else frozenset(items)), pos
    if op == _OP_DATACLASS:
        type_id = _S_U16.unpack_from(data, pos)[0]
        entry = _lookup_type_id(type_id)
        values, pos = _decode_many(data, pos + 2, len(entry.field_names))
        return entry.cls(*values), pos
    if op == _OP_DATACLASS_PATH:
        path, pos = _decode_str(data, pos)
        count = data[pos]
        pos += 1
        cls = _resolve_type(path)
        decoded: dict[str, Any] = {}
        for _ in range(count):
            name, pos = _decode_str(data, pos)
            value, pos = _decode(data, pos)
            decoded[name] = value
        return cls(**decoded), pos
    if op == _OP_BYTES:
        size = _S_U32.unpack_from(data, pos)[0]
        end = pos + 4 + size
        return _take(data, pos + 4, end), end
    if op == _OP_INTBIG:
        size = _S_U32.unpack_from(data, pos)[0]
        end = pos + 4 + size
        return int.from_bytes(_take(data, pos + 4, end), "little", signed=True), end
    if op == _OP_PICKLE:
        size = _S_U32.unpack_from(data, pos)[0]
        end = pos + 4 + size
        return pickle.loads(_take(data, pos + 4, end)), end
    raise FramingError(f"unknown frame opcode 0x{op:02x}")


def _decode_request(data: bytes, pos: int) -> tuple[Any, int]:
    entry = _REQUEST_ENTRY or _lookup_type_id(REQUEST_TYPE_ID)
    wire, pos = _decode_many(data, pos, entry.wire_count)
    for index in entry.intern_core_indices:
        value = wire[index]
        if type(value) is str:
            wire[index] = sys.intern(value)
    return entry.cls(*entry.arg_order(wire)), pos


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def encode_value(value: Any, cache: FrameCache | None = None) -> bytes:
    """Binary value encoding alone (no frame header)."""
    buf = bytearray()
    _encode(value, buf, cache)
    return bytes(buf)


def decode_value(data: bytes, pos: int = 0) -> tuple[Any, int]:
    """Decode one binary value starting at ``pos``; returns (value, end)."""
    try:
        return _decode(data, pos)
    except (IndexError, struct.error) as error:
        raise FramingError(f"truncated binary frame: {error}") from error
    except UnicodeDecodeError as error:
        raise FramingError(f"malformed string in frame: {error}") from error


def dumps_frame(
    value: Any, codec: str = "binary", cache: FrameCache | None = None
) -> bytes:
    """Encode ``value`` as a self-describing frame (header + payload)."""
    if codec == "binary":
        buf = bytearray(_HEADER_BINARY)
        _encode(value, buf, cache)
        return bytes(buf)
    if codec == "json":
        return _HEADER_JSON + json.dumps(
            to_wire(value), separators=(",", ":")
        ).encode("utf-8")
    raise FramingError(f"unknown frame codec {codec!r}")


def loads_frame(data: "bytes | str") -> Any:
    """Decode a frame, dispatching on the version byte.

    Accepts every format a durable backend may hold: headered binary
    frames, headered JSON frames, and the legacy pre-framing encodings
    (raw tagged-JSON text, as ``str`` or utf-8 bytes).
    """
    if isinstance(data, str):
        return from_wire(json.loads(data))
    if data.startswith(MAGIC):
        version = data[3]
        if version == VERSION_BINARY:
            try:
                value, end = _decode(data, 4)
            except (IndexError, struct.error) as error:
                raise FramingError(
                    f"truncated binary frame: {error}"
                ) from error
            except UnicodeDecodeError as error:
                raise FramingError(
                    f"malformed string in frame: {error}"
                ) from error
            if end != len(data):
                raise FramingError(
                    f"trailing bytes after frame ({len(data) - end} unread)"
                )
            return value
        if version == VERSION_JSON:
            return from_wire(json.loads(data[4:].decode("utf-8")))
        raise FramingError(f"unknown frame version {version}")
    return from_wire(json.loads(data.decode("utf-8")))


#: Encoder selected by ``PersistenceConfig.codec``.
FRAME_ENCODERS: dict[str, Callable[..., bytes]] = {
    "binary": dumps_frame,
    "json": dumps_frame,
}
