"""Wire codec for durable persistence backends.

Durable backends (the SQLite store, the broker file journal) cannot hold
Python object references: everything they accept must survive a process
death and be reconstructed from bytes. This codec maps the values the
runtime actually persists -- envelopes (frozen dataclasses), actor refs,
tuples, dicts, JSON scalars -- onto a tagged JSON structure:

- scalars and lists pass through untouched;
- tuples, non-string-keyed dicts, and dataclasses are wrapped in a
  ``{"__kar__": kind, ...}`` marker object;
- dataclasses round-trip by import path (``module:qualname``), so decoding
  never needs a registry and the codec stays import-cycle-free;
- anything else falls back to a base64-wrapped pickle, keeping exotic
  application payloads durable at the cost of human readability.

The JSON-first encoding keeps journals greppable: one line per record, with
request ids, methods, and arguments in the clear.
"""

from __future__ import annotations

import base64
import importlib
import json
import pickle
from dataclasses import fields, is_dataclass
from typing import Any

__all__ = [
    "CodecError",
    "dumps",
    "from_wire",
    "loads",
    "stable_sorted_wire",
    "to_wire",
]

_TAG = "__kar__"


class CodecError(ValueError):
    """A value could not be encoded or decoded for durable storage."""


def to_wire(value: Any) -> Any:
    """Encode ``value`` into a JSON-serializable structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [to_wire(item) for item in value]
    if isinstance(value, tuple):
        return {_TAG: "tuple", "items": [to_wire(item) for item in value]}
    if isinstance(value, dict):
        # Hot path: str-keyed dicts pass through as plain JSON objects.
        # One O(1) hash probe rules out the tag collision, then a single
        # pass both encodes and detects non-str keys -- the old shape
        # (``all(isinstance(...))`` + ``_TAG not in value``) scanned every
        # key once before encoding scanned them all again.
        if _TAG not in value:
            encoded: dict[str, Any] = {}
            for key, item in value.items():
                if not isinstance(key, str):
                    break
                encoded[key] = to_wire(item)
            else:
                return encoded
        # A non-str key, or a user dict that *contains* the tag key: wrap
        # as an item-list map so decoding reconstructs the original dict
        # (including a literal "__kar__" entry) instead of misreading it
        # as a marker object.
        return {
            _TAG: "map",
            "items": [[to_wire(key), to_wire(item)] for key, item in value.items()],
        }
    if isinstance(value, (set, frozenset)):
        kind = "set" if isinstance(value, set) else "frozenset"
        return {_TAG: kind, "items": stable_sorted_wire(value)}
    if is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            _TAG: "dc",
            "type": f"{cls.__module__}:{cls.__qualname__}",
            "fields": {f.name: to_wire(getattr(value, f.name)) for f in fields(value)},
        }
    return _pickle_wire(value)


def from_wire(value: Any) -> Any:
    """Decode a structure produced by :func:`to_wire`."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [from_wire(item) for item in value]
    if isinstance(value, dict):
        kind = value.get(_TAG)
        if kind is None:
            return {key: from_wire(item) for key, item in value.items()}
        if kind == "tuple":
            return tuple(from_wire(item) for item in value["items"])
        if kind == "map":
            return {from_wire(key): from_wire(item) for key, item in value["items"]}
        if kind == "set":
            return {from_wire(item) for item in value["items"]}
        if kind == "frozenset":
            return frozenset(from_wire(item) for item in value["items"])
        if kind == "dc":
            cls = _resolve_type(value["type"])
            decoded = {name: from_wire(item) for name, item in value["fields"].items()}
            return cls(**decoded)
        if kind == "pickle":
            return pickle.loads(base64.b64decode(value["data"]))
        raise CodecError(f"unknown wire tag {kind!r}")
    raise CodecError(f"undecodable wire value of type {type(value).__name__}")


def dumps(value: Any) -> str:
    """Serialize ``value`` to a compact one-line JSON string."""
    return json.dumps(to_wire(value), separators=(",", ":"), sort_keys=False)


def loads(text: str) -> Any:
    """Inverse of :func:`dumps`."""
    return from_wire(json.loads(text))


def stable_sorted_wire(value: "set[Any] | frozenset[Any]") -> list[Any]:
    """Wire-encode a set's members in a hash-seed-independent order.

    Identical states must produce identical journal bytes (the codec
    equivalence tests compare encodings byte for byte), and Python's set
    iteration order depends on the per-process hash seed. Totally ordered
    member types sort directly; anything else -- mixed types, tuples of
    mixed types, frozensets (whose ``<`` is subset *partial* order, which
    ``sorted`` silently leaves seed-dependent) -- sorts by the canonical
    JSON rendering of each member's wire form.
    """
    items = list(value)
    if all(isinstance(item, str) for item in items) or all(
        isinstance(item, (int, float)) and not isinstance(item, bool)
        for item in items
    ):
        items.sort()
        return [to_wire(item) for item in items]
    wires = [to_wire(item) for item in items]
    wires.sort(key=_canonical_sort_key)
    return wires


def _canonical_sort_key(wire: Any) -> str:
    return json.dumps(wire, separators=(",", ":"), sort_keys=True)


def _pickle_wire(value: Any) -> dict[str, str]:
    try:
        payload = pickle.dumps(value)
    except Exception as error:  # noqa: BLE001 - report the offending value
        raise CodecError(
            f"value of type {type(value).__name__} is not durable: {error}"
        ) from error
    return {_TAG: "pickle", "data": base64.b64encode(payload).decode("ascii")}


def _resolve_type(path: str) -> type:
    module_name, _, qualname = path.partition(":")
    try:
        target: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError) as error:
        raise CodecError(f"cannot resolve durable type {path!r}") from error
    return target
