"""Topics, partitions, append-only logs, bulk expiry, and producer fencing.

One topic per application, one partition per application component
(Section 4.1: "KAR's implementation allocates a dedicated message queue for
each application component"). Partitions only support appending at the end;
completed requests are left in place and later expired in bulk.

Every partition mutation is mirrored into a pluggable
:class:`~repro.mq.log.BrokerLog` (appends per produce round trip, prefix
trims on retention expiry, drops on queue discard), and
:meth:`Broker.restore_from_log` rebuilds topics and partitions from that
log -- the journal-replay half of the paper's cold-restart recovery story.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.mq.errors import FencedMemberError, MQError, StaleLeaseError
from repro.mq.log import BrokerLog, MemoryBrokerLog
from repro.mq.records import Record
from repro.sim import Kernel, Latency

__all__ = ["Broker", "BrokerConfig", "Partition", "Topic"]


@dataclass(frozen=True)
class BrokerConfig:
    """Timing and retention parameters.

    ``produce_latency`` models the full produce round trip including
    replication acks (this is what separates ClusterDev from ClusterProd in
    Table 2); ``consume_latency`` models the fetch path. Retention follows
    Section 4.1: expiry after a configurable delay or above a configurable
    queue size (defaults: ten minutes, unbounded size).
    """

    produce_latency: Latency = Latency.fixed(0.001)
    consume_latency: Latency = Latency.fixed(0.0005)
    retention_seconds: float = 600.0
    retention_max_records: int | None = None
    heartbeat_interval: float = 3.0
    session_timeout: float = 10.0
    watchdog_interval: float = 0.5
    rebalance_join_window: float = 2.2
    rebalance_sync_latency: Latency = field(
        default_factory=lambda: Latency.around(0.25, 0.2)
    )


class Partition:
    """An append-only log with offsets and lazy bulk expiry."""

    def __init__(self, topic: "Topic", name: str):
        self.topic = topic
        self.name = name
        self._records: list[Record] = []
        self._next_offset = 0
        self.first_retained_offset = 0

    def append(self, value: Any, timestamp: float) -> Record:
        # Log-append-time is monotonic per partition (as in Kafka): after a
        # cold replay onto a younger clock, new appends may not be stamped
        # below the replayed suffix, or the append-order-implies-timestamp-
        # order invariant (which snapshot_unexpired's k-way merge relies
        # on) would break.
        if self._records:
            timestamp = max(timestamp, self._records[-1].timestamp)
        record = Record(self.name, self._next_offset, timestamp, value)
        self._next_offset += 1
        self._records.append(record)
        return record

    @property
    def end_offset(self) -> int:
        return self._next_offset

    def restore(
        self, records: list[Record], first_retained: int, next_offset: int
    ) -> None:
        """Adopt a replayed image (offset-indexed) from a broker log."""
        self._records = list(records)
        self.first_retained_offset = first_retained
        self._next_offset = next_offset

    def expire(self, now: float) -> int:
        """Drop records older than retention; returns how many were dropped."""
        config = self.topic.broker.config
        cutoff = now - config.retention_seconds
        keep_from = 0
        while keep_from < len(self._records) and (
            self._records[keep_from].timestamp < cutoff
        ):
            keep_from += 1
        if config.retention_max_records is not None:
            overflow = len(self._records) - keep_from - config.retention_max_records
            if overflow > 0:
                keep_from += overflow
        if keep_from:
            self.first_retained_offset = self._records[keep_from - 1].offset + 1
            del self._records[:keep_from]
            self.topic.broker.log.compact(
                self.topic.name, self.name, self.first_retained_offset
            )
        return keep_from

    def read_from(
        self, offset: int, now: float, limit: int | None = None
    ) -> list[Record]:
        """Records at offsets >= ``offset`` that are still retained."""
        self.expire(now)
        start = max(offset, self.first_retained_offset)
        skip = start - self.first_retained_offset
        records = self._records[skip:]
        if limit is not None:
            records = records[:limit]
        return list(records)

    def unexpired(self, now: float) -> list[Record]:
        self.expire(now)
        return list(self._records)

    def snapshot(self) -> list[Record]:
        """All retained records *without* triggering retention expiry.

        The dead-letter parking lot reads through this: parked envelopes
        must outlive the retention window of ordinary traffic, so nothing
        on the parking-lot read path may start an expiry sweep.
        """
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


class Topic:
    """A named topic whose partitions are created on demand, one per member."""

    def __init__(self, broker: "Broker", name: str):
        self.broker = broker
        self.name = name
        self.partitions: dict[str, Partition] = {}

    def partition(self, name: str) -> Partition:
        partition = self.partitions.get(name)
        if partition is None:
            partition = Partition(self, name)
            self.partitions[name] = partition
        return partition

    def drop_partition(self, name: str) -> None:
        """Discard a failed component's queue after reconciliation (§4.3)."""
        if self.partitions.pop(name, None) is not None:
            self.broker.log.drop_partition(self.name, name)

    def snapshot_unexpired(self, now: float) -> list[Record]:
        """All retained records across partitions -- the reconciliation
        leader's catalog of unexpired messages (Section 4.3).

        Each partition is append-ordered by timestamp already, so a k-way
        merge produces the global order without re-sorting the whole
        backlog (the backlog is the reconciliation-leader cost driver).
        """
        def key(record: Record) -> tuple[float, str, int]:
            return (record.timestamp, record.partition, record.offset)

        streams = [partition.unexpired(now) for partition in self.partitions.values()]
        return list(heapq.merge(*streams, key=key))


class Broker:
    """The message service; survives application failures by assumption."""

    def __init__(
        self,
        kernel: Kernel,
        config: BrokerConfig | None = None,
        log: BrokerLog | None = None,
    ):
        self.kernel = kernel
        self.config = config or BrokerConfig()
        self.log = log if log is not None else MemoryBrokerLog()
        self.topics: dict[str, Topic] = {}
        self._fenced: set[str] = set()
        #: Per-partition-family ownership: (topic, base name) -> (owner
        #: member id, epoch). See :meth:`acquire_partition_lease`.
        self._leases: dict[tuple[str, str], tuple[str, int]] = {}
        #: Last renewal stamp per leased partition family. Session state,
        #: not journaled: liveness evidence for the control plane's wedge
        #: detector, while ownership itself stays in the durable lease.
        self._lease_renewed: dict[tuple[str, str], float] = {}
        self._append_waiters: dict[tuple[str, str], list] = {}
        #: Produce round trips (one per produce / produce_batch call).
        self.produce_count = 0
        #: Records appended, across all produce paths.
        self.produce_record_count = 0
        self.consume_count = 0
        #: Records adopted from the log by :meth:`restore_from_log`.
        self.restored_record_count = 0

    def topic(self, name: str) -> Topic:
        topic = self.topics.get(name)
        if topic is None:
            topic = Topic(self, name)
            self.topics[name] = topic
        return topic

    def restore_from_log(self) -> int:
        """Rebuild topics and partitions from the log's retained image.

        Called once on a freshly constructed broker (cold restart): every
        partition comes back with its exact offsets, so consumers, dedup by
        (request id, step), and retention expiry continue seamlessly.
        Returns the number of records adopted.
        """
        restored = 0
        for entry in self.log.replay():
            topic_name, partition_name, first, next_offset, records = entry
            partition = self.topic(topic_name).partition(partition_name)
            partition.restore(records, first, next_offset)
            restored += len(records)
        self.restored_record_count += restored
        for key, value in self.log.meta_items().items():
            if key.startswith("lease:"):
                lease_topic, base, owner, epoch = value
                self._leases[(lease_topic, base)] = (owner, int(epoch))
                # A cold restart stamps every restored lease as freshly
                # renewed: the new holders have not had a chance to renew
                # yet, and expiring them at boot would thrash.
                self._lease_renewed[(lease_topic, base)] = self.kernel.now
        return restored

    # ------------------------------------------------------------------
    # partition ownership leases (cross-worker handoff fencing)
    # ------------------------------------------------------------------
    def acquire_partition_lease(
        self, topic_name: str, base: str, owner: str, epoch: int
    ) -> None:
        """Claim ownership of the ``base`` partition family at ``epoch``.

        A component incarnation ``base#epoch`` must hold the lease before
        consuming its queue. Acquiring at a strictly higher epoch fences the
        previous holder (its member id can no longer produce or fetch, and
        any batch it has in flight is rejected whole); acquiring at an equal
        or lower epoch raises :class:`StaleLeaseError` -- the acquirer lost
        the handoff race and must terminate. Leases are durable: they are
        mirrored into the broker log's metadata and restored on cold
        restart, so a stale incarnation cannot sneak back in across a
        process death.
        """
        current = self._leases.get((topic_name, base))
        if current is not None:
            held_owner, held_epoch = current
            if epoch <= held_epoch:
                raise StaleLeaseError(
                    f"lease for {base!r} held by {held_owner!r} at epoch "
                    f"{held_epoch}; cannot acquire at epoch {epoch}"
                )
            self.fence(held_owner)
        self._leases[(topic_name, base)] = (owner, epoch)
        self._lease_renewed[(topic_name, base)] = self.kernel.now
        self.log.set_meta(
            f"lease:{topic_name}:{base}", [topic_name, base, owner, epoch]
        )

    def renew_partition_lease(
        self, topic_name: str, base: str, owner: str, epoch: int
    ) -> None:
        """Refresh the lease's liveness stamp (the TTL heartbeat).

        Only the current holder may renew; a superseded incarnation gets
        :class:`StaleLeaseError` and must terminate. Renewal is session
        state, not an ownership change, so it is never journaled -- a
        restarted broker stamps restored leases as renewed at boot.
        """
        current = self._leases.get((topic_name, base))
        if current != (owner, epoch):
            raise StaleLeaseError(
                f"{owner!r} cannot renew lease for {base!r} at epoch "
                f"{epoch}; lease is {current!r}"
            )
        self._lease_renewed[(topic_name, base)] = self.kernel.now

    def lease_renewal_age(
        self, topic_name: str, base: str, now: float
    ) -> float | None:
        """Seconds since the ``base`` lease was last renewed (``None`` if
        the family holds no lease)."""
        renewed = self._lease_renewed.get((topic_name, base))
        if renewed is None:
            return None
        return now - renewed

    def partition_lease(self, topic_name: str, base: str) -> tuple[str, int] | None:
        return self._leases.get((topic_name, base))

    def _check_lease(self, topic_name: str, client_id: str) -> None:
        """Reject a client acting under a superseded partition lease.

        Identities are ``base#epoch``; anything else (external clients,
        pre-lease identities) passes. The check complements the fence set:
        it also catches a stale incarnation after a cold restart, when the
        in-memory fence set is empty but the durable lease survived.
        """
        base, sep, epoch_text = client_id.rpartition("#")
        if not sep or not epoch_text.isdigit():
            return
        lease = self._leases.get((topic_name, base))
        if lease is not None and int(epoch_text) < lease[1]:
            raise StaleLeaseError(
                f"{client_id!r} superseded by {lease[0]!r} at epoch {lease[1]}"
            )

    # ------------------------------------------------------------------
    # fencing (forceful disconnection)
    # ------------------------------------------------------------------
    def fence(self, client_id: str) -> None:
        self._fenced.add(client_id)

    def unfence(self, client_id: str) -> None:
        self._fenced.discard(client_id)

    def is_fenced(self, client_id: str) -> bool:
        return client_id in self._fenced

    # ------------------------------------------------------------------
    # produce / consume primitives
    # ------------------------------------------------------------------
    def _journal_append(self, topic_name: str, records: list[Record]) -> None:
        """Mirror freshly appended records into the log.

        If the log refuses the batch (an unencodable payload on a durable
        backend), the partition appends are rolled back before the error
        propagates: the producer sees a failed send and nothing -- neither
        the in-memory broker nor the journal -- retains the records.
        """
        try:
            self.log.append_many(topic_name, records)
        except Exception:
            topic = self.topic(topic_name)
            for record in reversed(records):
                partition = topic.partition(record.partition)
                if partition._records and partition._records[-1] is record:
                    partition._records.pop()
                    partition._next_offset = record.offset
            self.produce_record_count -= len(records)
            raise

    async def produce(
        self,
        topic_name: str,
        partition_name: str,
        value: Any,
        client_id: str,
        guard=None,
    ) -> Record:
        """Append a message; the await covers the full produce round trip
        (network + replication acks), so a returned record is durable.

        ``guard``, if given, is evaluated atomically at append time; a falsy
        result raises :class:`MQError` (typically wrapped by the caller as a
        stale route) and nothing is appended.
        """
        await self.kernel.sleep(self.config.produce_latency.sample(self.kernel.rng))
        if client_id in self._fenced:
            raise FencedMemberError(client_id)
        self._check_lease(topic_name, client_id)
        if guard is not None and not guard():
            raise MQError(f"append guard rejected {partition_name!r}")
        self.produce_count += 1
        self.produce_record_count += 1
        partition = self.topic(topic_name).partition(partition_name)
        record = partition.append(value, self.kernel.now)
        self._journal_append(topic_name, [record])
        self._wake_append_waiters(topic_name, partition_name)
        return record

    async def produce_batch(
        self,
        topic_name: str,
        entries: list[tuple[str, Any]],
        client_id: str,
        guards: dict[str, Any] | None = None,
    ) -> list[Record | MQError]:
        """Append several messages across partitions in ONE produce round
        trip, with per-entry outcomes.

        ``entries`` is a list of ``(partition_name, value)``; ``guards``
        optionally maps a partition name to a zero-argument callable
        evaluated atomically at append time (once per distinct partition).
        The returned list is aligned with ``entries``: a :class:`Record`
        for each appended message, or an :class:`MQError` for entries whose
        partition guard rejected (those appended nothing; the rest of the
        batch still lands). A fenced producer rejects the whole batch --
        nothing is appended.
        """
        if not entries:
            return []
        await self.kernel.sleep(self.config.produce_latency.sample(self.kernel.rng))
        if client_id in self._fenced:
            raise FencedMemberError(client_id)
        # A stale-epoch producer rejects the whole batch, exactly like a
        # fenced one: the lease moved on, so none of its appends may land.
        self._check_lease(topic_name, client_id)
        self.produce_count += 1
        verdicts: dict[str, bool] = {}
        outcomes: list[Record | MQError] = []
        appended: set[str] = set()
        batch_records: list[Record] = []
        topic = self.topic(topic_name)
        for partition_name, value in entries:
            allowed = verdicts.get(partition_name)
            if allowed is None:
                guard = None if guards is None else guards.get(partition_name)
                allowed = guard is None or bool(guard())
                verdicts[partition_name] = allowed
            if not allowed:
                outcomes.append(MQError(f"append guard rejected {partition_name!r}"))
                continue
            self.produce_record_count += 1
            record = topic.partition(partition_name).append(value, self.kernel.now)
            outcomes.append(record)
            batch_records.append(record)
            appended.add(partition_name)
        if batch_records:
            # One journal write covers the whole produce round trip.
            self._journal_append(topic_name, batch_records)
        for partition_name in appended:
            self._wake_append_waiters(topic_name, partition_name)
        return outcomes

    def produce_internal_batch(
        self, topic_name: str, entries: list[tuple[str, Any]]
    ) -> list[Record]:
        """Zero-latency batched append for broker-side copies: the whole
        batch is journaled (and, on durable logs, flushed) in one write,
        so recovery I/O does not scale per stranded request."""
        self.produce_count += 1
        topic = self.topic(topic_name)
        records = []
        for partition_name, value in entries:
            self.produce_record_count += 1
            records.append(
                topic.partition(partition_name).append(value, self.kernel.now)
            )
        if records:
            self._journal_append(topic_name, records)
        for partition_name in {partition for partition, _value in entries}:
            self._wake_append_waiters(topic_name, partition_name)
        return records

    async def produce_transaction(
        self,
        topic_name: str,
        entries: list[tuple[str, Any]],
        client_id: str,
        guard=None,
    ) -> list[Record]:
        """Atomically append several messages (a Kafka transaction, KIP-98).

        Used by the completion-log mode of Section 4.3's future-work
        alternative: one transaction both answers the caller and logs the
        completion in the callee's own queue. Either all entries land or
        none do; one produce round trip is charged.
        """
        await self.kernel.sleep(self.config.produce_latency.sample(self.kernel.rng))
        if client_id in self._fenced:
            raise FencedMemberError(client_id)
        self._check_lease(topic_name, client_id)
        if guard is not None and not guard():
            raise MQError("append guard rejected transaction")
        records = []
        for partition_name, value in entries:
            self.produce_count += 1
            self.produce_record_count += 1
            partition = self.topic(topic_name).partition(partition_name)
            records.append(partition.append(value, self.kernel.now))
        if records:
            self._journal_append(topic_name, records)
        for partition_name, _value in entries:
            self._wake_append_waiters(topic_name, partition_name)
        return records

    def wait_for_append(self, topic_name: str, partition_name: str):
        """Future resolved at the next append to the given partition."""
        waiter = self.kernel.create_future()
        self._append_waiters.setdefault((topic_name, partition_name), []).append(waiter)
        return waiter

    def _wake_append_waiters(self, topic_name: str, partition_name: str) -> None:
        waiters = self._append_waiters.pop((topic_name, partition_name), [])
        for waiter in waiters:
            waiter.set_result(None)

    async def fetch(
        self,
        topic_name: str,
        partition_name: str,
        offset: int,
        client_id: str,
        limit: int | None = None,
    ) -> list[Record]:
        await self.kernel.sleep(self.config.consume_latency.sample(self.kernel.rng))
        if client_id in self._fenced:
            raise FencedMemberError(client_id)
        self._check_lease(topic_name, client_id)
        self.consume_count += 1
        partition = self.topic(topic_name).partition(partition_name)
        return partition.read_from(offset, self.kernel.now, limit)

    def validate_partition_exists(self, topic_name: str, partition_name: str) -> None:
        if partition_name not in self.topic(topic_name).partitions:
            raise MQError(f"unknown partition {partition_name!r} in {topic_name!r}")


def total_backlog(topics: Iterable[Topic], now: float) -> int:
    """Total unexpired records across topics (reconciliation cost driver)."""
    return sum(len(topic.snapshot_unexpired(now)) for topic in topics)
