"""Consumer groups: heartbeats, detection, consensus (rebalance), fencing.

This module implements the failure-detection machinery of Section 4.2/4.3:

- every member heartbeats the coordinator; a member whose heartbeats stop for
  ``session_timeout`` seconds (default 10 s, Kafka's recommended grace period)
  is evicted and *fenced* -- it can no longer produce or consume;
- any membership change triggers a rebalance: the group pauses message flow,
  waits a join window for membership to stabilize, then a sync barrier
  establishes a new *generation* with a deterministic leader (the paper's
  *consensus* phase);
- the group stays paused until the application layer (KAR's reconciliation,
  run by the leader) calls :meth:`GroupCoordinator.resume` for that
  generation. A failure during reconciliation simply yields a newer
  generation whose leader restarts reconciliation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.mq.broker import Broker
from repro.mq.errors import FencedMemberError, MQError, StaleRouteError
from repro.mq.records import Record
from repro.sim import Kernel, SimFuture, SimProcess

__all__ = ["GenerationInfo", "GenerationRecord", "GroupCoordinator", "GroupMember"]


@dataclass(frozen=True)
class GenerationInfo:
    """The outcome of one rebalance, delivered to generation listeners."""

    generation: int
    members: tuple[str, ...]
    leader: str | None
    failed: tuple[str, ...]
    joined: tuple[str, ...]
    reason: str
    triggered_at: float
    completed_at: float


@dataclass
class GenerationRecord:
    """History entry used by the benchmark harness to split outage phases."""

    generation: int
    reason: str
    failed: tuple[str, ...]
    joined: tuple[str, ...]
    triggered_at: float
    completed_at: float
    resumed_at: float | None = None


@dataclass
class _MemberState:
    member_id: str
    process: SimProcess | None
    last_heartbeat: float
    member: "GroupMember"


class GroupCoordinator:
    """Broker-side group state machine (never fails, like the broker)."""

    def __init__(self, broker: Broker, group_id: str, topic_name: str):
        self.broker = broker
        self.kernel: Kernel = broker.kernel
        self.group_id = group_id
        self.topic_name = topic_name
        self.members: dict[str, _MemberState] = {}
        # Generations survive the application: a coordinator rebuilt over a
        # durable broker log resumes numbering where the old group stopped,
        # so recovery-copy epochs stay monotonic across cold restarts.
        self.generation = int(broker.log.get_meta(f"group:{group_id}:generation") or 0)
        self.paused = False
        self._closed = False
        self.history: list[GenerationRecord] = []
        self._generation_listeners: list[Callable[[GenerationInfo], None]] = []
        self._resume_waiters: list[SimFuture] = []
        self._last_membership: set[str] = set()
        self._rebalancing = False
        self._dirty = False
        self._trigger_time: float | None = None
        self._reasons: list[str] = []
        self._watchdog_started = False

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the watchdog and refuse new members (application shutdown).

        The group object is being discarded together with the rest of the
        application's in-memory state; a reopened application builds a new
        coordinator over the same broker log.
        """
        self._closed = True

    def join(self, member_id: str, process: SimProcess | None = None) -> "GroupMember":
        """Add a member; starts its heartbeat task and triggers a rebalance."""
        if self._closed:
            raise MQError(f"group {self.group_id!r} coordinator is closed")
        if member_id in self.members:
            raise ValueError(f"duplicate member id {member_id!r}")
        if self.broker.is_fenced(member_id):
            raise FencedMemberError(member_id)
        member = GroupMember(self, member_id, process)
        self.members[member_id] = _MemberState(
            member_id, process, self.kernel.now, member
        )
        self._ensure_watchdog()
        self.kernel.spawn(
            self._heartbeat_loop(member_id),
            process=process,
            name=f"heartbeat:{member_id}",
        )
        self._request_rebalance("join")
        return member

    def leave(self, member_id: str) -> None:
        """Graceful departure (still fences, still triggers a rebalance)."""
        if member_id in self.members:
            self._evict(member_id, reason="leave")

    def heartbeat(self, member_id: str) -> None:
        state = self.members.get(member_id)
        if state is not None:
            state.last_heartbeat = self.kernel.now

    def on_generation(self, listener: Callable[[GenerationInfo], None]) -> None:
        self._generation_listeners.append(listener)

    @property
    def live_members(self) -> tuple[str, ...]:
        return tuple(sorted(self.members))

    @property
    def leader(self) -> str | None:
        ordered = self.live_members
        return ordered[0] if ordered else None

    # ------------------------------------------------------------------
    # heartbeats and the eviction watchdog
    # ------------------------------------------------------------------
    async def _heartbeat_loop(self, member_id: str) -> None:
        interval = self.broker.config.heartbeat_interval
        while member_id in self.members:
            self.heartbeat(member_id)
            await self.kernel.sleep(interval)

    def _ensure_watchdog(self) -> None:
        if self._watchdog_started:
            return
        self._watchdog_started = True
        self.kernel.spawn(self._watchdog_loop(), name=f"watchdog:{self.group_id}")

    async def _watchdog_loop(self) -> None:
        config = self.broker.config
        while not self._closed:
            await self.kernel.sleep(config.watchdog_interval)
            if self._closed:
                return
            now = self.kernel.now
            expired = [
                state.member_id
                for state in self.members.values()
                if now - state.last_heartbeat > config.session_timeout
            ]
            for member_id in expired:
                self._evict(member_id, reason="failure")

    def _evict(self, member_id: str, reason: str) -> None:
        """Remove and fence a member, then trigger the consensus phase."""
        self.members.pop(member_id, None)
        self.broker.fence(member_id)
        self._request_rebalance(reason)

    # ------------------------------------------------------------------
    # rebalance (the paper's consensus phase)
    # ------------------------------------------------------------------
    def _request_rebalance(self, reason: str) -> None:
        self._pause()
        self._reasons.append(reason)
        if self._rebalancing:
            self._dirty = True
            return
        self._rebalancing = True
        self._trigger_time = self.kernel.now
        self.kernel.spawn(self._rebalance(), name=f"rebalance:{self.group_id}")

    async def _rebalance(self) -> None:
        config = self.broker.config
        while True:
            self._dirty = False
            await self.kernel.sleep(config.rebalance_join_window)
            await self.kernel.sleep(
                config.rebalance_sync_latency.sample(self.kernel.rng)
            )
            if not self._dirty:
                break
        if self._closed:
            return
        self.generation += 1
        self.broker.log.set_meta(f"group:{self.group_id}:generation", self.generation)
        current = set(self.members)
        failed = tuple(sorted(self._last_membership - current))
        joined = tuple(sorted(current - self._last_membership))
        self._last_membership = current
        if "failure" in self._reasons:
            reason = "failure"
        else:
            reason = self._reasons[0] if self._reasons else "join"
        if self._trigger_time is not None:
            triggered_at = self._trigger_time
        else:
            triggered_at = self.kernel.now
        info = GenerationInfo(
            generation=self.generation,
            members=self.live_members,
            leader=self.leader,
            failed=failed,
            joined=joined,
            reason=reason,
            triggered_at=triggered_at,
            completed_at=self.kernel.now,
        )
        self.history.append(
            GenerationRecord(
                generation=info.generation,
                reason=info.reason,
                failed=info.failed,
                joined=info.joined,
                triggered_at=info.triggered_at,
                completed_at=info.completed_at,
            )
        )
        self._rebalancing = False
        self._reasons = []
        self._trigger_time = None
        if not self.members:
            # Empty group: nothing can reconcile; resume so future joiners
            # start from a clean pause state.
            self.resume(self.generation)
        for listener in list(self._generation_listeners):
            listener(info)

    # ------------------------------------------------------------------
    # pause gate
    # ------------------------------------------------------------------
    def _pause(self) -> None:
        self.paused = True

    def resume(self, generation: int) -> None:
        """Lift the pause for ``generation``; stale resumes are ignored.

        Called by the reconciliation leader once recovery completes. If a new
        failure arrived meanwhile, ``generation`` is stale and the newer
        generation's leader is responsible for resuming.
        """
        if generation != self.generation or self._rebalancing:
            return
        if not self.paused:
            return
        self.paused = False
        for record in reversed(self.history):
            if record.generation == generation:
                record.resumed_at = self.kernel.now
                break
        waiters, self._resume_waiters = self._resume_waiters, []
        for waiter in waiters:
            waiter.set_result(None)

    async def wait_unpaused(self) -> None:
        while self.paused:
            waiter = self.kernel.create_future()
            self._resume_waiters.append(waiter)
            await waiter


class GroupMember:
    """A member handle: send to any partition, poll your own partition.

    Sends and polls respect the group pause ("all components temporarily
    stop sending and receiving messages", Section 4.3) and raise
    :class:`FencedMemberError` once the member is evicted.
    """

    def __init__(
        self,
        coordinator: GroupCoordinator,
        member_id: str,
        process: SimProcess | None,
    ):
        self.coordinator = coordinator
        self.member_id = member_id
        self.process = process
        self.position = 0

    @property
    def broker(self) -> Broker:
        return self.coordinator.broker

    @property
    def topic_name(self) -> str:
        return self.coordinator.topic_name

    def _check_fenced(self) -> None:
        if self.broker.is_fenced(self.member_id):
            raise FencedMemberError(self.member_id)

    async def send(self, partition_name: str, value: Any) -> Record:
        """Durably append ``value`` to another member's queue.

        Raises :class:`StaleRouteError` if the target member left the group
        while the send was in flight (its queue is being reconciled); the
        sender must re-resolve the destination and retry. The check happens
        at append time, so a raised send appended nothing.
        """
        await self.coordinator.wait_unpaused()
        self._check_fenced()
        try:
            return await self.broker.produce(
                self.topic_name,
                partition_name,
                value,
                self.member_id,
                guard=lambda: partition_name in self.coordinator.members,
            )
        except FencedMemberError:
            raise
        except MQError:
            raise StaleRouteError(partition_name) from None

    async def send_batch(
        self, entries: list[tuple[str, Any]]
    ) -> list[Record | StaleRouteError]:
        """Durably append a batch of messages in one produce round trip.

        ``entries`` is a list of ``(partition_name, value)``. The returned
        list is aligned with ``entries``: the appended :class:`Record` on
        success, or a :class:`StaleRouteError` for entries whose target
        member left the group while the send was in flight (those appended
        nothing and must be re-routed individually -- the rest of the batch
        still landed). Guards are evaluated at append time, per partition.
        A fenced sender raises :class:`FencedMemberError` for the whole
        batch; nothing is appended.
        """
        await self.coordinator.wait_unpaused()
        self._check_fenced()
        guards = {
            partition: (lambda p=partition: p in self.coordinator.members)
            for partition, _value in entries
        }
        outcomes = await self.broker.produce_batch(
            self.topic_name, entries, self.member_id, guards
        )
        return [
            StaleRouteError(entries[index][0])
            if isinstance(outcome, MQError)
            else outcome
            for index, outcome in enumerate(outcomes)
        ]

    async def send_transaction(self, entries: list[tuple[str, Any]]) -> list[Record]:
        """Atomically append to several queues (see produce_transaction)."""
        await self.coordinator.wait_unpaused()
        self._check_fenced()
        try:
            return await self.broker.produce_transaction(
                self.topic_name,
                entries,
                self.member_id,
                guard=lambda: all(
                    partition in self.coordinator.members
                    or partition == self.member_id
                    for partition, _value in entries
                ),
            )
        except FencedMemberError:
            raise
        except MQError:
            raise StaleRouteError([p for p, _ in entries]) from None

    async def poll(self, max_records: int | None = None) -> list[Record]:
        """Block until records are available on this member's own queue."""
        while True:
            await self.coordinator.wait_unpaused()
            self._check_fenced()
            records = await self.broker.fetch(
                self.topic_name,
                self.member_id,
                self.position,
                self.member_id,
                max_records,
            )
            if records:
                self.position = records[-1].offset + 1
                return records
            waiter = self.broker.wait_for_append(self.topic_name, self.member_id)
            await waiter
