"""Consumer groups: heartbeats, detection, consensus (rebalance), fencing.

This module implements the failure-detection machinery of Section 4.2/4.3:

- every member heartbeats the coordinator; a member whose heartbeats stop for
  ``session_timeout`` seconds (default 10 s, Kafka's recommended grace period)
  is evicted and *fenced* -- it can no longer produce or consume;
- any membership change triggers a rebalance: the group pauses message flow,
  waits a join window for membership to stabilize, then a sync barrier
  establishes a new *generation* with a deterministic leader (the paper's
  *consensus* phase);
- the group stays paused until the application layer (KAR's reconciliation,
  run by the leader) calls :meth:`GroupCoordinator.resume` for that
  generation. A failure during reconciliation simply yields a newer
  generation whose leader restarts reconciliation.

Scale-out: the authoritative group state -- membership set, generation
counter, pause flag, and the latest :class:`GenerationInfo` -- lives in a
:class:`GroupState` over a shared :class:`~repro.kvstore.backend.StoreBackend`
rather than in any one Python object. Each worker event loop holds its own
:class:`GroupCoordinator` *view* onto that state: views race generation
bumps with a compare-and-swap (the loser adopts the winner's outcome) and
observe foreign generations by polling the store from their watchdog, so
workers on different loops agree without sharing in-process callbacks. A
coordinator constructed without an explicit state (the single-loop legacy
path, and the unit tests) gets a private in-memory backend and behaves
exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.kvstore.backend import MemoryStoreBackend, StoreBackend
from repro.mq.broker import Broker
from repro.mq.errors import FencedMemberError, MQError, StaleRouteError
from repro.mq.log import BrokerLog
from repro.mq.records import Record
from repro.sim import Kernel, SimFuture, SimProcess

__all__ = [
    "GenerationInfo",
    "GenerationRecord",
    "GroupCoordinator",
    "GroupMember",
    "GroupState",
]


@dataclass(frozen=True)
class GenerationInfo:
    """The outcome of one rebalance, delivered to generation listeners."""

    generation: int
    members: tuple[str, ...]
    leader: str | None
    failed: tuple[str, ...]
    joined: tuple[str, ...]
    reason: str
    triggered_at: float
    completed_at: float


@dataclass
class GenerationRecord:
    """History entry used by the benchmark harness to split outage phases."""

    generation: int
    reason: str
    failed: tuple[str, ...]
    joined: tuple[str, ...]
    triggered_at: float
    completed_at: float
    resumed_at: float | None = None


@dataclass
class _MemberState:
    member_id: str
    process: SimProcess | None
    last_heartbeat: float
    member: "GroupMember"


class GroupState:
    """Durable group state shared by every coordinator view.

    Keys live under ``_group:{group_id}:`` in a store backend. Membership
    and the pause flag are *session* state -- they describe the running
    processes, so a fresh boot wipes them (a cold restart must never
    resurrect ghost members). The generation counter is *durable* state:
    it is mirrored into the broker log's metadata (the historical carrier)
    and restored from there, so recovery-copy epochs stay monotonic across
    cold restarts even when the store backend itself was wiped.

    All operations are synchronous backend calls: each runs inside one
    kernel event, so the compare-and-swap generation bump is atomic across
    views exactly like :meth:`KVStore._cas`.
    """

    def __init__(
        self,
        backend: StoreBackend | None,
        log: BrokerLog,
        group_id: str,
    ):
        self._backend: StoreBackend = (
            backend if backend is not None else MemoryStoreBackend()
        )
        self._log = log
        self._meta_key = f"group:{group_id}:generation"
        prefix = f"_group:{group_id}:"
        self._gen_key = prefix + "generation"
        self._members_key = prefix + "members"
        self._paused_key = prefix + "paused"
        self._info_key = prefix + "info"
        self._snapshot_key = prefix + "members_at_gen"
        # Boot wipe: see the class docstring.
        self._backend.delete_hash(self._members_key)
        self._backend.delete(self._paused_key)
        self._backend.delete(self._info_key)
        self._backend.delete(self._snapshot_key)
        self._backend.set(
            self._gen_key, int(log.get_meta(self._meta_key) or 0)
        )

    # -- generation ----------------------------------------------------
    @property
    def generation(self) -> int:
        return int(self._backend.get(self._gen_key) or 0)

    def cas_generation(self, expected: int, new: int) -> bool:
        """Atomically bump the generation iff it still equals ``expected``.

        The winner of a racing rebalance advances the counter; losers see
        ``False`` and adopt the winner's published :class:`GenerationInfo`.
        """
        if self.generation != expected:
            return False
        self._backend.set(self._gen_key, new)
        self._log.set_meta(self._meta_key, new)
        return True

    # -- membership ----------------------------------------------------
    def member_ids(self) -> tuple[str, ...]:
        return tuple(sorted(self._backend.hgetall(self._members_key)))

    def is_member(self, member_id: str) -> bool:
        return self._backend.hget(self._members_key, member_id) is not None

    def add_member(self, member_id: str) -> None:
        self._backend.hset(self._members_key, member_id, True)

    def remove_member(self, member_id: str) -> bool:
        return self._backend.hdel(self._members_key, member_id)

    def members_at_generation(self) -> set[str]:
        return set(self._backend.get(self._snapshot_key) or ())

    def set_members_at_generation(self, member_ids: set[str]) -> None:
        self._backend.set(self._snapshot_key, sorted(member_ids))

    # -- pause flag ----------------------------------------------------
    @property
    def paused(self) -> bool:
        return bool(self._backend.get(self._paused_key))

    def set_paused(self, flag: bool) -> None:
        self._backend.set(self._paused_key, flag)

    # -- published generation outcome ----------------------------------
    def last_info(self) -> GenerationInfo | None:
        stored = self._backend.get(self._info_key)
        if stored is None:
            return None
        return GenerationInfo(
            generation=int(stored["generation"]),
            members=tuple(stored["members"]),
            leader=stored["leader"],
            failed=tuple(stored["failed"]),
            joined=tuple(stored["joined"]),
            reason=stored["reason"],
            triggered_at=float(stored["triggered_at"]),
            completed_at=float(stored["completed_at"]),
        )

    def set_last_info(self, info: GenerationInfo) -> None:
        self._backend.set(
            self._info_key,
            {
                "generation": info.generation,
                "members": list(info.members),
                "leader": info.leader,
                "failed": list(info.failed),
                "joined": list(info.joined),
                "reason": info.reason,
                "triggered_at": info.triggered_at,
                "completed_at": info.completed_at,
            },
        )


class GroupCoordinator:
    """One view onto the group (broker-side machinery; never fails).

    Every view shares the group's :class:`GroupState`; the ``members``
    dict holds only the members *joined through this view* (their
    heartbeat bookkeeping and handles live with the loop that runs them).
    Membership queries (:meth:`member_ids`, :meth:`is_member`,
    :attr:`live_members`) always consult the shared state, so append-time
    guards and routing tables agree across views.
    """

    def __init__(
        self,
        broker: Broker,
        group_id: str,
        topic_name: str,
        state: GroupState | None = None,
    ):
        self.broker = broker
        self.kernel: Kernel = broker.kernel
        self.group_id = group_id
        self.topic_name = topic_name
        #: Members joined through *this view* (local handles + heartbeats).
        self.members: dict[str, _MemberState] = {}
        # Generations survive the application: a coordinator rebuilt over a
        # durable broker log resumes numbering where the old group stopped,
        # so recovery-copy epochs stay monotonic across cold restarts.
        self.state = (
            state
            if state is not None
            else GroupState(None, broker.log, group_id)
        )
        self._closed = False
        self.history: list[GenerationRecord] = []
        self._generation_listeners: list[Callable[[GenerationInfo], None]] = []
        self._resume_waiters: list[SimFuture] = []
        self._rebalancing = False
        self._dirty = False
        self._trigger_time: float | None = None
        self._reasons: list[str] = []
        self._watchdog_started = False
        #: Highest generation this view has delivered to its listeners.
        self._seen_generation = self.state.generation

    # ------------------------------------------------------------------
    # store-backed surfaces (shared across views)
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self.state.generation

    @property
    def paused(self) -> bool:
        return self.state.paused

    def member_ids(self) -> tuple[str, ...]:
        """The group-wide membership (all views), sorted."""
        return self.state.member_ids()

    def is_member(self, member_id: str) -> bool:
        return self.state.is_member(member_id)

    @property
    def live_members(self) -> tuple[str, ...]:
        return self.state.member_ids()

    @property
    def leader(self) -> str | None:
        ordered = self.live_members
        return ordered[0] if ordered else None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the watchdog and refuse new members (application shutdown).

        The group object is being discarded together with the rest of the
        application's in-memory state; a reopened application builds a new
        coordinator over the same broker log.
        """
        self._closed = True

    def join(
        self, member_id: str, process: SimProcess | None = None
    ) -> "GroupMember":
        """Add a member; starts its heartbeat task and triggers a rebalance."""
        if self._closed:
            raise MQError(f"group {self.group_id!r} coordinator is closed")
        if member_id in self.members or self.state.is_member(member_id):
            raise ValueError(f"duplicate member id {member_id!r}")
        if self.broker.is_fenced(member_id):
            raise FencedMemberError(member_id)
        member = GroupMember(self, member_id, process)
        self.members[member_id] = _MemberState(
            member_id, process, self.kernel.now, member
        )
        self.state.add_member(member_id)
        self.ensure_watchdog()
        self.kernel.spawn(
            self._heartbeat_loop(member_id),
            process=process,
            name=f"heartbeat:{member_id}",
        )
        self._request_rebalance("join")
        return member

    def leave(self, member_id: str) -> None:
        """Graceful departure (still fences, still triggers a rebalance)."""
        if member_id in self.members or self.state.is_member(member_id):
            self._evict(member_id, reason="leave")

    def expel(self, member_id: str, reason: str = "expelled") -> None:
        """Administrative eviction of a *live* member.

        The control plane uses this when it has out-of-band evidence a
        member must go -- e.g. its partition lease expired because the
        hosting worker is wedged -- rather than waiting for the session
        watchdog to notice silence. Same fence + rebalance as any eviction.
        """
        if member_id in self.members or self.state.is_member(member_id):
            self._evict(member_id, reason=reason)

    def heartbeat(self, member_id: str) -> None:
        state = self.members.get(member_id)
        if state is not None:
            state.last_heartbeat = self.kernel.now

    def on_generation(
        self, listener: Callable[[GenerationInfo], None]
    ) -> None:
        self._generation_listeners.append(listener)

    # ------------------------------------------------------------------
    # heartbeats and the eviction watchdog
    # ------------------------------------------------------------------
    async def _heartbeat_loop(self, member_id: str) -> None:
        interval = self.broker.config.heartbeat_interval
        while member_id in self.members:
            self.heartbeat(member_id)
            await self.kernel.sleep(interval)

    def ensure_watchdog(self) -> None:
        """Start this view's watchdog task (idempotent).

        Joining starts it implicitly; a view that hosts no members but must
        still observe foreign generations (the cluster control plane) calls
        this directly.
        """
        if self._watchdog_started:
            return
        self._watchdog_started = True
        self.kernel.spawn(
            self._watchdog_loop(), name=f"watchdog:{self.group_id}"
        )

    async def _watchdog_loop(self) -> None:
        config = self.broker.config
        while not self._closed:
            await self.kernel.sleep(config.watchdog_interval)
            if self._closed:
                return
            now = self.kernel.now
            expired = [
                state.member_id
                for state in self.members.values()
                if now - state.last_heartbeat > config.session_timeout
            ]
            for member_id in expired:
                self._evict(member_id, reason="failure")
            self._observe_store()

    def _evict(self, member_id: str, reason: str) -> None:
        """Remove and fence a member, then trigger the consensus phase."""
        self.members.pop(member_id, None)
        self.state.remove_member(member_id)
        self.broker.fence(member_id)
        self._request_rebalance(reason)

    # ------------------------------------------------------------------
    # store observation (how a view learns about foreign generations)
    # ------------------------------------------------------------------
    def _observe_store(self) -> None:
        """Deliver generations and unpauses decided by *other* views.

        This is the cross-loop propagation path: a view that neither won
        nor raced the rebalance sees the bump here -- observed from the
        store, not from an in-process callback.
        """
        if not self._rebalancing:
            info = self.state.last_info()
            if info is not None and info.generation > self._seen_generation:
                self._observe_generation(info)
        if self._resume_waiters and not self.state.paused:
            self._stamp_resumed(self.state.generation)
            self._wake_resume_waiters()

    def _observe_generation(self, info: GenerationInfo) -> None:
        """Record and deliver one new generation on this view."""
        self._seen_generation = info.generation
        self.history.append(
            GenerationRecord(
                generation=info.generation,
                reason=info.reason,
                failed=info.failed,
                joined=info.joined,
                triggered_at=info.triggered_at,
                completed_at=info.completed_at,
            )
        )
        if not info.members:
            # Empty group: nothing can reconcile; resume so future joiners
            # start from a clean pause state.
            self.resume(info.generation)
        for listener in list(self._generation_listeners):
            listener(info)

    # ------------------------------------------------------------------
    # rebalance (the paper's consensus phase)
    # ------------------------------------------------------------------
    def _request_rebalance(self, reason: str) -> None:
        self._pause()
        self._reasons.append(reason)
        if self._rebalancing:
            self._dirty = True
            return
        self._rebalancing = True
        self._trigger_time = self.kernel.now
        self.kernel.spawn(
            self._rebalance(), name=f"rebalance:{self.group_id}"
        )

    async def _rebalance(self) -> None:
        config = self.broker.config
        while True:
            self._dirty = False
            await self.kernel.sleep(config.rebalance_join_window)
            await self.kernel.sleep(
                config.rebalance_sync_latency.sample(self.kernel.rng)
            )
            if not self._dirty:
                break
        if self._closed:
            return
        info: GenerationInfo | None = None
        while info is None:
            expected = self.state.generation
            current = set(self.state.member_ids())
            if self.state.cas_generation(expected, expected + 1):
                info = self._publish_generation(expected + 1, current)
            else:
                # Another view's rebalance won the bump. If its outcome
                # already covers the current membership (our joiners landed
                # before its snapshot), adopt it; otherwise retry the CAS
                # for a generation of our own.
                latest = self.state.last_info()
                if (
                    latest is not None
                    and latest.generation == self.state.generation
                    and set(latest.members) == set(self.state.member_ids())
                ):
                    info = latest
        self._rebalancing = False
        self._reasons = []
        self._trigger_time = None
        if info.generation > self._seen_generation:
            self._observe_generation(info)

    def _publish_generation(
        self, generation: int, current: set[str]
    ) -> GenerationInfo:
        """Winner path: compute the membership delta and publish the info."""
        previous = self.state.members_at_generation()
        failed = tuple(sorted(previous - current))
        joined = tuple(sorted(current - previous))
        self.state.set_members_at_generation(current)
        if "failure" in self._reasons:
            reason = "failure"
        else:
            reason = self._reasons[0] if self._reasons else "join"
        if self._trigger_time is not None:
            triggered_at = self._trigger_time
        else:
            triggered_at = self.kernel.now
        ordered = tuple(sorted(current))
        info = GenerationInfo(
            generation=generation,
            members=ordered,
            leader=ordered[0] if ordered else None,
            failed=failed,
            joined=joined,
            reason=reason,
            triggered_at=triggered_at,
            completed_at=self.kernel.now,
        )
        self.state.set_last_info(info)
        return info

    # ------------------------------------------------------------------
    # pause gate
    # ------------------------------------------------------------------
    def _pause(self) -> None:
        self.state.set_paused(True)

    def resume(self, generation: int) -> None:
        """Lift the pause for ``generation``; stale resumes are ignored.

        Called by the reconciliation leader once recovery completes. If a new
        failure arrived meanwhile, ``generation`` is stale and the newer
        generation's leader is responsible for resuming.
        """
        if generation != self.state.generation or self._rebalancing:
            return
        if not self.state.paused:
            return
        self.state.set_paused(False)
        self._stamp_resumed(generation)
        self._wake_resume_waiters()

    def _stamp_resumed(self, generation: int) -> None:
        for record in reversed(self.history):
            if record.generation == generation:
                if record.resumed_at is None:
                    record.resumed_at = self.kernel.now
                break

    def _wake_resume_waiters(self) -> None:
        waiters, self._resume_waiters = self._resume_waiters, []
        for waiter in waiters:
            waiter.set_result(None)

    async def wait_unpaused(self) -> None:
        while self.paused:
            waiter = self.kernel.create_future()
            self._resume_waiters.append(waiter)
            await waiter


class GroupMember:
    """A member handle: send to any partition, poll your own partition.

    Sends and polls respect the group pause ("all components temporarily
    stop sending and receiving messages", Section 4.3) and raise
    :class:`FencedMemberError` once the member is evicted.
    """

    def __init__(
        self,
        coordinator: GroupCoordinator,
        member_id: str,
        process: SimProcess | None,
    ):
        self.coordinator = coordinator
        self.member_id = member_id
        self.process = process
        self.position = 0

    @property
    def broker(self) -> Broker:
        return self.coordinator.broker

    @property
    def topic_name(self) -> str:
        return self.coordinator.topic_name

    def _check_fenced(self) -> None:
        if self.broker.is_fenced(self.member_id):
            raise FencedMemberError(self.member_id)

    async def send(self, partition_name: str, value: Any) -> Record:
        """Durably append ``value`` to another member's queue.

        Raises :class:`StaleRouteError` if the target member left the group
        while the send was in flight (its queue is being reconciled); the
        sender must re-resolve the destination and retry. The check happens
        at append time, so a raised send appended nothing.
        """
        await self.coordinator.wait_unpaused()
        self._check_fenced()
        try:
            return await self.broker.produce(
                self.topic_name,
                partition_name,
                value,
                self.member_id,
                guard=lambda: self.coordinator.is_member(partition_name),
            )
        except FencedMemberError:
            raise
        except MQError:
            raise StaleRouteError(partition_name) from None

    async def send_batch(
        self, entries: list[tuple[str, Any]]
    ) -> list[Record | StaleRouteError]:
        """Durably append a batch of messages in one produce round trip.

        ``entries`` is a list of ``(partition_name, value)``. The returned
        list is aligned with ``entries``: the appended :class:`Record` on
        success, or a :class:`StaleRouteError` for entries whose target
        member left the group while the send was in flight (those appended
        nothing and must be re-routed individually -- the rest of the batch
        still landed). Guards are evaluated at append time, per partition.
        A fenced or stale-epoch sender raises :class:`FencedMemberError`
        for the whole batch; nothing is appended.
        """
        await self.coordinator.wait_unpaused()
        self._check_fenced()
        guards: dict[str, Callable[[], bool]] = {
            partition: (
                lambda p=partition: self.coordinator.is_member(p)  # type: ignore[misc]
            )
            for partition, _value in entries
        }
        outcomes = await self.broker.produce_batch(
            self.topic_name, entries, self.member_id, guards
        )
        return [
            StaleRouteError(entries[index][0])
            if isinstance(outcome, MQError)
            else outcome
            for index, outcome in enumerate(outcomes)
        ]

    async def send_transaction(
        self, entries: list[tuple[str, Any]]
    ) -> list[Record]:
        """Atomically append to several queues (see produce_transaction)."""
        await self.coordinator.wait_unpaused()
        self._check_fenced()
        try:
            return await self.broker.produce_transaction(
                self.topic_name,
                entries,
                self.member_id,
                guard=lambda: all(
                    self.coordinator.is_member(partition)
                    or partition == self.member_id
                    for partition, _value in entries
                ),
            )
        except FencedMemberError:
            raise
        except MQError:
            raise StaleRouteError([p for p, _ in entries]) from None

    async def poll(self, max_records: int | None = None) -> list[Record]:
        """Block until records are available on this member's own queue."""
        while True:
            await self.coordinator.wait_unpaused()
            self._check_fenced()
            records = await self.broker.fetch(
                self.topic_name,
                self.member_id,
                self.position,
                self.member_id,
                max_records,
            )
            if records:
                self.position = records[-1].offset + 1
                return records
            waiter = self.broker.wait_for_append(
                self.topic_name, self.member_id
            )
            await waiter
