"""Immutable records stored in partitions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Record"]


@dataclass(frozen=True)
class Record:
    """One message at a fixed offset within a partition."""

    partition: str
    offset: int
    timestamp: float
    value: Any

    def __repr__(self) -> str:
        return f"Record({self.partition}@{self.offset} t={self.timestamp:.3f})"
