"""Immutable records stored in partitions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Record"]


@dataclass(frozen=True, slots=True)
class Record:
    """One message at a fixed offset within a partition.

    Slotted: long retention windows keep millions of records resident (in
    partitions, the broker log image, and reconciliation catalogs), so the
    per-record footprint matters.
    """

    partition: str
    offset: int
    timestamp: float
    value: Any

    def __repr__(self) -> str:
        return f"Record({self.partition}@{self.offset} t={self.timestamp:.3f})"
