"""Immutable records stored in partitions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.persist.framing import register_frame_type

__all__ = ["Record"]

#: Binary-frame table id for Record (ids below 64 are runtime-reserved).
RECORD_TYPE_ID = 5


@dataclass(frozen=True, slots=True)
class Record:
    """One message at a fixed offset within a partition.

    Slotted: long retention windows keep millions of records resident (in
    partitions, the broker log image, and reconciliation catalogs), so the
    per-record footprint matters.
    """

    partition: str
    offset: int
    timestamp: float
    value: Any

    def __repr__(self) -> str:
        return f"Record({self.partition}@{self.offset} t={self.timestamp:.3f})"


register_frame_type(Record, RECORD_TYPE_ID)
