"""Errors raised by the simulated message broker."""

__all__ = [
    "FencedMemberError",
    "JournalLockedError",
    "JournalReadOnlyError",
    "MQError",
    "StaleLeaseError",
    "StaleRouteError",
]


class MQError(Exception):
    """Base class for broker failures."""


class StaleRouteError(MQError):
    """The target partition's owner left the group while the send was in
    flight. The sender must re-resolve the route (e.g. via actor placement)
    and retry; nothing was appended."""


class FencedMemberError(MQError):
    """The producer/consumer identity was evicted from its group.

    Once Kafka removes a runtime process from the consumer group, that
    process no longer receives messages and is prevented from sending more,
    even if it is not completely dead (Section 4.2).
    """


class StaleLeaseError(FencedMemberError):
    """The partition's ownership lease moved on to a newer epoch.

    Raised when an old incarnation tries to consume (or keep producing
    under) a partition whose lease a successor incarnation has acquired --
    the cross-worker handoff fence. A stale lease is a fencing condition
    (the holder must terminate, exactly like a group eviction), so this
    subclasses :class:`FencedMemberError` and every fenced-exit path in the
    runtime handles it.
    """


class JournalLockedError(MQError):
    """Another opener already holds the journal file's append lock.

    Two workers must never append to the same partition journal
    concurrently: the second opener is rejected here instead of silently
    interleaving (and corrupting) frames.
    """


class JournalReadOnlyError(MQError):
    """A mutation was attempted through a read-only journal opener.

    Read-only openers are observers of a (possibly live) journal: they
    replay and inspect, but the single write lock stays with the appender,
    so any append/compact/rewrite through them is a programming error.
    """
