"""Errors raised by the simulated message broker."""

__all__ = ["FencedMemberError", "MQError", "StaleRouteError"]


class MQError(Exception):
    """Base class for broker failures."""


class StaleRouteError(MQError):
    """The target partition's owner left the group while the send was in
    flight. The sender must re-resolve the route (e.g. via actor placement)
    and retry; nothing was appended."""


class FencedMemberError(MQError):
    """The producer/consumer identity was evicted from its group.

    Once Kafka removes a runtime process from the consumer group, that
    process no longer receives messages and is prevented from sending more,
    even if it is not completely dead (Section 4.2).
    """
