"""Broker logs: the durable side of the append-only partitions.

The broker's partitions are the paper's journals -- calls, responses, and
tail-call supersessions all live there, and recovery is nothing but a replay
of what they retain (Section 4.3). A :class:`BrokerLog` is the storage
engine behind them:

- :class:`MemoryBrokerLog` keeps a per-partition image of retained records
  in memory. It survives an application ``shutdown``/``reopen`` as a live
  object (the message service outliving the app), not a process death.
- :class:`FileJournalLog` additionally appends one JSONL line per record to
  a journal file, with retention expiry recorded as compaction markers and
  the whole file rewritten once enough expired records accumulate
  (retention-driven compaction). Replay is offset-indexed: lines carry
  explicit offsets, so a cold restart reconstructs every partition's
  ``first_retained_offset`` / ``end_offset`` exactly.

The log also stores a small metadata map (group generation, component
epochs, boot counter) that must outlive the application processes but does
not belong in any partition.
"""

from __future__ import annotations

import json
import os
import struct
import sys
from typing import Any, Iterator

from repro.mq.errors import JournalLockedError, JournalReadOnlyError
from repro.mq.records import Record
from repro.persist import codec, framing

try:  # advisory file locking is POSIX-only; elsewhere the guard is a no-op
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = ["BrokerLog", "FileJournalLog", "MemoryBrokerLog"]

#: Length prefix for binary journal frames.
_U32 = struct.Struct("<I")


class _PartitionImage:
    """Retained records plus offset bounds for one partition."""

    __slots__ = ("records", "first_retained_offset", "next_offset")

    def __init__(self) -> None:
        self.records: list[Record] = []
        self.first_retained_offset = 0
        self.next_offset = 0


class BrokerLog:
    """In-memory partition image; subclasses add durability underneath.

    Every mutation the broker performs on a partition is mirrored here:
    ``append_many`` after each produce round trip, ``compact`` when
    retention expiry trims a prefix, ``drop_partition`` when a dead queue
    is discarded. ``replay`` hands the image back so a rebuilt broker can
    reconstruct its topics.
    """

    def __init__(self) -> None:
        self._parts: dict[tuple[str, str], _PartitionImage] = {}
        self._meta: dict[str, Any] = {}
        #: Records accepted across the log's lifetime (evidence counter).
        self.records_logged = 0
        #: Prefix-trim operations applied (retention compactions).
        self.compactions = 0

    # ------------------------------------------------------------------
    # record image
    # ------------------------------------------------------------------
    def _part(self, topic: str, partition: str) -> _PartitionImage:
        image = self._parts.get((topic, partition))
        if image is None:
            image = self._parts[(topic, partition)] = _PartitionImage()
        return image

    def append_many(self, topic: str, records: list[Record]) -> None:
        """Mirror freshly appended records (one produce round trip).

        Durability first: the image only mutates once the persistence hook
        accepted the batch, so a failed write (encoding, disk) leaves the
        log image agreeing with the file and the broker free to roll its
        partitions back.
        """
        self._persist_append(topic, records)
        for record in records:
            image = self._part(topic, record.partition)
            image.records.append(record)
            image.next_offset = record.offset + 1
            self.records_logged += 1

    def compact(self, topic: str, partition: str, keep_from: int) -> None:
        """Retention expired every record below offset ``keep_from``."""
        image = self._parts.get((topic, partition))
        if image is None or keep_from <= image.first_retained_offset:
            return
        drop = keep_from - image.first_retained_offset
        del image.records[:drop]
        image.first_retained_offset = keep_from
        image.next_offset = max(image.next_offset, keep_from)
        self.compactions += 1
        self._persist_compact(topic, partition, keep_from)

    def drop_partition(self, topic: str, partition: str) -> None:
        if self._parts.pop((topic, partition), None) is not None:
            self._persist_drop(topic, partition)

    def replay(self) -> Iterator[tuple[str, str, int, int, list[Record]]]:
        """Yield ``(topic, partition, first_retained, next_offset, records)``
        for every partition the log retains."""
        for (topic, partition), image in sorted(self._parts.items()):
            yield (
                topic,
                partition,
                image.first_retained_offset,
                image.next_offset,
                list(image.records),
            )

    def retained_records(self) -> int:
        return sum(len(image.records) for image in self._parts.values())

    # ------------------------------------------------------------------
    # metadata (group generation, epochs, boot counter)
    # ------------------------------------------------------------------
    def get_meta(self, key: str) -> Any:
        return self._meta.get(key)

    def set_meta(self, key: str, value: Any) -> None:
        self._meta[key] = value
        self._persist_meta()

    def meta_items(self) -> dict[str, Any]:
        return dict(self._meta)

    # ------------------------------------------------------------------
    # durability hooks (no-ops in memory)
    # ------------------------------------------------------------------
    def _persist_append(self, topic: str, records: list[Record]) -> None:
        pass

    def _persist_compact(self, topic: str, partition: str, keep_from: int) -> None:
        pass

    def _persist_drop(self, topic: str, partition: str) -> None:
        pass

    def _persist_meta(self) -> None:
        pass

    def flush(self) -> None:
        """Durability barrier: persist everything accepted so far."""

    def close(self) -> None:
        """Release file handles; logged data must remain recoverable."""


class MemoryBrokerLog(BrokerLog):
    """The image alone: durable across app restarts, not process death."""


class FileJournalLog(BrokerLog):
    """Append-only file journal with offset-indexed replay and compaction.

    Two on-disk formats, selected by ``codec`` and *detected* on open:

    - ``"json"`` -- the legacy JSONL format, one tagged-JSON object per
      line::

        {"k":"r","t":topic,"p":partition,"o":offset,"ts":time,"v":wire}
        {"k":"c","t":topic,"p":partition,"keep":offset}      # compaction
        {"k":"d","t":topic,"p":partition}                     # drop
        {"k":"s","t":topic,"p":partition,"first":o,"next":o}  # bounds

    - ``"binary"`` -- a 4-byte file header (the frame magic plus version
      byte) followed by length-prefixed frames, each one entry tuple
      (``("r", topic, partition, offset, ts, value)``, and the ``"c"`` /
      ``"d"`` / ``"s"`` shapes above) in the binary framing codec.

    A journal written in the other format replays identically -- the header
    dispatches the reader -- and is then rewritten into the configured
    format before new entries append; that rewrite is the whole migration
    story for pre-binary journals. Metadata lives beside the journal in
    ``<journal>.meta.json``, rewritten atomically (it is tiny and changes
    only on rebalances and deploys).

    Locking: the single appender holds an *exclusive* ``flock`` on the
    ``<journal>.lock`` sidecar for its whole lifetime (a second appender is
    rejected with :class:`JournalLockedError`; the lock survives
    :meth:`rewrite`, whose ``os.replace`` swaps the journal file, not the
    sidecar). A ``read_only=True`` opener is an observer of a possibly-live
    journal: it takes a *shared* ``flock`` on the journal file itself --
    any number of observers coexist with each other and with the appender
    -- replays a snapshot as of open (reopen to refresh), never truncates a
    torn tail (that is the appender's recovery job), and raises
    :class:`JournalReadOnlyError` from every mutation path.
    """

    def __init__(
        self,
        path: str,
        fsync: bool = False,
        compact_min_records: int = 4096,
        compact_ratio: float = 0.5,
        codec: str = "binary",
        read_only: bool = False,
    ):
        super().__init__()
        if codec not in ("json", "binary"):
            raise ValueError(f"unknown journal codec {codec!r}")
        self.path = path
        self.meta_path = path + ".meta.json"
        self.lock_path = path + ".lock"
        self.codec = codec
        self.read_only = read_only
        self._binary = codec == "binary"
        self._fsync = fsync
        self._compact_min_records = compact_min_records
        self._compact_ratio = compact_ratio
        #: Record entries sitting in the file since the last rewrite.
        self._disk_records = 0
        #: Pre-encoded entries for the append in progress (see append_many).
        self._staged_lines: list[bytes] | None = None
        #: Request-core memo shared by every frame this journal encodes.
        self._frame_cache = framing.FrameCache()
        #: Full-file rewrites performed (the compaction evidence counter).
        self.rewrites = 0
        #: Format conversions performed on open (0 or 1).
        self.migrations = 0
        if read_only:
            # Observers replay without the append lock; a missing journal
            # raises FileNotFoundError (there is nothing to observe yet).
            self._lock_handle = self._open_shared()
            self._file = self._lock_handle
            self._load()
            return
        # Take the append lock *before* replaying: two workers must never
        # interleave frames into one partition journal, so the second
        # opener is rejected here, before it can observe (or disturb) the
        # first opener's image.
        self._lock_handle = self._open_locked()
        self._file = open(self.path, "ab")
        loaded_format = self._load()
        if loaded_format is None:
            if self._binary:
                self._file.write(framing.MAGIC + bytes((framing.VERSION_BINARY,)))
                self._flush_file()
        elif loaded_format != codec:
            self.rewrite()
            self.migrations += 1

    @classmethod
    def open_read_only(cls, path: str) -> "FileJournalLog":
        """An observer over ``path``: shared lock, snapshot replay."""
        return cls(path, read_only=True)

    def _open_locked(self) -> Any:
        """Take the appender's exclusive advisory lock (sidecar file).

        ``flock`` is per open file description, so the guard also catches a
        second :class:`FileJournalLog` over the same path inside one
        process. The handle is held for the journal's whole lifetime --
        unlike a lock on the journal file itself it survives the
        ``os.replace`` in :meth:`rewrite` -- and released on ``close``.
        """
        handle = open(self.lock_path, "ab")
        if fcntl is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.close()
                raise JournalLockedError(
                    f"journal {self.path!r} is already locked by another "
                    "opener; a partition journal admits exactly one appender"
                ) from None
        return handle

    def _open_shared(self) -> Any:
        """Take an observer's *shared* advisory lock on the journal file.

        Observers do not contend with the appender (whose exclusive lock
        lives on the sidecar) or with each other; the shared lock only
        blocks tools that demand exclusive access to the data file.
        """
        handle = open(self.path, "rb")
        if fcntl is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_SH | fcntl.LOCK_NB)
            except OSError:
                handle.close()
                raise JournalLockedError(
                    f"journal {self.path!r} is exclusively locked; cannot "
                    "open a read-only observer"
                ) from None
        return handle

    def _assert_writable(self) -> None:
        if self.read_only:
            raise JournalReadOnlyError(
                f"journal {self.path!r} was opened read-only; observers "
                "replay and inspect, the appender owns every mutation"
            )

    # ------------------------------------------------------------------
    # replaying an existing journal
    # ------------------------------------------------------------------
    def _load(self) -> "str | None":
        """Replay the journal file; returns the format found (or ``None``
        for a missing/empty journal)."""
        if os.path.exists(self.meta_path):
            with open(self.meta_path, "r", encoding="utf-8") as handle:
                self._meta = json.load(handle)
        if not os.path.exists(self.path):
            return None
        with open(self.path, "rb") as handle:
            data = handle.read()
        if not data:
            return None
        if data[:3] == framing.MAGIC:
            self._load_binary(data)
            return "binary"
        self._load_json(data)
        return "json"

    def _load_json(self, data: bytes) -> None:
        good_end = 0  # byte offset past the last fully decoded line
        raw_lines = data.splitlines(keepends=True)
        for index, raw in enumerate(raw_lines):
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                good_end += len(raw)
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # A torn final line is the normal residue of a crash
                # mid-write (the record it carried was never acknowledged):
                # truncate it away and recover. A torn line *followed by
                # intact ones* is real corruption -- refuse to guess.
                if any(raw.strip() for raw in raw_lines[index + 1 :]):
                    raise ValueError(
                        f"corrupt journal line {index + 1} in {self.path!r}"
                    ) from None
                if not self.read_only:
                    # Observers stop replaying at the tear but leave the
                    # recovery (truncation) to the appender's next open.
                    with open(self.path, "rb+") as handle:
                        handle.truncate(good_end)
                break
            good_end += len(raw)
            kind = entry["k"]
            if kind == "r":
                self._apply(
                    (
                        "r",
                        entry["t"],
                        entry["p"],
                        entry["o"],
                        entry["ts"],
                        codec.from_wire(entry["v"]),
                    )
                )
            elif kind == "c":
                self._apply(("c", entry["t"], entry["p"], entry["keep"]))
            elif kind == "d":
                self._apply(("d", entry["t"], entry["p"]))
            elif kind == "s":
                self._apply(
                    ("s", entry["t"], entry["p"], entry["first"], entry["next"])
                )
            else:
                raise ValueError(f"unknown journal line kind {kind!r}")

    def _load_binary(self, data: bytes) -> None:
        if data[3] != framing.VERSION_BINARY:
            raise ValueError(
                f"unknown binary journal version {data[3]} in {self.path!r}"
            )
        pos = 4
        total = len(data)
        while pos < total:
            if pos + 4 > total:
                break  # torn length prefix at the tail
            (size,) = _U32.unpack_from(data, pos)
            end = pos + 4 + size
            if end > total:
                break  # torn frame payload at the tail
            try:
                entry, consumed = framing.decode_value(data, pos + 4)
                if consumed != end:
                    raise framing.FramingError("frame length mismatch")
            except framing.FramingError:
                # Same contract as the JSONL loader: a bad final frame is
                # the torn residue of a crash -- truncate and recover; a bad
                # frame *followed by* intact bytes is corruption.
                if end == total:
                    break
                raise ValueError(
                    f"corrupt journal frame at byte {pos} in {self.path!r}"
                ) from None
            self._apply(entry)
            pos = end
        if pos < total and not self.read_only:
            # The torn entry was never acknowledged; drop it. (Observers
            # stop at the tear and leave recovery to the appender.)
            with open(self.path, "rb+") as handle:
                handle.truncate(pos)

    def _apply(self, entry: tuple) -> None:
        """Apply one replayed journal entry to the in-memory image."""
        kind = entry[0]
        # One topic/partition string is shared by thousands of entries:
        # interning keeps replay memory flat and key comparisons cheap.
        topic = sys.intern(entry[1])
        partition = sys.intern(entry[2])
        if kind == "r":
            image = self._part(topic, partition)
            record = Record(partition, entry[3], entry[4], entry[5])
            image.records.append(record)
            image.next_offset = record.offset + 1
            self._disk_records += 1
        elif kind == "c":
            image = self._part(topic, partition)
            keep = entry[3]
            drop = keep - image.first_retained_offset
            if drop > 0:
                del image.records[:drop]
                image.first_retained_offset = keep
                image.next_offset = max(image.next_offset, keep)
        elif kind == "d":
            self._parts.pop((topic, partition), None)
        elif kind == "s":
            image = self._part(topic, partition)
            image.first_retained_offset = entry[3]
            image.next_offset = entry[4]
        else:
            raise ValueError(f"unknown journal entry kind {kind!r}")

    # ------------------------------------------------------------------
    # durability hooks
    # ------------------------------------------------------------------
    def append_many(self, topic: str, records: list[Record]) -> None:
        # Encode *before* the in-memory image mutates: an unencodable
        # payload must fail the append cleanly, leaving image and file
        # agreeing (the broker then rolls back its partitions too).
        self._assert_writable()
        self._staged_lines = [self._record_line(topic, r) for r in records]
        try:
            super().append_many(topic, records)
        finally:
            self._staged_lines = None

    def _record_line(self, topic: str, record: Record) -> bytes:
        if self._binary:
            return self._frame_bytes(
                (
                    "r",
                    topic,
                    record.partition,
                    record.offset,
                    record.timestamp,
                    record.value,
                )
            )
        return (
            json.dumps(
                {
                    "k": "r",
                    "t": topic,
                    "p": record.partition,
                    "o": record.offset,
                    "ts": record.timestamp,
                    "v": codec.to_wire(record.value),
                },
                separators=(",", ":"),
            )
            + "\n"
        ).encode("utf-8")

    def _frame_bytes(self, entry: tuple) -> bytes:
        payload = framing.encode_value(entry, self._frame_cache)
        return _U32.pack(len(payload)) + payload

    def _control_line(self, json_obj: dict[str, Any], entry: tuple) -> bytes:
        if self._binary:
            return self._frame_bytes(entry)
        return (json.dumps(json_obj, separators=(",", ":")) + "\n").encode("utf-8")

    def _persist_append(self, topic: str, records: list[Record]) -> None:
        # One write + flush per produce round trip: the batched-produce
        # path journals a whole batch in a single I/O burst.
        lines = self._staged_lines
        assert lines is not None and len(lines) == len(records)
        self._file.write(b"".join(lines))
        self._flush_file()
        self._disk_records += len(records)

    def _persist_compact(self, topic: str, partition: str, keep_from: int) -> None:
        self._assert_writable()
        self._file.write(
            self._control_line(
                {"k": "c", "t": topic, "p": partition, "keep": keep_from},
                ("c", topic, partition, keep_from),
            )
        )
        self._flush_file()
        self._maybe_rewrite()

    def _persist_drop(self, topic: str, partition: str) -> None:
        self._assert_writable()
        self._file.write(
            self._control_line(
                {"k": "d", "t": topic, "p": partition}, ("d", topic, partition)
            )
        )
        self._flush_file()
        self._maybe_rewrite()

    def _persist_meta(self) -> None:
        self._assert_writable()
        tmp_path = self.meta_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(self._meta, handle, separators=(",", ":"))
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, self.meta_path)

    def _flush_file(self) -> None:
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())

    # ------------------------------------------------------------------
    # retention-driven journal rewrite
    # ------------------------------------------------------------------
    def _maybe_rewrite(self) -> None:
        live = self.retained_records()
        dead = self._disk_records - live
        if dead < self._compact_min_records:
            return
        if self._disk_records and live > self._compact_ratio * self._disk_records:
            return
        self.rewrite()

    def rewrite(self) -> None:
        """Rewrite the journal with only the retained image (in place),
        in the *configured* format -- this is also the migration step when
        a journal opens in the other format."""
        self._assert_writable()
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "wb") as handle:
            if self._binary:
                handle.write(framing.MAGIC + bytes((framing.VERSION_BINARY,)))
            for (topic, partition), image in sorted(self._parts.items()):
                handle.write(
                    self._control_line(
                        {
                            "k": "s",
                            "t": topic,
                            "p": partition,
                            "first": image.first_retained_offset,
                            "next": image.next_offset,
                        },
                        (
                            "s",
                            topic,
                            partition,
                            image.first_retained_offset,
                            image.next_offset,
                        ),
                    )
                )
                for record in image.records:
                    handle.write(self._record_line(topic, record))
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        self._file.close()
        os.replace(tmp_path, self.path)
        # The append lock lives on the sidecar and was never dropped; only
        # the data handle needs reopening over the replaced file.
        self._file = open(self.path, "ab")
        self._disk_records = self.retained_records()
        self.rewrites += 1

    def flush(self) -> None:
        if self.read_only:
            return
        self._flush_file()

    def close(self) -> None:
        if self._file.closed:
            return
        if not self.read_only:
            self._flush_file()
        self._file.close()
        if not self._lock_handle.closed:
            self._lock_handle.close()
