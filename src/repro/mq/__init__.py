"""Simulated Apache Kafka.

KAR delegates reliable messaging, discovery, health monitoring, failure
detection, and consensus to Kafka (Section 4.2). This package reproduces the
parts of Kafka the paper relies on:

- append-only partitioned topics with offsets and bulk expiry (Section 4.1:
  messages are never removed from the middle of a queue; they expire after a
  configurable delay or above a configurable size, defaulting to 10 minutes);
- consumer groups with heartbeats, a session timeout, generations, and a
  join/sync rebalance -- the paper's *detection* and *consensus* phases;
- fencing: a member evicted from the group can neither produce nor consume
  (the forceful-disconnection half of Section 4.2), and the group pauses
  message flow until the elected leader finishes reconciliation.
"""

from repro.mq.broker import Broker, BrokerConfig, Topic
from repro.mq.errors import (
    FencedMemberError,
    JournalLockedError,
    JournalReadOnlyError,
    MQError,
    StaleLeaseError,
    StaleRouteError,
)
from repro.mq.group import (
    GenerationInfo,
    GroupCoordinator,
    GroupMember,
    GroupState,
)
from repro.mq.log import BrokerLog, FileJournalLog, MemoryBrokerLog
from repro.mq.records import Record

__all__ = [
    "Broker",
    "BrokerConfig",
    "BrokerLog",
    "FencedMemberError",
    "FileJournalLog",
    "GenerationInfo",
    "GroupCoordinator",
    "GroupMember",
    "GroupState",
    "JournalLockedError",
    "JournalReadOnlyError",
    "MQError",
    "MemoryBrokerLog",
    "Record",
    "StaleLeaseError",
    "StaleRouteError",
    "Topic",
]
