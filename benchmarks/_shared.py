"""Shared infrastructure for the benchmark suite.

Campaign results are cached per pytest session so Table 1, Figure 7a and
Figure 7b (which all analyse the same fault-injection campaign, exactly as
in the paper) run it once. ``REPRO_SCALE=full`` reproduces the paper-scale
counts (1,000 single failures, 1,000 paired, 500 total-failure iterations,
10,000 latency samples); the default "quick" scale keeps the suite in the
minutes range.
"""

from __future__ import annotations

import os
import tempfile
from functools import lru_cache
from pathlib import Path

from repro.bench import FailureCampaign

# Rendered tables are scratch output, not source: they default to a tmp
# directory so benchmark runs never dirty the working tree. Set
# REPRO_RESULTS_DIR to keep them somewhere inspectable (e.g. CI artifacts
# or the gitignored benchmarks/results/).
RESULTS_DIR = Path(
    os.environ.get(
        "REPRO_RESULTS_DIR",
        Path(tempfile.gettempdir()) / "repro-bench-results",
    )
)

FULL = os.environ.get("REPRO_SCALE", "quick").lower() == "full"

SINGLE_FAILURES = 1000 if FULL else 25
PAIRED_FAILURES = 1000 if FULL else 10
TOTAL_FAILURE_ITERATIONS = 500 if FULL else 5
LATENCY_ITERATIONS = 10_000 if FULL else 400
CAMPAIGN_SEED = 2023


@lru_cache(maxsize=None)
def single_failure_campaign():
    """The 48-hour / 1,000-failure campaign (scaled)."""
    campaign = FailureCampaign(seed=CAMPAIGN_SEED, failures=SINGLE_FAILURES)
    return campaign.run()


@lru_cache(maxsize=None)
def paired_failure_campaign():
    campaign = FailureCampaign(
        seed=CAMPAIGN_SEED + 1, failures=PAIRED_FAILURES, paired=True,
        recovery_timeout=300.0,
    )
    return campaign.run()


def save_report(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


def emit(name: str, text: str) -> None:
    """Print and persist a rendered table/series."""
    print()
    print(text)
    save_report(name, text)


def maybe_profile(name: str, fn, *args, **kwargs):
    """Run ``fn`` -- under cProfile when ``REPRO_PROFILE=1``.

    The profile's top functions (by cumulative time) print to stdout and
    land in ``RESULTS_DIR/profile_<name>.txt``, so a hot-path hunt is one
    environment variable away from any benchmark invocation::

        REPRO_PROFILE=1 python benchmarks/run_bench_regression.py
        REPRO_PROFILE=1 pytest benchmarks/bench_codec.py -s
    """
    if os.environ.get("REPRO_PROFILE") != "1":
        return fn(*args, **kwargs)

    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(25)
    emit(f"profile_{name}.txt", stream.getvalue().rstrip())
    return result
