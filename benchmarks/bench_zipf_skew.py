"""Zipfian skew: adaptive placement vs. static bounded-load hashing.

Static consistent hashing balances component *counts*; a zipfian workload
(s = 2.0 over 8 components, so the hottest partition draws ~65% of all
calls) pins one worker loop while three idle. The adaptive placement
controller closes the gap live: it detects the hot component from the
decaying load plane, splits it into sub-partitions, and spreads the
children across workers -- mid-burst, over the same drain -> fence ->
replay handoff that covers crashes.

Both modes run the identical closed-loop driver pool over the same call
schedule on 4 workers; the only difference is ``adaptive_placement``.
Gates: adaptive throughput >=
1.5x static, zero lost and zero doubled commits in both modes, and at
least one split actually performed in the adaptive run.
"""

from __future__ import annotations

import random

from repro.bench import render_table
from repro.core import Actor, KarCluster, KarConfig, actor_proxy
from repro.sim import Kernel

from _shared import FULL, emit

WORKERS = 4
COMPONENTS = 8
# High enough that the worker event loop -- not per-actor mailbox
# serialization -- is the binding constraint; that is the regime where
# placement (which worker runs the partition) decides throughput.
LOOP_COST = 0.01
ZIPF_S = 2.0
ACTORS_PER_COMPONENT = 8
CALLS = 3000 if FULL else 1800
#: Closed-loop driver pool. Closed-loop keeps each partition's queue
#: bounded by the in-flight window, so a mid-burst handoff strands a
#: bounded backlog -- the benchmark then measures placement, not the cost
#: of replaying an unbounded open-loop queue.
DRIVERS = 48

#: Acceptance floor: adaptive placement must beat static hashing by this
#: factor under the skewed workload.
RATIO_FLOOR = 1.5


class TallyActor(Actor):
    """Read-then-tail-write commit discipline: a doubled bump is visible."""

    async def bump(self, ctx, amount):
        total = await ctx.state.get("total", 0)
        return ctx.tail_call(None, "commit", total + amount)

    async def commit(self, ctx, total):
        await ctx.state.set("total", total)
        return total

    async def get(self, ctx):
        return await ctx.state.get("total", 0)


def _deploy(adaptive: bool, seed: int):
    kernel = Kernel(seed=seed)
    config = KarConfig.fast_test().with_overrides(
        worker_loop_cost=LOOP_COST,
        adaptive_placement=adaptive,
        load_halflife=0.4,
        # The cooldown must outlast the load-signal lag (a few halflives):
        # acting faster than the windows decay reads yesterday's imbalance
        # as today's and over-corrects into a migration spiral.
        rebalance_cooldown=1.2,
        split_threshold=0.35,
        split_factor=8,
        rebalance_threshold=0.6,
        # Under sustained overload the hot component never fully quiesces;
        # a short drain keeps each handoff's stop-the-partition window tight.
        drain_timeout=0.3,
        # The retry budget's default floor (2/s) is sized for failure
        # storms. A *planned* handoff strands a window of in-flight calls
        # whose resends are all retries; pacing that recovery at the storm
        # floor would stall every placement action for seconds. Both modes
        # run the same budget, so the comparison stays fair.
        retry_budget_floor_per_sec=200.0,
        retry_budget_burst=500.0,
    )
    app = KarCluster(kernel, config, "zipf", workers=WORKERS)
    app.register_actor(TallyActor, name="Tally")
    for index in range(COMPONENTS):
        app.add_component(f"comp{index}", ("Tally",))
    app.client()
    app.settle()
    return kernel, app


def _actor_pools(app) -> list[list[str]]:
    """Per-component actor-id pools, bucketed by the placement hash."""
    candidates = sorted(
        name for name, types in app.component_types.items() if types
    )
    pools: dict[str, list[str]] = {name: [] for name in candidates}
    index = 0
    while any(len(pool) < ACTORS_PER_COMPONENT for pool in pools.values()):
        actor_id = f"t{index}"
        ref = actor_proxy("Tally", actor_id)
        home = candidates[ref.stable_hash() % len(candidates)]
        if len(pools[home]) < ACTORS_PER_COMPONENT:
            pools[home].append(actor_id)
        index += 1
    return [pools[name] for name in candidates]


def _zipf_schedule(pools: list[list[str]], seed: int) -> list[str]:
    """The per-call actor-id sequence: zipf over components, round-robin
    within each component's pool. Identical for both modes."""
    rng = random.Random(seed)
    ranks = list(range(len(pools)))
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in ranks]
    cursors = [0] * len(pools)
    schedule = []
    for _ in range(CALLS):
        component = rng.choices(ranks, weights=weights)[0]
        pool = pools[component]
        schedule.append(pool[cursors[component] % len(pool)])
        cursors[component] += 1
    return schedule


def run_mode(adaptive: bool) -> dict:
    kernel, app = _deploy(adaptive, seed=17)
    client = app.client()
    pools = _actor_pools(app)
    schedule = _zipf_schedule(pools, seed=99)
    expected: dict[str, int] = {}
    for actor_id in schedule:
        expected[actor_id] = expected.get(actor_id, 0) + 1

    start = kernel.now

    async def driver(lane):
        for actor_id in schedule[lane::DRIVERS]:
            ref = actor_proxy("Tally", actor_id)
            await client.invoke(None, ref, "bump", (1,), True)

    tasks = [
        kernel.spawn(driver(lane), client.process, name=f"driver:{lane}")
        for lane in range(DRIVERS)
    ]
    kernel.run_until_complete(kernel.gather(tasks), timeout=3600.0)
    kernel.check_no_crashes()
    makespan = kernel.now - start
    deadline = kernel.now + 30.0  # let the tail (and any merges) settle
    while kernel.now < deadline and app.stats("calls")["unsettled"]:
        kernel.run(until=kernel.now + 1.0)
    kernel.run(until=kernel.now + 2.0)

    totals = {
        actor_id: app.run_call(actor_proxy("Tally", actor_id), "get")
        for actor_id in expected
    }
    lost = sum(
        max(0, want - totals[actor_id])
        for actor_id, want in expected.items()
    )
    doubled = sum(
        max(0, totals[actor_id] - want)
        for actor_id, want in expected.items()
    )
    unsettled = len(app.stats("calls")["unsettled"])
    placement = app.stats("placement")
    app.shutdown()
    return {
        "mode": "adaptive" if adaptive else "static",
        "calls": CALLS,
        "makespan_s": makespan,
        "calls_per_s": CALLS / makespan,
        "lost_calls": lost + unsettled,
        "double_commits": doubled,
        "migrations": placement["migrations"],
        "splits": placement["splits"],
        "merges": placement["merges"],
    }


def measure_all() -> dict:
    static = run_mode(adaptive=False)
    adaptive = run_mode(adaptive=True)
    return {
        "static": static,
        "adaptive": adaptive,
        "ratio": adaptive["calls_per_s"] / static["calls_per_s"],
    }


def test_adaptive_beats_static_under_zipfian_skew(benchmark):
    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    static, adaptive = rows["static"], rows["adaptive"]

    emit(
        "zipf_skew.txt",
        render_table(
            ["Mode", "Calls", "Makespan (s)", "Calls/s", "Migrations",
             "Splits", "Lost", "Doubled"],
            [
                (
                    row["mode"],
                    row["calls"],
                    round(row["makespan_s"], 3),
                    round(row["calls_per_s"], 1),
                    row["migrations"],
                    row["splits"],
                    row["lost_calls"],
                    row["double_commits"],
                )
                for row in (static, adaptive)
            ],
            title=(
                f"Zipfian skew (s={ZIPF_S}, {COMPONENTS} components, "
                f"{WORKERS} workers, loop cost {LOOP_COST * 1000:.0f}ms): "
                "static hashing vs. adaptive placement"
            ),
            digits=3,
        ),
    )
    benchmark.extra_info["adaptive_vs_static_ratio"] = round(
        rows["ratio"], 3
    )

    # Exactly-once is non-negotiable in both modes.
    for row in (static, adaptive):
        assert row["lost_calls"] == 0
        assert row["double_commits"] == 0
    # Static mode must not act (it is the control arm)...
    assert static["migrations"] == 0 and static["splits"] == 0
    # ...while adaptive mode actually split the hot component and won.
    assert adaptive["splits"] >= 1
    assert rows["ratio"] >= RATIO_FLOOR
