"""Ablation: the transactional completion log (Section 4.3, future work).

"An alternative to reconciliation could use Kafka transactions to
atomically (1) send the caller the call result via the caller's queue and
(2) log its completion in the callee's queue, making it possible to match
requests and completions within each failed component queue without global
coordination."

We implemented it. The trade: one extra record per call (transaction
overhead) buys locally-verifiable completions, so failed components' queues
are discarded at reconciliation instead of lingering until retention
expiry. We measure both sides across a small failure campaign.
"""

from repro.bench import FailureCampaign, campaign_kar_config, render_table
from repro.reefer import ReeferConfig

from _shared import FULL, emit

FAILURES = 10 if FULL else 4


def run_campaign(completion_log):
    campaign = FailureCampaign(
        seed=321,
        failures=FAILURES,
        kar_config=campaign_kar_config().with_overrides(
            completion_log=completion_log
        ),
        reefer_config=ReeferConfig(
            order_rate=0.5, anomaly_rate=0.0, containers_per_depot=300
        ),
    )
    result = campaign.run()
    assert not result.invariant_violations, result.invariant_violations
    broker = campaign.reefer.app.broker
    catalog = sum(
        len(partition)
        for partition in broker.topics[campaign.reefer.app.topic_name]
        .partitions.values()
    )
    reconciliation = result.phase_stats()["Reconciliation"]
    return {
        "messages": broker.produce_count,
        "backlog_at_end": catalog,
        "reconciliation_avg": reconciliation["avg"],
        "orders": result.orders_submitted,
    }


def test_completion_log_tradeoff(benchmark):
    with_log, without_log = benchmark.pedantic(
        lambda: (run_campaign(True), run_campaign(False)),
        rounds=1,
        iterations=1,
    )
    rows = [
        ("transactional completion log", with_log["messages"],
         with_log["backlog_at_end"], with_log["reconciliation_avg"]),
        ("retention-based (default)", without_log["messages"],
         without_log["backlog_at_end"], without_log["reconciliation_avg"]),
    ]
    emit(
        "ablation_completion_log.txt",
        render_table(
            ["Mode", "Messages produced", "Retained backlog",
             "Reconciliation avg (s)"],
            rows,
            title=(
                "Ablation: transactional completion log vs retention-based "
                f"evidence ({FAILURES} failures, same workload)"
            ),
            digits=2,
        ),
    )
    benchmark.extra_info.update(
        messages_with=with_log["messages"],
        messages_without=without_log["messages"],
    )
    # The transaction writes more messages overall...
    assert with_log["messages"] > without_log["messages"]
    # ...but dead queues are discarded eagerly, shrinking the live backlog.
    assert with_log["backlog_at_end"] <= without_log["backlog_at_end"]
