"""Ablation: tail call vs. nested call for chaining two steps.

Section 2.4: "A tail call is a single message that semantically is both a
request and a response." A two-step operation built from a nested call pays
two extra queue trips (the callee's response and the caller's own
response); the tail-call version pays one message per link. We measure both
the round-trip latency and the broker message count per operation.
"""

from repro.bench import CLUSTER_PROD, render_table
from repro.core import Actor, KarApplication, actor_proxy
from repro.sim import Kernel

from _shared import FULL, emit

ITERATIONS = 500 if FULL else 120


class Chained(Actor):
    async def first_tail(self, ctx, v):
        return ctx.tail_call(None, "second", v + 1)

    async def first_nested(self, ctx, v):
        return await ctx.call(ctx.self_ref, "second", v + 1)

    async def second(self, ctx, v):
        return v * 2


def measure(method):
    kernel = Kernel(seed=9)
    app = KarApplication(kernel, CLUSTER_PROD.kar_config())
    app.register_actor(Chained)
    app.add_component("workers", ("Chained",))
    client = app.client()
    app.settle()
    ref = actor_proxy("Chained", "x")
    samples = []
    produced_before = app.broker.produce_count

    async def driver():
        await client.invoke(None, ref, method, (0,), True)  # warm-up
        for _ in range(ITERATIONS):
            start = kernel.now
            value = await client.invoke(None, ref, method, (20,), True)
            assert value == 42
            samples.append(kernel.now - start)

    task = kernel.spawn(driver(), client.process)
    kernel.run_until_complete(task, timeout=36000.0)
    messages = (app.broker.produce_count - produced_before) / (ITERATIONS + 1)
    samples.sort()
    return samples[len(samples) // 2] * 1000.0, messages


def test_tail_call_vs_nested_call_cost(benchmark):
    (tail_ms, tail_msgs), (nested_ms, nested_msgs) = benchmark.pedantic(
        lambda: (measure("first_tail"), measure("first_nested")),
        rounds=1,
        iterations=1,
    )
    emit(
        "ablation_tailcall.txt",
        render_table(
            ["Chaining", "Median RTT (ms)", "Broker messages/op"],
            [
                ("tail call", tail_ms, tail_msgs),
                ("nested call", nested_ms, nested_msgs),
            ],
            title="Ablation: tail call vs nested call (ClusterProd, 2 steps)",
            digits=2,
        ),
    )
    benchmark.extra_info.update(
        tail_ms=round(tail_ms, 2), nested_ms=round(nested_ms, 2)
    )
    # The tail call needs fewer messages and is faster.
    assert tail_msgs < nested_msgs
    assert tail_ms < nested_ms
