"""Multi-worker scale-out: throughput scaling and kill-mid-workload safety.

The paper's deployment (Section 5) is many sidecar processes sharing one
Kafka and one Redis; throughput grows with the process count because each
process is an independent event loop. This benchmark reproduces both halves
of that claim on the simulated cluster runtime (`repro.core.cluster`):

- **scaling** -- the identical sharded fan-out workload on 1, 2, and 4
  worker event loops, with a per-invocation event-loop cost
  (``worker_loop_cost``) so a single loop is a genuine throughput ceiling.
  Gates: >= 1.5x at 2 workers and >= 2x at 4 workers;
- **kill** -- one worker is crashed mid-workload (on each store backend)
  and every in-flight call must still settle exactly once: zero lost
  calls, zero double commits, an empty unsettled set.
"""

from __future__ import annotations

import tempfile

from repro.bench import render_table
from repro.core import Actor, KarCluster, KarConfig, actor_proxy
from repro.persist import PersistenceConfig
from repro.sim import Kernel

from _shared import FULL, emit

COMPONENTS = 8
ACTORS = 64
CALLS = 800 if FULL else 320
LOOP_COST = 0.003

KILL_COUNTERS = 8
KILL_BUMPS = 6 if FULL else 4


class EchoActor(Actor):
    async def echo(self, ctx, n):
        return n + 1


class TallyActor(Actor):
    """Read-then-tail-write commit discipline: a doubled bump is visible."""

    async def bump(self, ctx, amount):
        total = await ctx.state.get("total", 0)
        return ctx.tail_call(None, "commit", total + amount)

    async def commit(self, ctx, total):
        await ctx.state.set("total", total)
        return total

    async def get(self, ctx):
        return await ctx.state.get("total", 0)


def _deploy(workers: int, mode: str, root: str | None, seed: int):
    kernel = Kernel(seed=seed)
    config = KarConfig.fast_test().with_overrides(worker_loop_cost=LOOP_COST)
    if mode == "sqlite":
        config = config.with_overrides(
            persistence=PersistenceConfig.sqlite(root)
        )
    app = KarCluster(kernel, config, "scaleout", workers=workers)
    app.register_actor(EchoActor, name="Echo")
    app.register_actor(TallyActor, name="Tally")
    for index in range(COMPONENTS):
        app.add_component(f"comp{index}", ("Echo", "Tally"))
    app.client()
    app.settle()
    return kernel, app


def run_scaleout(workers: int) -> dict:
    """The sharded fan-out workload on ``workers`` event loops."""
    kernel, app = _deploy(workers, "memory", None, seed=11)
    client = app.client()
    start = kernel.now

    async def driver(n):
        return await client.invoke(
            None, actor_proxy("Echo", f"a{n % ACTORS}"), "echo", (n,), True
        )

    tasks = [
        kernel.spawn(driver(n), client.process, name=f"driver:{n}")
        for n in range(CALLS)
    ]
    results = kernel.run_until_complete(kernel.gather(tasks), timeout=3600.0)
    kernel.check_no_crashes()
    makespan = kernel.now - start
    lost = sum(1 for n, value in enumerate(results) if value != n + 1)
    busy = {
        worker_id: round(stats["busy_seconds"], 3)
        for worker_id, stats in app.stats()["workers"].items()
    }
    app.shutdown()
    return {
        "workers": workers,
        "calls": CALLS,
        "makespan_s": makespan,
        "calls_per_s": CALLS / makespan,
        "lost_calls": lost,
        "busy_seconds": busy,
    }


def measure_scaling() -> list[dict]:
    return [run_scaleout(workers) for workers in (1, 2, 4)]


def run_kill(mode: str) -> dict:
    """Crash one of two workers mid-workflow; everything settles once."""
    with tempfile.TemporaryDirectory() as root:
        kernel, app = _deploy(2, mode, root, seed=7)
        client = app.client()

        async def workflow(cid):
            ref = actor_proxy("Tally", f"t{cid}")
            for _ in range(KILL_BUMPS):
                await client.invoke(None, ref, "bump", (1,), True)

        tasks = [
            kernel.spawn(workflow(cid), client.process, name=f"wf:{cid}")
            for cid in range(KILL_COUNTERS)
        ]
        kernel.run(until=kernel.now + 0.05)  # workflows mid-flight
        in_flight = len(app.stats("calls")["unsettled"])
        app.kill_worker("w0")
        kernel.run_until_complete(kernel.gather(tasks), timeout=3600.0)
        kernel.run(until=kernel.now + 5.0)
        unsettled_after = len(app.stats("calls")["unsettled"])
        totals = [
            app.run_call(actor_proxy("Tally", f"t{cid}"), "get")
            for cid in range(KILL_COUNTERS)
        ]
        expected = KILL_BUMPS * KILL_COUNTERS
        commit_total = sum(totals)
        app.shutdown()
        return {
            "mode": mode,
            "in_flight_at_kill": in_flight,
            "unsettled_after": unsettled_after,
            "commit_total": commit_total,
            "expected_total": expected,
            "lost_calls": unsettled_after + max(0, expected - commit_total),
            "double_commits": max(0, commit_total - expected),
        }


def measure_kill() -> list[dict]:
    return [run_kill("memory"), run_kill("sqlite")]


def test_throughput_scales_with_worker_count(benchmark):
    rows = benchmark.pedantic(measure_scaling, rounds=1, iterations=1)
    by_workers = {row["workers"]: row for row in rows}
    single = by_workers[1]
    speedup = {
        workers: by_workers[workers]["calls_per_s"] / single["calls_per_s"]
        for workers in (2, 4)
    }

    emit(
        "scaleout.txt",
        render_table(
            ["Workers", "Calls", "Makespan (s)", "Calls/s", "Speedup",
             "Lost"],
            [
                (
                    row["workers"],
                    row["calls"],
                    round(row["makespan_s"], 3),
                    round(row["calls_per_s"], 1),
                    round(
                        row["calls_per_s"] / single["calls_per_s"], 2
                    ),
                    row["lost_calls"],
                )
                for row in rows
            ],
            title=(
                f"Sharded fan-out ({COMPONENTS} components, {ACTORS} "
                f"actors, loop cost {LOOP_COST * 1000:.0f}ms/call): "
                "throughput by worker count"
            ),
            digits=3,
        ),
    )
    benchmark.extra_info["speedup_2w"] = round(speedup[2], 3)
    benchmark.extra_info["speedup_4w"] = round(speedup[4], 3)

    assert all(row["lost_calls"] == 0 for row in rows)
    # The acceptance gates: two loops halve the ceiling, four keep going.
    assert speedup[2] >= 1.5
    assert speedup[4] >= 2.0


def test_worker_kill_mid_workload_settles_exactly_once(benchmark):
    rows = benchmark.pedantic(measure_kill, rounds=1, iterations=1)

    emit(
        "scaleout_kill.txt",
        render_table(
            ["Backend", "In flight at kill", "Unsettled after",
             "Commits", "Expected", "Lost", "Doubled"],
            [
                (
                    row["mode"],
                    row["in_flight_at_kill"],
                    row["unsettled_after"],
                    row["commit_total"],
                    row["expected_total"],
                    row["lost_calls"],
                    row["double_commits"],
                )
                for row in rows
            ],
            title=(
                "Kill one of two workers mid-workflow: exactly-once "
                "settlement by store backend"
            ),
        ),
    )
    for row in rows:
        benchmark.extra_info[f"{row['mode']}_lost_calls"] = row["lost_calls"]

    for row in rows:
        # The kill landed while work was genuinely in flight.
        assert row["in_flight_at_kill"] > 0
        # 100% of in-flight calls settled, exactly once.
        assert row["unsettled_after"] == 0
        assert row["lost_calls"] == 0
        assert row["double_commits"] == 0
        assert row["commit_total"] == row["expected_total"]
