"""Table 2: median round-trip message latency (milliseconds).

Paper values:

                 Direct HTTP  Kafka Only  KAR Actor  KAR Actor (no cache)
    ClusterDev          2.60        4.35       6.62                  7.12
    ClusterProd         2.60       10.62      13.41                 14.31
    Managed             2.60       14.56      15.80                 18.06
"""

from repro.bench import LatencyHarness, PROFILES, render_table

from _shared import LATENCY_ITERATIONS, emit

PAPER = {
    "ClusterDev": (2.60, 4.35, 6.62, 7.12),
    "ClusterProd": (2.60, 10.62, 13.41, 14.31),
    "Managed": (2.60, 14.56, 15.80, 18.06),
}


def _measure_all():
    return [
        LatencyHarness(profile, iterations=LATENCY_ITERATIONS, seed=5).row()
        for profile in PROFILES
    ]


def test_table2_round_trip_latency(benchmark):
    rows = benchmark.pedantic(_measure_all, rounds=1, iterations=1)
    emit(
        "table2_latency.txt",
        render_table(
            ["Config", "Direct HTTP", "Kafka Only", "KAR Actor",
             "KAR Actor (no cache)"],
            rows,
            title=(
                "Table 2: median round trip message latency (ms), "
                f"{LATENCY_ITERATIONS} iterations"
            ),
            digits=2,
        ),
    )
    for name, _http, kafka, kar, nocache in rows:
        benchmark.extra_info[f"{name}_kar_ms"] = round(kar, 2)

    by_name = {row[0]: row[1:] for row in rows}
    for name, (http, kafka, kar, nocache) in by_name.items():
        # Ordering: HTTP < Kafka < KAR < KAR-no-cache, in every config.
        assert http < kafka < kar < nocache, name
        paper_http, paper_kafka, paper_kar, paper_nocache = PAPER[name]
        # Medians land within 10% of the paper's cells.
        assert abs(kafka - paper_kafka) / paper_kafka < 0.10, name
        assert abs(kar - paper_kar) / paper_kar < 0.10, name
        assert abs(nocache - paper_nocache) / paper_nocache < 0.10, name

    # Replicated Kafka costs 4-5.6x direct HTTP (Section 6.2).
    assert 3.5 <= by_name["ClusterProd"][1] / by_name["ClusterProd"][0] <= 6.0
    assert 4.5 <= by_name["Managed"][1] / by_name["Managed"][0] <= 6.5
    # KAR adds < 20% over Kafka Only on Managed (the headline claim).
    assert by_name["Managed"][2] / by_name["Managed"][1] < 1.20
    # The placement cache matters most on Managed (remote Redis).
    deltas = {
        name: row[3] - row[2] for name, row in by_name.items()
    }
    assert deltas["Managed"] > deltas["ClusterProd"] > deltas["ClusterDev"]
