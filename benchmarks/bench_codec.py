"""Codec microbenchmark: binary framing vs the legacy tagged-JSON codec.

The workload is what a journal actually holds under load: ``Request``
envelopes (distinct calls plus recovery copies sharing an immutable core),
their ``Response`` records, and a sprinkle of state dictionaries. Each
codec encodes and decodes the same corpus; the binary framing must clear a
3x throughput floor (it measures ~3.5-4x here) while producing smaller
durable bytes and allocating less per round trip.

Wall-clock throughput is asserted in-bench against the absolute floor; the
regression gate tracks the deterministic metrics (encoded bytes, live
allocation blocks) where runner noise cannot reach.
"""

from __future__ import annotations

import dataclasses
import os
import time
import tracemalloc

from repro.bench import render_table
from repro.core.envelope import Request, Response
from repro.core.refs import ActorRef
from repro.persist import codec
from repro.persist.framing import FrameCache, dumps_frame, loads_frame

from _shared import FULL, emit, maybe_profile

REQUESTS = 400 if FULL else 120
REPEATS = 7  # best-of timing to shed scheduler noise
CODEC_RATIO_FLOOR = 3.0


def build_corpus() -> list:
    """Request-heavy journal traffic under at-least-once delivery: every
    call envelope, a redelivered recovery copy of it (same immutable core,
    bumped retry header -- what the retry orchestrator re-appends), its
    response record, and a sprinkle of persisted state dictionaries."""
    corpus: list = []
    for i in range(REQUESTS):
        request = Request(
            request_id=f"r{i:06d}",
            step=i % 7,
            actor=ActorRef("Order", f"order-{i % 50}"),
            method="reserve_stock" if i % 2 else "charge_card",
            args=(f"sku-{i % 30}", i % 9, i * 0.25),
            return_address=f"r{i - 1:06d}" if i else None,
            reply_to=f"workers#{i % 4}",
            caller_actor=ActorRef("Cart", f"cart-{i % 20}"),
            caller_member=f"workers#{i % 4}",
            ancestors=(f"r{i // 2:06d}",),
        )
        corpus.append(request)
        corpus.append(
            dataclasses.replace(
                request, copy_epoch=1, attempts=1, attempt_log=(float(i),)
            )
        )
        if i % 3 == 0:  # a second redelivery for the unlucky third
            corpus.append(
                dataclasses.replace(
                    request,
                    copy_epoch=2,
                    attempts=2,
                    attempt_log=(float(i), float(i) + 1.0),
                )
            )
        corpus.append(Response(request_id=request.request_id, value=i * 0.25))
        if i % 5 == 0:
            corpus.append(
                {"total": i, "history": [i - 1, i], "flags": ("paid",)}
            )
    return corpus


def _encode_all(corpus, which: str, cache) -> list:
    return [dumps_frame(value, codec=which, cache=cache) for value in corpus]


def _decode_all(frames) -> list:
    return [loads_frame(frame) for frame in frames]


def measure_codec(which: str) -> dict:
    corpus = build_corpus()
    best = float("inf")
    frames: list = []
    for _ in range(REPEATS):
        cache = FrameCache()  # fresh per repeat: no warm-start advantage
        start = time.perf_counter()
        frames = _encode_all(corpus, which, cache)
        decoded = _decode_all(frames)
        best = min(best, time.perf_counter() - start)
        assert decoded == corpus

    tracemalloc.start()
    cache = FrameCache()
    before = tracemalloc.take_snapshot()
    kept = _decode_all(_encode_all(corpus, which, cache))
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    blocks = sum(
        stat.count_diff
        for stat in after.compare_to(before, "filename")
        if stat.count_diff > 0
    )
    del kept

    return {
        "label": which,
        "values": len(corpus),
        "best_seconds": best,
        "per_value_us": best / len(corpus) * 1e6,
        "bytes": sum(len(f) if isinstance(f, bytes) else len(f.encode()) for f in frames),
        "alloc_blocks": blocks,
    }


def measure_all() -> dict:
    return {
        "json": maybe_profile("codec_json", measure_codec, "json"),
        "binary": maybe_profile("codec_binary", measure_codec, "binary"),
    }


def test_binary_codec_beats_tagged_json(benchmark):
    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    json_row, binary_row = rows["json"], rows["binary"]
    ratio = json_row["best_seconds"] / binary_row["best_seconds"]

    emit(
        "codec_microbench.txt",
        render_table(
            ["Codec", "Values", "us/value", "Bytes", "Alloc blocks"],
            [
                (r["label"], r["values"], round(r["per_value_us"], 2),
                 r["bytes"], r["alloc_blocks"])
                for r in (json_row, binary_row)
            ],
            title=(
                f"Encode+decode of {json_row['values']} journal values "
                f"(binary is {ratio:.1f}x faster)"
            ),
            digits=2,
        ),
    )
    benchmark.extra_info["codec_speedup"] = round(ratio, 2)
    benchmark.extra_info["binary_bytes"] = binary_row["bytes"]

    # The acceptance floor: binary framing must be >= 3x the tagged-JSON
    # encode+decode throughput on Request-heavy traffic. Not meaningful
    # under REPRO_PROFILE: cProfile taxes the pure-Python binary path per
    # call while the C json module runs untraced.
    if os.environ.get("REPRO_PROFILE") != "1":
        assert ratio >= CODEC_RATIO_FLOOR, f"binary only {ratio:.2f}x faster"
    # Deterministic wins: smaller durable bytes, fewer allocations.
    assert binary_row["bytes"] < json_row["bytes"] * 0.5
    assert binary_row["alloc_blocks"] < json_row["alloc_blocks"]
