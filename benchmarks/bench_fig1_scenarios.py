"""Figure 1: retry orchestration timelines for a nested call.

The figure enumerates where a failure can land relative to a caller/callee
pair: before the call (2), on the callee (3), on the caller while waiting
(4), with the pending callee cancelled (5), or jointly (6-7). We steer the
formal semantics into each configuration, inject the failure(s) exactly
there, then exhaustively explore every completion and check:

- the run always completes with the correct result (retry guarantee);
- if the callee was live when the caller failed, the callee settles
  (completes or is cancelled) before the caller's retry begins
  (happen-before -- the oblique dashed line in the figure).
"""

from repro.bench import render_table
from repro.semantics import Explorer, RuleEngine, make_monitors
from repro.semantics.examples import nested_call_model

from _shared import emit

CALLER, CALLEE = "caller", "callee"


def apply_rule(engine, state, rule, detail=None):
    """Apply the unique successor with the given rule (steering helper)."""
    matches = [
        labelled
        for labelled in engine.successors(state, allow_failure=True)
        if labelled.rule == rule
        and (detail is None or labelled.detail[: len(detail)] == detail)
    ]
    assert matches, f"no successor for rule {rule!r} / {detail!r}"
    return matches[0].state


def check_happen_before_suffix(trace, callee_live_at_failure):
    """In the post-failure exploration, the caller may only re-begin after
    the callee settled (end or cancel) -- when the callee was live."""
    callee_pending = callee_live_at_failure
    for rule, detail in trace:
        if rule == "end" and detail[1] == CALLEE:
            callee_pending = False
        elif rule in ("cancel", "preempt"):
            callee_pending = False
        elif rule == "begin" and detail[1] == CALLER:
            assert not callee_pending, (
                "caller retried before callee settled:\n"
                + "\n".join(map(str, trace))
            )


def explore_completions(state, cancellation=False, callee_live=False):
    program, _init = nested_call_model()
    explorer = Explorer(
        program, cancellation=cancellation, monitors=make_monitors()
    )
    result = explorer.explore(state)
    assert result.quiescent, "scenario deadlocked"
    for quiescent in result.quiescent:
        response = quiescent.response(0)
        assert response is not None and response.value == 11
    for trace in result.traces:
        check_happen_before_suffix(trace, callee_live)
    return result


def run_scenarios():
    program, init = nested_call_model()
    engine = RuleEngine(program)
    engine_cancel = RuleEngine(program, cancellation=True)

    rows = []

    # (1) no failure: the baseline execution.
    baseline = explore_completions(init)
    rows.append(("(1) no failure", baseline.states_visited))

    # (2) failure hits the caller before the call.
    begun = apply_rule(engine, init, "begin", (0, CALLER))
    failed = apply_rule(engine, begun, "failure", (CALLER,))
    rows.append(
        ("(2) caller fails before call",
         explore_completions(failed).states_visited)
    )

    # Intermediate point: the call has been placed, callee not begun.
    called = apply_rule(engine, begun, "call")

    # (3) failure hits the callee only (while running).
    callee_begun = apply_rule(engine, called, "begin", (1, CALLEE))
    failed = apply_rule(engine, callee_begun, "failure", (CALLEE,))
    rows.append(
        ("(3) callee fails, retried",
         explore_completions(failed).states_visited)
    )

    # (4) failure hits the caller while the callee runs: the callee runs
    # to completion before the caller's retry.
    failed = apply_rule(engine, callee_begun, "failure", (CALLER,))
    rows.append(
        ("(4) caller fails; callee completes first",
         explore_completions(failed, callee_live=True).states_visited)
    )

    # (5) failure hits the caller with the callee still pending; with
    # cancellation enabled the pending callee may be cancelled.
    failed = apply_rule(engine_cancel, called, "failure", (CALLER,))
    result = explore_completions(failed, cancellation=True)
    cancelled_paths = sum(
        1 for trace in result.traces
        if any(rule == "cancel" for rule, _ in trace)
    )
    assert cancelled_paths > 0, "cancellation never fired"
    rows.append(("(5) pending callee cancelled", result.states_visited))

    # (6/7) joint failure: both caller and callee fail; the callee is
    # retried first (happen-before), then the caller.
    failed = apply_rule(engine, callee_begun, "failure", (CALLER,))
    failed = apply_rule(engine, failed, "failure", (CALLEE,))
    rows.append(
        ("(6/7) joint failure, callee retried first",
         explore_completions(failed, callee_live=True).states_visited)
    )

    return rows


def test_fig1_scenario_enumeration(benchmark):
    rows = benchmark.pedantic(run_scenarios, rounds=1, iterations=1)
    emit(
        "fig1_scenarios.txt",
        render_table(
            ["Scenario", "States explored to completion"],
            rows,
            title=(
                "Figure 1: recovery timelines of a nested call "
                "(each scenario steered, then exhaustively completed; "
                "result always 11; happen-before checked on every path)"
            ),
        ),
    )
    benchmark.extra_info["scenarios"] = len(rows)
    assert len(rows) == 6
