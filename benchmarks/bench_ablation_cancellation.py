"""Ablation: cancellation elides work whose caller died (Section 4.4).

A caller fans a blocking call into a busy callee actor; we kill the
caller's component while the request is still queued. With cancellation
enabled the runtime elides the execution and answers synthetically; without
it the orphaned invocation runs to completion ("the computation of a result
that is not needed anymore", Section 3.6).
"""

from repro.bench import render_table
from repro.core import Actor, KarConfig, KarApplication, actor_proxy
from repro.sim import Kernel

from _shared import FULL, emit

RUNS = 10 if FULL else 5


class Fanout(Actor):
    async def start(self, ctx):
        return await ctx.call(actor_proxy("Busy", "worker"), "work", 4.0)


class Busy(Actor):
    executed = 0

    async def work(self, ctx, duration):
        Busy.executed += 1
        await ctx.sleep(duration)
        return "done"

    async def occupy(self, ctx, duration):
        await ctx.sleep(duration)
        return "freed"


def run_once(seed, cancellation):
    Busy.executed = 0
    kernel = Kernel(seed=seed)
    app = KarApplication(
        kernel,
        KarConfig.fast_test().with_overrides(cancellation=cancellation),
    )
    app.register_actor(Fanout)
    app.register_actor(Busy)
    app.add_component("callers", ("Fanout",))
    app.add_component("workers", ("Busy",))
    client = app.client()
    app.settle()
    busy = actor_proxy("Busy", "worker")
    # Occupy the worker so the caller's request stays queued.
    occupier = kernel.spawn(
        client.invoke(None, busy, "occupy", (8.0,), True),
        process=client.process,
    )
    kernel.run(until=kernel.now + 0.5)
    kernel.spawn(
        client.invoke(None, actor_proxy("Fanout", "f"), "start", (), True),
        process=client.process,
    )
    kernel.run(until=kernel.now + 0.5)
    app.kill_component("callers")  # the caller dies with the call queued
    kernel.run_until_complete(occupier, timeout=600.0)
    kernel.run(until=kernel.now + 20.0)
    elided = app.trace.count("invoke.elided")
    return Busy.executed, elided


def _sweep():
    with_cancel = [run_once(seed, True) for seed in range(RUNS)]
    without = [run_once(seed, False) for seed in range(RUNS)]
    return with_cancel, without


def test_cancellation_elides_orphaned_work(benchmark):
    with_cancel, without = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    executed_on = sum(executed for executed, _ in with_cancel)
    elided_on = sum(elided for _, elided in with_cancel)
    executed_off = sum(executed for executed, _ in without)
    elided_off = sum(elided for _, elided in without)
    emit(
        "ablation_cancellation.txt",
        render_table(
            ["Cancellation", "Runs", "Orphaned executions", "Elisions"],
            [
                ("enabled", RUNS, executed_on, elided_on),
                ("disabled", RUNS, executed_off, elided_off),
            ],
            title="Ablation: cancellation of callees whose caller failed",
        ),
    )
    benchmark.extra_info.update(
        executed_with=executed_on, executed_without=executed_off
    )
    assert elided_on > 0
    assert elided_off == 0
    assert executed_on < executed_off  # wasted work avoided
