"""Figure 6: the order-booking workflow, rendered from a live trace.

Books one order end-to-end and prints every actor method invocation with
its call kind (tail call / synchronous call / asynchronous tell), matching
the arrow legend of the paper's figure.
"""

from repro.bench import render_table
from repro.core import KarConfig, actor_proxy
from repro.reefer import ReeferApplication, ReeferConfig
from repro.sim import Kernel

from _shared import emit


def _book_one():
    kernel = Kernel(seed=42)
    reefer = ReeferApplication(
        kernel, KarConfig.fast_test(),
        ReeferConfig(order_rate=0.0, anomaly_rate=0.0),
    )
    reefer.app.settle()
    component = reefer.simulator_component
    spec = {
        "order_id": "O-000001",
        "customer": "acme",
        "product": "bananas",
        "origin": "Elizabeth",
        "destination": "Oakland",
        "quantity": 2,
    }
    task = kernel.spawn(
        component.invoke(
            None, actor_proxy("OrderManager", "singleton"), "book", (spec,),
            True,
        ),
        component.process,
    )
    result = kernel.run_until_complete(task, timeout=120.0)
    return reefer, result


def test_fig6_booking_workflow_trace(benchmark):
    reefer, result = benchmark.pedantic(_book_one, rounds=1, iterations=1)
    assert result["status"] == "booked"

    trace = reefer.app.trace
    chain_id = trace.where("invoke.start", method="book")[0]["request"]
    kinds = {}
    for event in trace.of_kind("invoke.end"):
        key = (event["request"], event["actor"], event["method"])
        kinds[key] = event.get("outcome")

    rows = []
    for event in trace.of_kind("invoke.start"):
        request = event["request"]
        actor, method = event["actor"], event["method"]
        outcome = kinds.get((request, actor, method), "?")
        if request == chain_id:
            arrow = "tail call" if outcome == "tail" else "returns to client"
            lane = "chain"
        else:
            # Distinguish the reentrant sync call from the async tells by
            # the method name (the trace records both).
            lane = "side"
            arrow = {
                "find_voyage": "synchronous call",
                "order_accepted": "reentrant synchronous call",
                "voyage_booked": "asynchronous tell",
                "containers_assigned": "asynchronous tell",
                "containers_moved": "asynchronous tell",
            }.get(method, "invocation")
        rows.append((f"{event.time:8.4f}", actor, method, lane, arrow))

    emit(
        "fig6_workflow.txt",
        render_table(
            ["Time", "Actor", "Method", "Lane", "Kind"],
            rows,
            title="Figure 6: order booking workflow (one order, live trace)",
        ),
    )
    benchmark.extra_info["invocations"] = len(rows)

    chain_methods = [row[2] for row in rows if row[3] == "chain"]
    assert chain_methods == [
        "book", "create", "reserve", "reserve_containers", "booked",
        "order_booked",
    ]
    side_methods = {row[2] for row in rows if row[3] == "side"}
    assert "order_accepted" in side_methods  # the reentrant call
    assert "voyage_booked" in side_methods  # the async tell
    # Five actor types participate, as in the paper.
    actor_types = {row[1].split("[")[0] for row in rows}
    assert {"OrderManager", "Order", "Voyage", "Depot",
            "ScheduleManager"} <= actor_types
