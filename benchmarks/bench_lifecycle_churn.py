"""Actor-churn benchmark: bounded memory under a sea of distinct actor ids.

The paper assumes components can host "as many actors as the application
names"; the ROADMAP's north star is millions of users. This workload names
100k distinct actors (1M with ``REPRO_SCALE=full``) against a single
component with idle passivation enabled and asserts the runtime's resident
footprint -- instances, mailboxes, state caches, and dedup evidence -- stays
bounded by the *working set* (arrival rate x idle window) instead of
growing monotonically with every actor ever touched.

A second phase measures the batched state I/O: ``set_multiple`` of N fields
must cost one store round trip (one ``hset_many``) instead of N.
"""

from __future__ import annotations

from repro.core import Actor, KarApplication, KarConfig, actor_proxy
from repro.mq import BrokerConfig
from repro.sim import Kernel, Latency
from repro.bench import render_table

from _shared import FULL, emit

ACTOR_COUNT = 1_000_000 if FULL else 100_000
SAMPLES = 20
BATCH_FIELDS = 16


class ChurnActor(Actor):
    """Touched once, persists a field, then goes idle forever."""

    async def activate(self, ctx):
        self.seq = await ctx.state.get("seq")

    async def deactivate(self, ctx):
        await ctx.state.set_multiple({"seq": self.seq})

    async def touch(self, ctx, seq):
        self.seq = seq


class BatchActor(Actor):
    async def write_one_by_one(self, ctx, updates):
        for field, value in updates.items():
            await ctx.state.set(field, value)

    async def write_batched(self, ctx, updates):
        await ctx.state.set_multiple(updates)


def churn_config() -> KarConfig:
    return KarConfig.fast_test().with_overrides(
        broker=BrokerConfig(
            produce_latency=Latency.fixed(0.001),
            consume_latency=Latency.fixed(0.0005),
            heartbeat_interval=0.3,
            session_timeout=2.0,
            watchdog_interval=0.25,
            rebalance_join_window=0.2,
            rebalance_sync_latency=Latency.around(0.05, 0.02),
            retention_seconds=20.0,
        ),
        idle_passivation_timeout=2.0,
        maintenance_interval=0.5,
        dedup_retention_slack=5.0,
    )


def run_churn():
    kernel = Kernel(seed=7)
    app = KarApplication(kernel, churn_config())
    app.trace.enabled = False  # bound host memory over millions of events
    app.register_actor(ChurnActor)
    worker = app.add_component("w1", ("ChurnActor",))
    client = app.client()
    app.settle()

    samples: list[tuple[int, int, int, int, int]] = []

    def sample(issued: int) -> None:
        samples.append(
            (
                issued,
                len(worker._instances),
                len(worker._mailboxes),
                len(worker._handled),
                # Tells self-acknowledge into the executing component's own
                # queue, so the settled evidence accrues on the worker.
                len(worker._settled),
            )
        )

    async def drive():
        step = max(ACTOR_COUNT // SAMPLES, 1)
        for index in range(ACTOR_COUNT):
            ref = actor_proxy("ChurnActor", f"c{index}")
            await client.invoke(None, ref, "touch", (index,), False)
            if (index + 1) % step == 0:
                sample(index + 1)

    task = kernel.spawn(drive(), client.process, name="churn-driver")
    kernel.run_until_complete(task, timeout=None)
    # Drain: let in-flight executions finish and idle actors passivate.
    deadline = kernel.now + 120.0
    while worker._instances and kernel.now < deadline:
        kernel.run(until=kernel.now + 1.0)
    kernel.run(until=kernel.now + 30.0)  # dedup horizon passes
    sample(ACTOR_COUNT)
    return app, worker, client, samples


def test_lifecycle_churn_bounded_memory(benchmark):
    app, worker, client, samples = benchmark.pedantic(
        run_churn, rounds=1, iterations=1
    )

    emit(
        "lifecycle_churn.txt",
        render_table(
            ["issued", "instances", "mailboxes", "handled", "settled"],
            samples,
            title=(
                f"Lifecycle churn: {ACTOR_COUNT} distinct actors, idle "
                "timeout 2s (resident counts per progress sample)"
            ),
        ),
    )

    peak_instances = max(row[1] for row in samples)
    peak_mailboxes = max(row[2] for row in samples)
    peak_handled = max(row[3] for row in samples)
    peak_settled = max(row[4] for row in samples)
    benchmark.extra_info["peak_instances"] = peak_instances
    benchmark.extra_info["peak_handled"] = peak_handled
    benchmark.extra_info["passivations"] = worker.passivations

    # Bounded: the peak resident footprint is a small fraction of the
    # actors ever named -- the working set, not the lifetime history.
    assert peak_instances < ACTOR_COUNT * 0.05
    assert peak_mailboxes < ACTOR_COUNT * 0.05
    assert peak_handled < ACTOR_COUNT * 0.25
    assert peak_settled < ACTOR_COUNT * 0.25

    # Flat, not monotonically growing: the later half of the run must not
    # sit above the steady state the first half established.
    mid = len(samples) // 2
    early_peak = max(row[1] for row in samples[:mid])
    late_peak = max(row[1] for row in samples[mid:])
    assert late_peak <= early_peak * 1.5 + 50

    # Everything passivated and swept once the workload drained.
    final = samples[-1]
    assert final[1] == 0 and final[2] == 0
    assert worker.passivations >= ACTOR_COUNT  # every actor evicted
    assert worker._handled.swept_total > 0
    assert worker._settled.swept_total > 0


def test_set_multiple_single_round_trip(benchmark):
    def run():
        kernel = Kernel(seed=11)
        app = KarApplication(kernel, KarConfig.fast_test())
        app.register_actor(BatchActor)
        app.add_component("w1", ("BatchActor",))
        app.client()
        app.settle()
        ref = actor_proxy("BatchActor", "b")
        updates = {f"f{i}": i for i in range(BATCH_FIELDS)}

        app.run_call(ref, "write_batched", {"warm": 0})  # place + activate
        before_ops = app.store.operation_count
        start = kernel.now
        app.run_call(ref, "write_one_by_one", updates)
        loop_ops = app.store.operation_count - before_ops
        loop_latency = kernel.now - start

        before_ops = app.store.operation_count
        start = kernel.now
        app.run_call(ref, "write_batched", updates)
        batched_ops = app.store.operation_count - before_ops
        batched_latency = kernel.now - start
        return loop_ops, loop_latency, batched_ops, batched_latency

    loop_ops, loop_latency, batched_ops, batched_latency = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "lifecycle_batched_state.txt",
        render_table(
            ["variant", "store ops", "latency (ms)"],
            [
                ("set x N", loop_ops, loop_latency * 1000),
                ("set_multiple", batched_ops, batched_latency * 1000),
            ],
            title=f"State write of {BATCH_FIELDS} fields: per-field vs batched",
            digits=3,
        ),
    )
    benchmark.extra_info["batched_ops"] = batched_ops
    assert loop_ops == BATCH_FIELDS
    assert batched_ops == 1  # one RTT regardless of field count
    # End-to-end invocation latency includes a fixed floor (sidecar hops,
    # produce round trip), so the 16x RTT reduction shows as >2x overall.
    assert batched_latency < loop_latency / 2
