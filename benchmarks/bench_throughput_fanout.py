"""Fan-in throughput: the send outbox amortizes produce round trips.

32 concurrent clients hammer actors hosted by a single worker component --
the "dedicated message queue per component" design of Section 4.1 taken to
its RTT-bound extreme: every request and every response is one broker
record, and before the batched transport each record paid one full produce
round trip. With the outbox, envelopes accumulated within ``send_linger``
coalesce into one ``produce_batch`` round trip per flush.

Three transports over the identical workload:

- **unbatched** -- ``send_batch_max=1``: one produce round trip per record,
  the pre-refactor accounting (sanity-checked: round trips == records);
- **coalesce** -- default ``send_linger=0.0``: only same-event-loop-turn
  sends batch, zero added latency;
- **linger 2ms** -- ``send_linger=0.002``: bursts within the window batch.

The unbatched transport's *round-trip count* is the pre-refactor number
(exactly one produce per record); its latency column overstates the old
transport, whose per-caller sends overlapped, so compare latency between
the two batched rows and round trips against the unbatched row.
"""

from __future__ import annotations

import gc
import tempfile
import tracemalloc

from repro.core import Actor, KarApplication, KarConfig, actor_proxy
from repro.persist import PersistenceConfig
from repro.sim import Kernel
from repro.bench import render_table

from _shared import FULL, emit, maybe_profile

FAN_IN = 32
CALLS = 60 if FULL else 15
STATE_CALLS = 30 if FULL else 8


class EchoActor(Actor):
    async def echo(self, ctx, payload):
        return payload


class LedgerActor(Actor):
    """A stateful actor: every call reads and writes persisted state."""

    async def add(self, ctx, amount):
        total = await ctx.state.get("total", 0)
        await ctx.state.set_multiple({"total": total + amount, "last": amount})
        return total + amount


def run_fanout(label: str, **overrides) -> dict:
    kernel = Kernel(seed=11)
    config = KarConfig.fast_test().with_overrides(**overrides)
    app = KarApplication(kernel, config)
    app.register_actor(EchoActor, name="Echo")
    app.add_component("workers", ("Echo",))
    client = app.client()
    app.settle()

    refs = [actor_proxy("Echo", f"a{i}") for i in range(FAN_IN)]
    samples: list[float] = []
    round_trips_before = app.broker.produce_count
    records_before = app.broker.produce_record_count

    async def driver(ref):
        for _ in range(CALLS):
            start = kernel.now
            await client.invoke(None, ref, "echo", ("x",), True)
            samples.append(kernel.now - start)

    tasks = [
        kernel.spawn(driver(ref), client.process, name=f"driver:{ref.id}")
        for ref in refs
    ]
    kernel.run_until_complete(kernel.gather(tasks), timeout=3600.0)
    kernel.check_no_crashes()
    samples.sort()
    stats = app.stats("transport")
    return {
        "label": label,
        "round_trips": app.broker.produce_count - round_trips_before,
        "records": app.broker.produce_record_count - records_before,
        "largest_batch": stats["largest_batch"],
        "median_ms": samples[len(samples) // 2] * 1000.0,
    }


def measure_all():
    return [
        run_fanout("unbatched (batch_max=1)", send_batch_max=1),
        run_fanout("coalesce (linger=0)"),
        run_fanout("linger 2ms", send_linger=0.002),
    ]


def run_stateful(label: str, codec: str, **overrides) -> dict:
    """The stateful fan-in: every call pays store reads and writes, over
    real sqlite persistence, so store round trips and durable bytes move.

    Runs under tracemalloc so each row reports its allocation count; the
    tracer's slowdown hits every row identically and simulated time cannot
    see it.
    """
    import os
    import time

    with tempfile.TemporaryDirectory() as root:
        kernel = Kernel(seed=12)
        config = KarConfig.fast_test().with_overrides(
            persistence=PersistenceConfig.sqlite(root, codec=codec),
            **overrides,
        )
        app = KarApplication.fresh(kernel, config, name="fanout")
        app.register_actor(LedgerActor, name="Ledger")
        app.add_component("workers", ("Ledger",))
        client = app.client()
        app.settle()

        refs = [actor_proxy("Ledger", f"l{i}") for i in range(FAN_IN)]
        samples: list[float] = []
        expected = sum(range(STATE_CALLS))
        rts_before = app.store.round_trips

        async def driver(ref):
            total = 0
            for n in range(STATE_CALLS):
                start = kernel.now
                total = await client.invoke(None, ref, "add", (n,), True)
                samples.append(kernel.now - start)
            assert total == expected

        gc.collect()
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        wall_start = time.perf_counter()
        tasks = [
            kernel.spawn(driver(ref), client.process, name=f"driver:{ref.id}")
            for ref in refs
        ]
        kernel.run_until_complete(kernel.gather(tasks), timeout=3600.0)
        wall_seconds = time.perf_counter() - wall_start
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        kernel.check_no_crashes()

        samples.sort()
        calls = len(samples)
        alloc_blocks = sum(
            stat.count_diff
            for stat in after.compare_to(before, "filename")
            if stat.count_diff > 0
        )
        journal_bytes = os.path.getsize(os.path.join(root, "fanout.journal"))
        stats = app.stats("store")
        app.shutdown()
        return {
            "label": label,
            "store_round_trips": app.store.round_trips - rts_before,
            "largest_pipeline_batch": stats["largest_pipeline_batch"],
            "median_ms": samples[calls // 2] * 1000.0,
            "alloc_blocks_per_call": alloc_blocks / calls,
            "journal_bytes": journal_bytes,
            "wall_seconds": wall_seconds,
        }


def measure_stateful():
    return [
        run_stateful(
            "legacy (json, unpipelined)", codec="json", store_pipeline=False
        ),
        run_stateful("pipelined (json)", codec="json"),
        run_stateful("pipelined (binary)", codec="binary"),
    ]


def test_fanout_batching_amortizes_produce_round_trips(benchmark):
    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    by_label = {row["label"]: row for row in rows}
    unbatched = by_label["unbatched (batch_max=1)"]
    coalesce = by_label["coalesce (linger=0)"]
    linger = by_label["linger 2ms"]

    emit(
        "throughput_fanout.txt",
        render_table(
            ["Transport", "Produce RTs", "Records", "Largest batch",
             "Median call (ms)"],
            [
                (r["label"], r["round_trips"], r["records"],
                 r["largest_batch"], round(r["median_ms"], 3))
                for r in rows
            ],
            title=(
                f"Fan-in {FAN_IN} x {CALLS} calls through one worker: "
                "produce round trips by transport"
            ),
            digits=3,
        ),
    )
    benchmark.extra_info["unbatched_round_trips"] = unbatched["round_trips"]
    benchmark.extra_info["linger_round_trips"] = linger["round_trips"]

    # Identical workload: the same records land under every transport.
    assert unbatched["records"] == coalesce["records"] == linger["records"]
    # send_batch_max=1 restores the pre-refactor accounting exactly: one
    # produce round trip per appended record.
    assert unbatched["round_trips"] == unbatched["records"]
    # Headline: the lingered outbox needs >= 3x fewer round trips at
    # fan-in 32 (in practice it is closer to the fan-in factor itself).
    assert unbatched["round_trips"] >= 3 * linger["round_trips"]
    assert linger["largest_batch"] > 1
    # Zero linger already coalesces same-instant bursts for free.
    assert coalesce["round_trips"] <= unbatched["round_trips"]


def test_stateful_pipeline_and_binary_codec_cut_store_costs(benchmark):
    rows = benchmark.pedantic(
        lambda: maybe_profile("fanout_stateful", measure_stateful),
        rounds=1,
        iterations=1,
    )
    by_label = {row["label"]: row for row in rows}
    legacy = by_label["legacy (json, unpipelined)"]
    piped = by_label["pipelined (json)"]
    binary = by_label["pipelined (binary)"]

    emit(
        "throughput_fanout_stateful.txt",
        render_table(
            ["Configuration", "Store RTs", "Largest batch",
             "Median call (ms)", "Allocs/call", "Journal bytes"],
            [
                (r["label"], r["store_round_trips"],
                 r["largest_pipeline_batch"], round(r["median_ms"], 3),
                 round(r["alloc_blocks_per_call"], 1), r["journal_bytes"])
                for r in rows
            ],
            title=(
                f"Stateful fan-in {FAN_IN} x {STATE_CALLS} calls over sqlite "
                "persistence: store round trips, latency, and durable bytes"
            ),
            digits=3,
        ),
    )
    benchmark.extra_info["legacy_store_round_trips"] = (
        legacy["store_round_trips"]
    )
    benchmark.extra_info["pipelined_store_round_trips"] = (
        piped["store_round_trips"]
    )
    benchmark.extra_info["binary_journal_bytes"] = binary["journal_bytes"]

    # Headline: same-turn coalescing needs >= 3x fewer store round trips
    # (in practice it is close to the fan-in factor itself).
    assert legacy["store_round_trips"] >= 3 * piped["store_round_trips"]
    assert piped["largest_pipeline_batch"] > 1
    # Store connections are serial per client, so fewer round trips is
    # fewer queueing turns: median call latency must improve.
    assert piped["median_ms"] < legacy["median_ms"]
    # The codec changes bytes, not round trips.
    assert binary["store_round_trips"] == piped["store_round_trips"]
    # Binary framing at least halves the durable journal.
    assert binary["journal_bytes"] < piped["journal_bytes"] * 0.5
