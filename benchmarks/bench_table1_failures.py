"""Table 1: summary statistics for the single-node-failure campaign.

Paper values (seconds), for 1,000 failures over 48 hours:

                  Average  StdDev  Median     Min     Max
    Total Outage   22.139   2.114  22.015  16.117  31.207
    Detection       9.053   0.907   9.084   7.217  11.022
    Consensus       2.437   0.086   2.443   2.232   3.197
    Reconciliation 10.649   1.967   9.098   6.019  21.035
"""

from repro.bench import render_table

from _shared import SINGLE_FAILURES, emit, single_failure_campaign


def test_table1_failure_phase_statistics(benchmark):
    result = benchmark.pedantic(
        single_failure_campaign, rounds=1, iterations=1
    )
    assert not result.invariant_violations, result.invariant_violations
    assert len(result.records) == SINGLE_FAILURES

    stats = result.phase_stats()
    rows = [
        (name, s["avg"], s["std"], s["median"], s["min"], s["max"])
        for name, s in stats.items()
    ]
    emit(
        "table1_failures.txt",
        render_table(
            ["Phase (s)", "Average", "StdDev", "Median", "Min", "Max"],
            rows,
            title=(
                f"Table 1: summary statistics for {len(result.records)} "
                f"single-node failures"
            ),
        ),
    )
    total = stats["Total Outage"]
    benchmark.extra_info.update(
        failures=len(result.records),
        total_avg=round(total["avg"], 3),
        detection_avg=round(stats["Detection"]["avg"], 3),
        consensus_avg=round(stats["Consensus"]["avg"], 3),
        reconciliation_avg=round(stats["Reconciliation"]["avg"], 3),
        sim_seconds=round(result.sim_seconds),
    )

    # Shape assertions against the paper.
    assert 15.0 <= total["avg"] <= 30.0  # paper: 22.1
    assert 7.0 <= stats["Detection"]["avg"] <= 11.0  # paper: 9.05
    assert 2.0 <= stats["Consensus"]["avg"] <= 3.5  # paper: 2.44
    assert 5.0 <= stats["Reconciliation"]["avg"] <= 18.0  # paper: 10.6
    # Reconciliation is just under half of total outage (Section 6.1).
    assert 0.3 <= stats["Reconciliation"]["avg"] / total["avg"] <= 0.6
