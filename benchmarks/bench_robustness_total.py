"""Section 6.1's complete-application-failure scenario.

"We performed 500 iterations of a complete application failure scenario
where all application and runtime processes except the simulator were
killed abruptly and then restarted after waiting for 30 seconds."
"""

from repro.bench import render_table
from repro.bench.failure_harness import run_total_failure_iterations

from _shared import TOTAL_FAILURE_ITERATIONS, emit


def test_total_application_failure(benchmark):
    outcome = benchmark.pedantic(
        lambda: run_total_failure_iterations(
            seed=99, iterations=TOTAL_FAILURE_ITERATIONS
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "robustness_total.txt",
        render_table(
            ["Iterations", "Recovered", "Orders", "Violations"],
            [(
                outcome["iterations"],
                outcome["recovered"],
                outcome["details"].get("orders_submitted"),
                len(outcome["violations"]),
            )],
            title=(
                "Complete application failure: kill everything but the "
                "simulators, wait 30 s, restart"
            ),
        ),
    )
    benchmark.extra_info.update(
        iterations=outcome["iterations"], recovered=outcome["recovered"]
    )
    assert outcome["recovered"] == outcome["iterations"]
    assert not outcome["violations"], outcome["violations"]
