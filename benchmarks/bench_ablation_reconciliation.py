"""Ablation: reconciliation time scales with the unexpired message backlog.

Section 4.3: "Reconciliation time increases with the number of recent
messages hence application components. So for larger scale systems, a
different implementation may be necessary." We sweep the order rate (which
sets the retained backlog) and measure mean reconciliation time.
"""

from repro.bench import FailureCampaign, render_table
from repro.reefer import ReeferConfig

from _shared import FULL, emit

RATES = (0.2, 0.5, 1.0, 2.0) if FULL else (0.2, 0.6, 1.2)
FAILURES = 8 if FULL else 4


def _sweep():
    rows = []
    for rate in RATES:
        campaign = FailureCampaign(
            seed=123,
            failures=FAILURES,
            reefer_config=ReeferConfig(
                order_rate=rate, anomaly_rate=0.0, containers_per_depot=400
            ),
            min_gap=60.0,
            max_gap=90.0,
        )
        result = campaign.run()
        assert not result.invariant_violations, result.invariant_violations
        stats = result.phase_stats()["Reconciliation"]
        rows.append((rate, result.orders_submitted, stats["avg"],
                     stats["max"]))
    return rows


def test_reconciliation_scales_with_backlog(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "ablation_reconciliation.txt",
        render_table(
            ["Order rate (/s)", "Orders", "Reconciliation avg (s)",
             "Reconciliation max (s)"],
            rows,
            title="Ablation: reconciliation time vs message backlog",
            digits=2,
        ),
    )
    averages = [row[2] for row in rows]
    benchmark.extra_info["averages"] = [round(a, 2) for a in averages]
    # Monotone growth with the injected load.
    assert averages == sorted(averages)
    assert averages[-1] > averages[0] * 1.2
