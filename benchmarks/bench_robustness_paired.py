"""Section 6.1's paired-failure robustness scenario.

"We verified that KAR can robustly handle failures during recovery by
injecting 1,000 paired node failures where the second failure was timed to
occur during the consensus or reconciliation phases of recovery."
"""

from repro.bench import render_table

from _shared import PAIRED_FAILURES, emit, paired_failure_campaign


def test_paired_failures_during_recovery(benchmark):
    result = benchmark.pedantic(
        paired_failure_campaign, rounds=1, iterations=1
    )
    assert not result.invariant_violations, result.invariant_violations

    stats = result.phase_stats()
    rows = [
        (name, s["avg"], s["median"], s["min"], s["max"])
        for name, s in stats.items()
    ]
    emit(
        "robustness_paired.txt",
        render_table(
            ["Phase (s)", "Average", "Median", "Min", "Max"],
            rows,
            title=(
                f"Paired failures: {len(result.records)} incidents with a "
                "second node killed during recovery (no invariant "
                "violations)"
            ),
        ),
    )
    benchmark.extra_info.update(
        incidents=len(result.records),
        orders=result.orders_submitted,
    )
    # Every injected incident eventually recovered.
    assert len(result.records) == PAIRED_FAILURES
    # Paired recoveries take longer than the single-failure baseline.
    assert stats["Total Outage"]["avg"] > 15.0
