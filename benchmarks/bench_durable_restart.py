"""Cold crash-restart recovery over durable persistence backends.

The paper's Table 1 failure suite kills components inside a live process;
this benchmark exercises the recovery story the journals actually promise
(Section 4.3): *every* application process dies mid-workflow -- taking all
in-memory dedup evidence, placement caches, and pending futures with it --
and a brand-new application is rebuilt purely from the persistence layer.
With the SQLite store + file-journal broker log, that reconstruction crosses
a real serialization boundary (bytes on disk), exactly what a new OS process
would read after a crash.

Measured per backend: records replayed, reconciliation copies, recovery
time (simulated seconds from reopen until every in-flight call settled),
and the exactly-once evidence -- per-actor commit totals must equal the
workflow count precisely, and the journal must retain completion evidence
for every request id it retains a request for.
"""

from __future__ import annotations

import shutil
import tempfile

from repro.bench import render_table
from repro.core import Actor, KarApplication, KarConfig, actor_proxy
from repro.persist import PersistenceConfig
from repro.sim import Kernel

from _shared import FULL, emit

WORKFLOWS = 400 if FULL else 40
HOPS = 4
TALLIES = 8
CRASH_AT = 0.035  # seconds of simulated time before the process dies


class Flow(Actor):
    async def start(self, ctx, wid, hops):
        target = actor_proxy("Tally", f"t{wid % TALLIES}")
        return ctx.tail_call(target, "add", wid, hops)


class Tally(Actor):
    """Exactly-once counting via the read-then-tail-write discipline."""

    async def add(self, ctx, wid, hops):
        total = await ctx.state.get("total", 0)
        return ctx.tail_call(None, "commit", wid, hops, total + 1)

    async def commit(self, ctx, wid, hops, new_total):
        await ctx.state.set_multiple({"total": new_total, f"done:{wid}": True})
        if hops > 1:
            return ctx.tail_call(
                actor_proxy("Flow", f"f{wid}"), "start", wid, hops - 1
            )
        return "done"

    async def report(self, ctx):
        return await ctx.state.get("total", 0)


def _deploy(app):
    app.register_actor(Flow)
    app.register_actor(Tally)
    app.add_component("w1", ("Flow", "Tally"))
    app.add_component("w2", ("Flow", "Tally"))
    app.client()
    app.settle()


def run_restart(mode: str) -> dict:
    root = tempfile.mkdtemp(prefix="repro-durable-")
    try:
        persistence = (
            PersistenceConfig(mode="sqlite", root=root)
            if mode == "sqlite"
            else PersistenceConfig()
        )
        config = KarConfig.fast_test().with_overrides(persistence=persistence)
        kernel = Kernel(seed=31)
        app = KarApplication.fresh(kernel, config, name="restart")
        _deploy(app)
        client = app.client()

        completed_before: list[int] = []

        async def drive(wid):
            ref = actor_proxy("Flow", f"f{wid}")
            await client.invoke(None, ref, "start", (wid, HOPS), True)
            completed_before.append(wid)

        for wid in range(WORKFLOWS):
            kernel.spawn(drive(wid), client.process, name=f"wf{wid}")
        kernel.run(until=kernel.now + CRASH_AT)

        in_flight = len(app.stats("calls")["unsettled"])
        app.shutdown()  # the whole process dies, mid-workflow

        app2 = app.reopen()
        reopen_at = kernel.now
        _deploy(app2)
        deadline = kernel.now + 600.0
        while app2.stats("calls")["unsettled"] and kernel.now < deadline:
            kernel.run(until=kernel.now + 0.5)
        unsettled_after = len(app2.stats("calls")["unsettled"])
        recovery_seconds = kernel.now - reopen_at

        totals = [
            app2.run_call(actor_proxy("Tally", f"t{i}"), "report")
            for i in range(TALLIES)
        ]
        copies = app2.trace.count("reconcile.copy")
        journal_stats = app2.stats("persistence")
        kernel.check_no_crashes()
        app2.shutdown()  # release file handles before the tmp dir vanishes
        return {
            "mode": mode,
            "in_flight_at_crash": in_flight,
            "completed_before": len(completed_before),
            "replayed_records": app2.restored_records,
            "reconcile_copies": copies,
            "recovery_seconds": recovery_seconds,
            "unsettled_after": unsettled_after,
            "commit_total": sum(totals),
            "expected_total": WORKFLOWS * HOPS,
            "journal": journal_stats,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def measure_all() -> list[dict]:
    return [run_restart("memory"), run_restart("sqlite")]


def test_cold_restart_settles_every_call_exactly_once(benchmark):
    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    emit(
        "durable_restart.txt",
        render_table(
            [
                "Backend",
                "In flight",
                "Replayed",
                "Copies",
                "Recovery (s)",
                "Unsettled",
                "Commits",
            ],
            [
                (
                    r["mode"],
                    r["in_flight_at_crash"],
                    r["replayed_records"],
                    r["reconcile_copies"],
                    round(r["recovery_seconds"], 2),
                    r["unsettled_after"],
                    f"{r['commit_total']}/{r['expected_total']}",
                )
                for r in rows
            ],
            title=(
                f"Cold crash-restart: {WORKFLOWS} workflows x {HOPS} hops, "
                f"process killed at t={CRASH_AT}s"
            ),
            digits=2,
        ),
    )

    for row in rows:
        # The crash genuinely interrupted work, and recovery replayed a
        # journal rather than an empty broker.
        assert row["in_flight_at_crash"] > 0
        assert row["replayed_records"] > 0
        # Acceptance: 100% of in-flight calls settle, and the dedup /
        # retention evidence shows exactly-once effects -- every workflow
        # hop committed exactly one increment.
        assert row["unsettled_after"] == 0
        assert row["commit_total"] == row["expected_total"]

    sqlite_row = rows[1]
    benchmark.extra_info["sqlite_recovery_seconds"] = sqlite_row[
        "recovery_seconds"
    ]
    benchmark.extra_info["sqlite_replayed_records"] = sqlite_row[
        "replayed_records"
    ]
