"""Retry-storm protection: goodput under a poison-pill crash loop.

An open-loop steady workload (first attempts, fixed arrival rate) shares a
component with poison-pill jobs that crash the component mid-method. Every
crash triggers failure detection, an expensive reconciliation (the
per-message scan cost is amplified to model a busy production log), and a
redelivery of the poison request -- which crashes the component again: the
unprotected runtime rides this crash-reconcile loop for the whole window
and steady goodput collapses.

With the overload guards on, the reconciler's redelivery cap parks the
poison requests in the dead-letter topic after ``redelivery_limit`` crash
cycles, the component stays up, and the steady backlog drains. After the
measurement window the fault is healed and the parked letters are replayed:
the acceptance criterion is *zero lost calls* -- every call either settled
exactly once during the run or settles exactly once on replay.

Gated by the CI regression runner: guards-on goodput must be at least 3x
guards-off, and no call may be lost. All numbers come from the seeded
deterministic simulation, so they are exact.
"""

from __future__ import annotations

from repro.bench import render_table
from repro.core import Actor, KarApplication, KarConfig, actor_proxy
from repro.sim import Kernel

from _shared import FULL, emit

WINDOW = 120.0 if FULL else 30.0  # seconds of simulated measurement time
INTERVAL = 0.025  # steady arrivals: one call every 25 ms (40/s, open loop)
POISON_AT = 3.0  # poison jobs land once the steady flow is established
POISON_JOBS = 2
SUPERVISOR_TICK = 0.25  # host-side restart loop cadence
DRAIN_TIMEOUT = 600.0
SEED = 2306

GUARDS_ON = dict(
    breaker_threshold=5,
    breaker_cooldown=5.0,
    redelivery_limit=3,
    mailbox_capacity=64,
)


class Steady(Actor):
    async def ping(self, ctx, n):
        return n


class PoisonJob(Actor):
    healed = False

    async def run(self, ctx, job):
        if not PoisonJob.healed:
            ctx._component.fail()  # crash the hosting component mid-method
            await ctx.sleep(3600.0)  # never reached; the process is dead
        return f"done:{job}"


def _p99(latencies: list[float]) -> float:
    if not latencies:
        return float("inf")
    ordered = sorted(latencies)
    return ordered[int(0.99 * (len(ordered) - 1))]


def run_storm(guards: bool) -> dict:
    PoisonJob.healed = False
    overrides: dict = {"reconcile_per_message": 0.002}
    overrides.update(GUARDS_ON if guards else {"overload_guard": False})
    config = KarConfig.fast_test().with_overrides(**overrides)
    kernel = Kernel(seed=SEED)
    app = KarApplication.fresh(kernel, config, name="storm")
    steady_name = app.register_actor(Steady)
    poison_name = app.register_actor(PoisonJob)
    app.add_component("victim", (steady_name, poison_name))
    client = app.client()
    app.settle()

    total = int(WINDOW / INTERVAL)
    completions: list[tuple[float, float]] = []  # (issued, settled)
    tasks = []

    async def steady_call(index: int, issued: float):
        ref = actor_proxy(steady_name, f"s{index % 8}")
        await client.invoke(None, ref, "ping", (index,), True)
        completions.append((issued, kernel.now))

    async def load():
        for index in range(total):
            tasks.append(
                kernel.spawn(
                    steady_call(index, kernel.now),
                    client.process,
                    name=f"steady{index}",
                )
            )
            await kernel.sleep(INTERVAL)

    async def poison_call(job: int):
        ref = actor_proxy(poison_name, f"p{job}")
        await client.invoke(None, ref, "run", (job,), True)

    kernel.spawn(load(), client.process, name="load")
    start = kernel.now
    window_end = start + WINDOW
    poison_tasks = []
    restarts = 0
    while kernel.now < window_end:
        if not poison_tasks and kernel.now >= start + POISON_AT:
            poison_tasks = [
                kernel.spawn(
                    poison_call(job), client.process, name=f"poison{job}"
                )
                for job in range(POISON_JOBS)
            ]
        if not app.components["victim"].alive:
            app.restart_component("victim")
            restarts += 1
        kernel.run(until=min(kernel.now + SUPERVISOR_TICK, window_end))

    in_window = [(i, s) for i, s in completions if s <= window_end]
    goodput = len(in_window) / WINDOW
    p99 = _p99([settled - issued for issued, settled in in_window])
    storm_stats = app.stats("overload")

    # Heal the fault, replay anything parked, and drain: the zero-loss
    # acceptance -- every issued call settles exactly once eventually.
    PoisonJob.healed = True
    deadline = kernel.now + DRAIN_TIMEOUT
    replayed = 0
    while kernel.now < deadline:
        if not app.components["victim"].alive:
            app.restart_component("victim")
            restarts += 1
        if app.stats("overload")["dead_letter_depth"]:
            replayed += app.redeliver_dead_letters()["replayed"]
        if not app.stats("calls")["unsettled"] and all(
            t.done() for t in tasks + poison_tasks
        ):
            break
        kernel.run(until=kernel.now + SUPERVISOR_TICK)

    final_stats = app.stats("overload")
    lost = (
        len([t for t in tasks + poison_tasks if not t.done()])
        + len(app.stats("calls")["unsettled"])
        + final_stats["dead_letter_depth"]
    )
    return {
        "label": "guards on" if guards else "guards off",
        "goodput_per_s": goodput,
        "p99_s": p99,
        "completed_in_window": len(in_window),
        "issued": len(tasks),
        "restarts": restarts,
        "parked": final_stats.get("parked", 0),
        "replayed": replayed,
        "lost": lost,
        "storm_dead_letter_depth": storm_stats["dead_letter_depth"],
    }


def measure_all() -> dict:
    on = run_storm(guards=True)
    off = run_storm(guards=False)
    ratio = (
        on["goodput_per_s"] / off["goodput_per_s"]
        if off["goodput_per_s"]
        else float("inf")
    )
    return {"on": on, "off": off, "goodput_ratio": ratio}


def test_overload_guards_protect_goodput_under_storm(benchmark):
    result = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    on, off = result["on"], result["off"]

    emit(
        "overload_storm.txt",
        render_table(
            [
                "Mode",
                "Goodput/s",
                "p99 (s)",
                "Completed",
                "Restarts",
                "Parked",
                "Replayed",
                "Lost",
            ],
            [
                (
                    row["label"],
                    round(row["goodput_per_s"], 2),
                    round(row["p99_s"], 3),
                    f"{row['completed_in_window']}/{row['issued']}",
                    row["restarts"],
                    row["parked"],
                    row["replayed"],
                    row["lost"],
                )
                for row in (on, off)
            ],
            title=(
                f"Retry storm: {POISON_JOBS} poison jobs vs 40 calls/s for "
                f"{WINDOW:.0f}s (goodput ratio "
                f"{result['goodput_ratio']:.1f}x)"
            ),
            digits=3,
        ),
    )
    benchmark.extra_info.update(
        goodput_ratio=result["goodput_ratio"],
        goodput_on=on["goodput_per_s"],
        goodput_off=off["goodput_per_s"],
    )

    # The storm genuinely suppressed the unprotected run ...
    assert off["restarts"] > on["restarts"]
    # ... guards kept at least 3x the goodput through the same fault ...
    assert result["goodput_ratio"] >= 3.0
    # ... the poison requests were parked with their histories ...
    assert on["parked"] >= POISON_JOBS
    assert on["replayed"] >= POISON_JOBS
    # ... and nothing was lost on either side: every call either settled
    # during the run or settled exactly once on replay after the heal.
    assert on["lost"] == 0
    assert off["lost"] == 0
