"""Serving-edge load: zipfian traffic over the live HTTP gateway.

Unlike every other benchmark in this suite, the client side here is real:
requests travel through actual TCP sockets and the hand-rolled HTTP/1.1
parser before entering the simulated runtime via the kernel bridge. The
workload touches a large population of *distinct* actor keys exactly once
each (the cold sweep -- placement entry, activation, state write per key)
interleaved with a zipfian hot set that keeps a small core of actors
resident and busy.

Each call increments a per-key counter with a state write; the counter is
serialized by the actor mailbox, so the stream of values returned for one
key must be exactly ``1..n`` for ``n`` requests -- the response sum gives a
closed-form exactly-once check (``n*(n+1)/2``) with O(1) memory per key.
Lost calls are counted from the wire: every request must come back HTTP 200.

Gates (in ``run_bench_regression.py``): zero lost calls and the full
distinct-key population served, unconditionally; wall-clock throughput
against a deliberately conservative absolute floor (real-socket numbers
vary with runner hardware, so the floor catches collapses, not jitter --
the measured rate is tracked as an informational metric).
"""

from __future__ import annotations

import asyncio
import json
import random
import time

from repro.bench import render_table
from repro.core import Actor, KarApplication, KarConfig
from repro.net import KarGateway
from repro.sim import Kernel

from _shared import FULL, emit

#: Distinct actor keys swept exactly once each (the acceptance criterion
#: runs the full population; the pytest layer keeps CI's bench job quick).
KEYS = 100_000 if FULL else 4_000
#: Zipfian draws over the hot set, interleaved with the cold sweep.
HOT_DRAWS_RATIO = 0.25
#: Hot-set size and skew (s=1.1 concentrates ~half the draws on ~40 keys).
HOT_SET = 512
ZIPF_S = 1.1
#: Concurrent keep-alive connections, each with one request in flight.
CONNECTIONS = 64
#: Components hosting the actor population.
COMPONENTS = 4

#: Conservative absolute wall-clock floor (requests/second) -- a collapse
#: detector, not a performance target.
THROUGHPUT_FLOOR = 300.0


class HitCounter(Actor):
    """Per-key counter with a persisted write on every call."""

    async def hit(self, ctx):
        total = await ctx.state.get("n", 0) + 1
        await ctx.state.set("n", total)
        return total


def _schedule(keys: int, hot_draws: int, seed: int) -> list[int]:
    """Cold sweep of every key once, shuffled together with hot-set draws."""
    rng = random.Random(seed)
    sequence = list(range(keys))
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(HOT_SET)]
    hot = rng.choices(range(min(HOT_SET, keys)), weights=weights[: min(HOT_SET, keys)], k=hot_draws)
    sequence.extend(hot)
    rng.shuffle(sequence)
    return sequence


def _deploy(seed: int):
    kernel = Kernel(seed=seed)
    config = KarConfig.fast_test().with_overrides(
        # The cold sweep activates every key once; idle passivation lets
        # the long tail leave memory while the zipfian core stays resident.
        idle_passivation_timeout=60.0,
    )
    app = KarApplication(kernel, config, name="edge")
    app.register_actor(HitCounter, name="Hit")
    for index in range(COMPONENTS):
        app.add_component(f"w{index}", ("Hit",))
    app.settle()
    return kernel, app


async def _lane(host: str, port: int, pending, counts, failures) -> int:
    """One keep-alive connection draining the shared schedule."""
    reader, writer = await asyncio.open_connection(host, port)
    served = 0
    try:
        while True:
            try:
                key = pending.pop()
            except IndexError:
                break
            path = f"/actor/Hit/k{key}/call/hit"
            head = (
                f"POST {path} HTTP/1.1\r\nHost: b\r\n"
                "Content-Length: 0\r\n\r\n"
            )
            writer.write(head.encode())
            await writer.drain()
            raw_head = await reader.readuntil(b"\r\n\r\n")
            status_line, *header_lines = raw_head.decode("latin-1").split("\r\n")
            status = int(status_line.split(" ")[1])
            length = 0
            for line in header_lines:
                if line.lower().startswith("content-length:"):
                    length = int(line.split(":")[1])
            body = await reader.readexactly(length)
            if status == 200:
                value = json.loads(body)["value"]
                entry = counts.get(key)
                if entry is None:
                    counts[key] = [1, value]
                else:
                    entry[0] += 1
                    entry[1] += value
                served += 1
            else:
                failures.append((key, status, body[:200]))
    finally:
        writer.close()
    return served


def measure(keys: int = KEYS, connections: int = CONNECTIONS) -> dict:
    """Run the workload; returns the headline metrics."""
    kernel, app = _deploy(seed=31)
    hot_draws = int(keys * HOT_DRAWS_RATIO)
    schedule = _schedule(keys, hot_draws, seed=77)
    total_requests = len(schedule)

    # Lanes pop from the tail of a shared list (O(1), no locks needed on
    # one event loop); per-key state is [count, sum-of-returned-values].
    pending = list(reversed(schedule))
    counts: dict[int, list[int]] = {}
    failures: list = []

    async def drive():
        gateway = KarGateway(app, port=0, sync_timeout=120.0)
        host, port = await gateway.start()
        started = time.monotonic()
        lanes = await asyncio.gather(
            *(
                _lane(host, port, pending, counts, failures)
                for _ in range(connections)
            )
        )
        elapsed = time.monotonic() - started
        latency = app.stats("gateway")["routes"][
            "POST /actor/{type}/{id}/call/{method}"
        ]["latency"]
        await gateway.stop()
        return sum(lanes), elapsed, latency

    served, elapsed, latency = asyncio.run(drive())
    kernel.check_no_crashes()

    # Exactly-once, from the responses alone: each key's serialized counter
    # must have returned exactly the values 1..n.
    expected: dict[int, int] = {}
    for key in schedule:
        expected[key] = expected.get(key, 0) + 1
    mismatched = 0
    for key, want in expected.items():
        entry = counts.get(key, (0, 0))
        if entry[0] != want or entry[1] != want * (want + 1) // 2:
            mismatched += 1

    unsettled = len(app.stats("calls")["unsettled"])
    app.shutdown()
    return {
        "requests": total_requests,
        "distinct_keys": len(counts),
        "distinct_keys_target": keys,
        "served": served,
        "lost": total_requests - served,
        "mismatched_keys": mismatched,
        "unsettled": unsettled,
        "failures": failures[:10],
        "elapsed_s": elapsed,
        "requests_per_s": total_requests / elapsed if elapsed else 0.0,
        "call_p50_ms": latency["p50_ms"],
        "call_p99_ms": latency["p99_ms"],
    }


def test_gateway_serves_zipfian_load_with_zero_lost_calls(benchmark):
    row = benchmark.pedantic(measure, rounds=1, iterations=1)

    emit(
        "gateway_zipf.txt",
        render_table(
            ["Requests", "Distinct keys", "Lost", "Mismatched", "Req/s",
             "p50 (ms)", "p99 (ms)"],
            [
                (
                    row["requests"],
                    row["distinct_keys"],
                    row["lost"],
                    row["mismatched_keys"],
                    round(row["requests_per_s"], 1),
                    row["call_p50_ms"],
                    row["call_p99_ms"],
                )
            ],
            title=(
                f"HTTP gateway under zipfian load ({CONNECTIONS} "
                f"connections, hot set {HOT_SET}, s={ZIPF_S})"
            ),
            digits=3,
        ),
    )
    benchmark.extra_info["requests_per_s"] = round(row["requests_per_s"], 1)

    assert row["failures"] == []
    assert row["lost"] == 0
    assert row["distinct_keys"] == row["distinct_keys_target"]
    assert row["mismatched_keys"] == 0
    assert row["unsettled"] == 0
    assert row["requests_per_s"] >= THROUGHPUT_FLOOR
