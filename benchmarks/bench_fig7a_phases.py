"""Figure 7a: phases of failure detection and recovery, per failure.

The paper plots, for each of 1,000 failures, the stacked
detection / consensus / reconciliation times (total 16-31 s, detection a
tight ~9 s band, reconciliation the variable component).
"""

from repro.bench import render_series

from _shared import emit, single_failure_campaign


def test_fig7a_recovery_phase_series(benchmark):
    result = benchmark.pedantic(
        single_failure_campaign, rounds=1, iterations=1
    )
    points = [
        (
            record.index + 1,
            record.detection,
            record.consensus,
            record.reconciliation,
            record.total,
        )
        for record in result.records
    ]
    emit(
        "fig7a_phases.txt",
        render_series(
            "Figure 7a: phases of failure detection and recovery (seconds)",
            points,
            ["Failure#", "Detection", "Consensus", "Reconciliation", "Total"],
        ),
    )
    benchmark.extra_info["failures"] = len(points)

    # Shape: every failure detected within the session-timeout envelope,
    # consensus a narrow band, totals within the paper's 16-31 s range
    # scaled to our envelope.
    for record in result.records:
        assert 6.5 <= record.detection <= 11.5
        assert 2.0 <= record.consensus <= 3.5
        assert record.total == (
            record.detection + record.consensus + record.reconciliation
        ) or record.total >= record.detection
    variability = result.phase_stats()
    # Reconciliation varies more than detection or consensus (the paper's
    # visual signature in Figure 7a).
    assert (
        variability["Reconciliation"]["std"]
        > variability["Consensus"]["std"]
    )
