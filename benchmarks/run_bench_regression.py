"""CI benchmark-regression gate.

Runs the quick-scale benchmark workloads directly (no pytest layer), writes
the headline metrics to a JSON results file, and optionally compares them
against a committed baseline. Every metric is produced by the deterministic
simulation (seeded kernels, simulated time), so the numbers are exact and
the gate cannot flake on runner noise; the 10% tolerance absorbs deliberate
small trade-offs, not jitter.

Usage::

    python benchmarks/run_bench_regression.py --output BENCH_results.json
    python benchmarks/run_bench_regression.py --check \
        --baseline benchmarks/BENCH_baseline.json --output BENCH_results.json

Gated metrics (higher = worse, fail above baseline * 1.10) cover the fan-in
produce round trips, the stateful store round trips / median call latency /
per-call allocation blocks / durable journal bytes, the codec encoded bytes
and allocation blocks, and the lifecycle resident-footprint counts; the storm
goodput ratio and the multi-worker scale-out speedups gate in the other
direction (lower = worse, fail below baseline * 0.90 or the absolute
acceptance floors: 3x storm goodput, 1.5x at two workers, 2x at four, and
1.5x adaptive-over-static under zipfian skew), and lost calls -- storm,
scale-out, zipf, or the HTTP gateway -- fail unconditionally. The gateway
workload runs 100k distinct actor keys through a live socket and must lose
nothing and clear a conservative absolute requests/s floor (wall-clock, so
baseline-relative gating would flake on runner noise). The rest are
informational and tracked through the uploaded artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

#: Metrics where an increase beyond the tolerance is a regression.
GATED_HIGHER_IS_WORSE = (
    "fanout_unbatched_round_trips",
    "fanout_coalesce_round_trips",
    "fanout_linger_round_trips",
    "fanout_stateful_store_round_trips",
    "fanout_stateful_median_call_ms",
    "fanout_stateful_alloc_blocks_per_call",
    "fanout_stateful_journal_bytes",
    "codec_binary_bytes",
    "codec_binary_alloc_blocks",
    "lifecycle_peak_instances",
    "lifecycle_peak_mailboxes",
    "lifecycle_peak_handled",
    "lifecycle_peak_settled",
)
#: Metrics where a decrease beyond the tolerance is a regression.
GATED_LOWER_IS_WORSE = (
    "storm_goodput_ratio",
    "scaleout_speedup_2w",
    "scaleout_speedup_4w",
    "zipf_adaptive_vs_static_ratio",
)
TOLERANCE = 0.10
#: Absolute floor for the overload-guard storm protection, independent of
#: what the baseline recorded (the acceptance criterion of the subsystem).
STORM_RATIO_FLOOR = 3.0
#: Absolute floors for multi-worker scaling, independent of the baseline
#: (the acceptance criteria of the scale-out runtime).
SCALEOUT_SPEEDUP_2W_FLOOR = 1.5
SCALEOUT_SPEEDUP_4W_FLOOR = 2.0
#: Absolute floor for adaptive placement vs static hashing under zipfian
#: skew (the acceptance criterion of the placement controller).
ZIPF_RATIO_FLOOR = 1.5
#: The serving-edge acceptance criterion: the full distinct-key population
#: must be served through the live HTTP gateway with zero lost calls.
GATEWAY_KEYS_TARGET = 100_000
#: Conservative absolute wall-clock floor for the gateway (requests/s).
#: Real sockets vary with runner hardware, so like codec_speedup_ratio the
#: measured rate is informational vs the baseline; the floor only catches
#: collapses.
GATEWAY_THROUGHPUT_FLOOR = 300.0


def collect_metrics() -> dict[str, float]:
    import bench_durable_restart
    import bench_lifecycle_churn
    import bench_throughput_fanout

    metrics: dict[str, float] = {}

    print("running fan-in throughput workload ...", flush=True)
    fanout_rows = {
        row["label"]: row for row in bench_throughput_fanout.measure_all()
    }
    unbatched = fanout_rows["unbatched (batch_max=1)"]
    coalesce = fanout_rows["coalesce (linger=0)"]
    linger = fanout_rows["linger 2ms"]
    metrics["fanout_unbatched_round_trips"] = unbatched["round_trips"]
    metrics["fanout_coalesce_round_trips"] = coalesce["round_trips"]
    metrics["fanout_linger_round_trips"] = linger["round_trips"]
    metrics["fanout_linger_largest_batch"] = linger["largest_batch"]
    metrics["fanout_linger_median_call_ms"] = round(linger["median_ms"], 4)
    metrics["fanout_coalesce_median_call_ms"] = round(coalesce["median_ms"], 4)

    print("running stateful fan-in workload ...", flush=True)
    stateful_rows = {
        row["label"]: row for row in bench_throughput_fanout.measure_stateful()
    }
    legacy = stateful_rows["legacy (json, unpipelined)"]
    binary = stateful_rows["pipelined (binary)"]
    metrics["fanout_stateful_store_round_trips"] = binary["store_round_trips"]
    metrics["fanout_stateful_legacy_store_round_trips"] = (
        legacy["store_round_trips"]
    )
    metrics["fanout_stateful_median_call_ms"] = round(binary["median_ms"], 4)
    metrics["fanout_stateful_legacy_median_call_ms"] = round(
        legacy["median_ms"], 4
    )
    metrics["fanout_stateful_alloc_blocks_per_call"] = round(
        binary["alloc_blocks_per_call"], 4
    )
    metrics["fanout_stateful_journal_bytes"] = binary["journal_bytes"]
    metrics["fanout_stateful_json_journal_bytes"] = legacy["journal_bytes"]

    print("running codec microbenchmark ...", flush=True)
    import bench_codec

    codec_rows = bench_codec.measure_all()
    json_codec, binary_codec = codec_rows["json"], codec_rows["binary"]
    metrics["codec_binary_bytes"] = binary_codec["bytes"]
    metrics["codec_json_bytes"] = json_codec["bytes"]
    metrics["codec_binary_alloc_blocks"] = binary_codec["alloc_blocks"]
    metrics["codec_json_alloc_blocks"] = json_codec["alloc_blocks"]
    # Wall-clock ratio: informational here (runner noise); the absolute
    # 3x floor is asserted by the bench_codec pytest layer.
    metrics["codec_speedup_ratio"] = round(
        json_codec["best_seconds"] / binary_codec["best_seconds"], 4
    )

    print("running lifecycle churn workload ...", flush=True)
    _app, worker, _client, samples = bench_lifecycle_churn.run_churn()
    metrics["lifecycle_peak_instances"] = max(row[1] for row in samples)
    metrics["lifecycle_peak_mailboxes"] = max(row[2] for row in samples)
    metrics["lifecycle_peak_handled"] = max(row[3] for row in samples)
    metrics["lifecycle_peak_settled"] = max(row[4] for row in samples)
    metrics["lifecycle_passivations"] = worker.passivations

    print("running durable cold-restart workload ...", flush=True)
    restart_rows = {
        row["mode"]: row for row in bench_durable_restart.measure_all()
    }
    sqlite_row = restart_rows["sqlite"]
    metrics["restart_sqlite_replayed_records"] = sqlite_row["replayed_records"]
    metrics["restart_sqlite_reconcile_copies"] = sqlite_row["reconcile_copies"]
    metrics["restart_sqlite_recovery_seconds"] = round(
        sqlite_row["recovery_seconds"], 4
    )
    metrics["restart_sqlite_unsettled_after"] = sqlite_row["unsettled_after"]
    metrics["restart_sqlite_commit_deficit"] = (
        sqlite_row["expected_total"] - sqlite_row["commit_total"]
    )

    print("running overload storm workload ...", flush=True)
    import bench_overload_storm

    storm = bench_overload_storm.measure_all()
    metrics["storm_goodput_on_per_s"] = round(
        storm["on"]["goodput_per_s"], 4
    )
    metrics["storm_goodput_off_per_s"] = round(
        storm["off"]["goodput_per_s"], 4
    )
    metrics["storm_goodput_ratio"] = round(storm["goodput_ratio"], 4)
    metrics["storm_p99_on_s"] = round(storm["on"]["p99_s"], 4)
    metrics["storm_parked"] = storm["on"]["parked"]
    metrics["storm_replayed"] = storm["on"]["replayed"]
    metrics["storm_lost_calls"] = storm["on"]["lost"] + storm["off"]["lost"]

    print("running multi-worker scale-out workload ...", flush=True)
    import bench_scaleout

    scaling = {row["workers"]: row for row in bench_scaleout.measure_scaling()}
    single = scaling[1]["calls_per_s"]
    for workers in (1, 2, 4):
        metrics[f"scaleout_calls_per_s_{workers}w"] = round(
            scaling[workers]["calls_per_s"], 1
        )
    metrics["scaleout_speedup_2w"] = round(
        scaling[2]["calls_per_s"] / single, 4
    )
    metrics["scaleout_speedup_4w"] = round(
        scaling[4]["calls_per_s"] / single, 4
    )
    kill_rows = bench_scaleout.measure_kill()
    metrics["scaleout_lost_calls"] = sum(
        row["lost_calls"] + row["double_commits"] for row in kill_rows
    ) + sum(row["lost_calls"] for row in scaling.values())

    print("running zipfian skew placement workload ...", flush=True)
    import bench_zipf_skew

    zipf = bench_zipf_skew.measure_all()
    metrics["zipf_static_calls_per_s"] = round(
        zipf["static"]["calls_per_s"], 1
    )
    metrics["zipf_adaptive_calls_per_s"] = round(
        zipf["adaptive"]["calls_per_s"], 1
    )
    metrics["zipf_adaptive_vs_static_ratio"] = round(zipf["ratio"], 4)
    metrics["zipf_adaptive_splits"] = zipf["adaptive"]["splits"]
    metrics["zipf_adaptive_migrations"] = zipf["adaptive"]["migrations"]
    metrics["zipf_lost_calls"] = sum(
        row["lost_calls"] + row["double_commits"]
        for row in (zipf["static"], zipf["adaptive"])
    )

    print("running HTTP gateway zipfian workload ...", flush=True)
    import bench_gateway_zipf

    gateway = bench_gateway_zipf.measure(keys=GATEWAY_KEYS_TARGET)
    metrics["gateway_requests"] = gateway["requests"]
    metrics["gateway_distinct_keys"] = gateway["distinct_keys"]
    metrics["gateway_lost_calls"] = (
        gateway["lost"] + gateway["mismatched_keys"] + gateway["unsettled"]
    )
    metrics["gateway_requests_per_s"] = round(gateway["requests_per_s"], 1)
    metrics["gateway_call_p50_ms"] = gateway["call_p50_ms"]
    metrics["gateway_call_p99_ms"] = gateway["call_p99_ms"]
    return metrics


def check(metrics: dict[str, float], baseline: dict[str, float]) -> list[str]:
    failures = []
    # Correctness invariants gate unconditionally: recovery must settle
    # everything exactly once regardless of what the baseline recorded.
    if metrics.get("restart_sqlite_unsettled_after", 0) != 0:
        failures.append("cold restart left unsettled calls behind")
    if metrics.get("restart_sqlite_commit_deficit", 0) != 0:
        failures.append("cold restart lost or duplicated workflow commits")
    if metrics.get("storm_lost_calls", 0) != 0:
        failures.append(
            "overload storm lost calls (dead letters must replay to "
            "exactly-once completion)"
        )
    if metrics.get("storm_goodput_ratio", 0.0) < STORM_RATIO_FLOOR:
        failures.append(
            f"storm_goodput_ratio {metrics.get('storm_goodput_ratio')} "
            f"below the {STORM_RATIO_FLOOR}x acceptance floor"
        )
    if metrics.get("scaleout_lost_calls", 0) != 0:
        failures.append(
            "multi-worker scale-out lost or duplicated calls (a worker "
            "kill must settle every in-flight call exactly once)"
        )
    if metrics.get("scaleout_speedup_2w", 0.0) < SCALEOUT_SPEEDUP_2W_FLOOR:
        failures.append(
            f"scaleout_speedup_2w {metrics.get('scaleout_speedup_2w')} "
            f"below the {SCALEOUT_SPEEDUP_2W_FLOOR}x acceptance floor"
        )
    if metrics.get("scaleout_speedup_4w", 0.0) < SCALEOUT_SPEEDUP_4W_FLOOR:
        failures.append(
            f"scaleout_speedup_4w {metrics.get('scaleout_speedup_4w')} "
            f"below the {SCALEOUT_SPEEDUP_4W_FLOOR}x acceptance floor"
        )
    if metrics.get("zipf_lost_calls", 0) != 0:
        failures.append(
            "zipfian skew workload lost or duplicated calls (adaptive "
            "handoffs must preserve exactly-once settlement)"
        )
    if (
        metrics.get("zipf_adaptive_vs_static_ratio", 0.0)
        < ZIPF_RATIO_FLOOR
    ):
        failures.append(
            "zipf_adaptive_vs_static_ratio "
            f"{metrics.get('zipf_adaptive_vs_static_ratio')} below the "
            f"{ZIPF_RATIO_FLOOR}x acceptance floor"
        )
    if metrics.get("gateway_lost_calls", 0) != 0:
        failures.append(
            "HTTP gateway lost, duplicated, or left unsettled calls (every "
            "request must come back 200 with an exactly-once counter value)"
        )
    if metrics.get("gateway_distinct_keys", 0) < GATEWAY_KEYS_TARGET:
        failures.append(
            f"gateway_distinct_keys {metrics.get('gateway_distinct_keys')} "
            f"below the {GATEWAY_KEYS_TARGET} acceptance target"
        )
    if metrics.get("gateway_requests_per_s", 0.0) < GATEWAY_THROUGHPUT_FLOOR:
        failures.append(
            f"gateway_requests_per_s {metrics.get('gateway_requests_per_s')} "
            f"below the {GATEWAY_THROUGHPUT_FLOOR}/s absolute floor"
        )
    for name in GATED_LOWER_IS_WORSE:
        if name not in baseline:
            failures.append(f"baseline is missing gated metric {name!r}")
            continue
        limit = baseline[name] * (1.0 - TOLERANCE)
        if metrics[name] < limit:
            failures.append(
                f"{name}: {metrics[name]} falls short of baseline "
                f"{baseline[name]} by more than {TOLERANCE:.0%}"
            )
    for name in GATED_HIGHER_IS_WORSE:
        if name not in baseline:
            failures.append(f"baseline is missing gated metric {name!r}")
            continue
        limit = baseline[name] * (1.0 + TOLERANCE)
        if metrics[name] > limit:
            failures.append(
                f"{name}: {metrics[name]} exceeds baseline "
                f"{baseline[name]} by more than {TOLERANCE:.0%}"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_results.json")
    parser.add_argument("--baseline", default="benchmarks/BENCH_baseline.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) if gated metrics regress vs the baseline",
    )
    args = parser.parse_args()

    metrics = collect_metrics()
    payload = {
        "tolerance": TOLERANCE,
        "gated": list(GATED_HIGHER_IS_WORSE) + list(GATED_LOWER_IS_WORSE),
        "metrics": metrics,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}:")
    print(json.dumps(metrics, indent=2))

    if not args.check:
        return 0
    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"baseline {baseline_path} not found", file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())["metrics"]
    failures = check(metrics, baseline)
    if failures:
        print("\nBENCHMARK REGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nregression gate green (tolerance {TOLERANCE:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
