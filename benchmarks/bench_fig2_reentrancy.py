"""Figure 2: reentrancy with and without the happen-before guarantee.

A.main -> B.task -> A.callback, with A's host failing while task runs.
Under KAR's retry orchestration (Figure 2a) the retried main starts only
after the in-flight task/callback chain settles. An at-least-once runtime
that redelivers immediately (Figure 2b; the Akka/Ray behaviour of Sections
1 and 7) lets the retried main execute concurrently with the *stale*
callback from the previous attempt.

Executions are tagged with the attempt number, so a callback belonging to
attempt N overlapping a main of attempt M > N is exactly the Figure 2b
race.
"""

from repro.bench import render_table
from repro.core import Actor, KarConfig, KarApplication, actor_proxy
from repro.sim import Kernel

from _shared import FULL, emit

SEEDS = range(20 if FULL else 8)


class RA(Actor):
    intervals = []
    attempt = 0

    async def main(self, ctx, v):
        RA.attempt += 1
        attempt = RA.attempt
        begin = ctx.now
        result = await ctx.call(actor_proxy("RB", "b"), "task", v, attempt)
        RA.intervals.append(("main", attempt, begin, ctx.now))
        return result

    async def callback(self, ctx, v, attempt):
        begin = ctx.now
        await ctx.sleep(3.0)
        RA.intervals.append(("callback", attempt, begin, ctx.now))
        return v


class RB(Actor):
    async def task(self, ctx, v, attempt):
        await ctx.sleep(2.0)
        return await ctx.call(actor_proxy("RA", "a"), "callback", v, attempt)


def stale_overlap(intervals):
    """A callback from an older attempt runs concurrently with a newer
    main: the Figure 2b race."""
    mains = [(a, b, e) for kind, a, b, e in intervals if kind == "main"]
    callbacks = [(a, b, e) for kind, a, b, e in intervals
                 if kind == "callback"]
    for main_attempt, mb, me in mains:
        for cb_attempt, cb, ce in callbacks:
            if cb_attempt < main_attempt and mb < ce and cb < me:
                return True
    return False


def run_once(seed, orchestrate):
    RA.intervals = []
    RA.attempt = 0
    kernel = Kernel(seed=seed)
    app = KarApplication(
        kernel,
        KarConfig.fast_test().with_overrides(
            orchestrate_retries=orchestrate, cancellation=False
        ),
    )
    app.register_actor(RA)
    app.register_actor(RB)
    app.add_component("ra-1", ("RA",))
    app.add_component("ra-2", ("RA",))
    app.add_component("rb", ("RB",))
    client = app.client()
    app.settle()
    ref = actor_proxy("RA", "a")
    task = kernel.spawn(
        client.invoke(None, ref, "main", (7,), True),
        process=client.process,
    )
    kernel.run(until=kernel.now + 0.8)  # task is mid-sleep on rb
    host = next(
        name for name, comp in app.components.items()
        if comp.alive and ref in comp._instances
    )
    app.kill_component(host)  # only A's host dies; the chain survives on rb
    value = kernel.run_until_complete(task, timeout=600.0)
    assert value == 7
    return stale_overlap(RA.intervals)


def _sweep():
    kar_overlaps = sum(run_once(seed, True) for seed in SEEDS)
    baseline_overlaps = sum(run_once(seed, False) for seed in SEEDS)
    return kar_overlaps, baseline_overlaps


def test_fig2_overlap_with_and_without_orchestration(benchmark):
    kar_overlaps, baseline_overlaps = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    rows = [
        ("KAR (retry orchestration)", len(SEEDS), kar_overlaps),
        ("at-least-once baseline", len(SEEDS), baseline_overlaps),
    ]
    emit(
        "fig2_reentrancy.txt",
        render_table(
            ["Runtime", "Runs", "Stale main/callback overlaps"],
            rows,
            title="Figure 2: reentrancy under caller failure",
        ),
    )
    benchmark.extra_info.update(
        kar_overlaps=kar_overlaps, baseline_overlaps=baseline_overlaps
    )
    # Figure 2a: KAR never overlaps. Figure 2b: the baseline does.
    assert kar_overlaps == 0
    assert baseline_overlaps > 0
