"""Figure 7b: maximum order latency in the window around each failure.

Paper: failure-free order latency ~100 ms; around failures the maximum
spikes to an average (median) of 24.5 (24.0) s, min 7.2, max 43.8 -- the
max occasionally *below* the outage because unimpacted replicas keep
processing until the consensus/reconciliation pause.
"""

from repro.bench import render_series

from _shared import emit, single_failure_campaign


def test_fig7b_max_order_latency(benchmark):
    result = benchmark.pedantic(
        single_failure_campaign, rounds=1, iterations=1
    )
    points = [
        (record.index + 1, record.max_order_latency, record.total)
        for record in result.records
        if record.max_order_latency is not None
    ]
    emit(
        "fig7b_order_latency.txt",
        render_series(
            "Figure 7b: maximum order latency around failures (seconds)",
            points,
            ["Failure#", "MaxOrderLatency", "OutageTotal"],
        ),
    )
    stats = result.latency_stats()
    benchmark.extra_info.update(
        spike_avg=round(stats["avg"], 2),
        spike_max=round(stats["max"], 2),
    )

    # Shape: spikes are the same order of magnitude as the outage (tens of
    # seconds), vastly above the failure-free latency (sub-second).
    assert stats["avg"] > 5.0
    assert stats["max"] < 60.0
    # Occasionally the spike is below the outage total (replication kept
    # unimpacted orders flowing until the pause) -- allow either, but check
    # the two series are correlated in magnitude.
    totals = [record.total for record in result.records]
    assert stats["avg"] < 2.5 * (sum(totals) / len(totals))
