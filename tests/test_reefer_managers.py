"""Unit-level tests of the manager singletons' business logic."""

import pytest

from repro.core import ActorMethodError, KarConfig, actor_proxy
from repro.reefer import ReeferApplication, ReeferConfig
from repro.reefer.domain import ROUTES, voyage_plan
from repro.sim import Kernel


@pytest.fixture
def reefer():
    kernel = Kernel(seed=91)
    application = ReeferApplication(
        kernel, KarConfig.fast_test(),
        ReeferConfig(order_rate=0.0, anomaly_rate=0.0),
    )
    application.app.settle()
    return application


def invoke(reefer, actor_type, method, *args):
    component = reefer.simulator_component
    task = reefer.kernel.spawn(
        component.invoke(
            None, actor_proxy(actor_type, "singleton"), method, args, True
        ),
        component.process,
    )
    return reefer.kernel.run_until_complete(task, timeout=120.0)


# ---------------------------------------------------------------------------
# ScheduleManager
# ---------------------------------------------------------------------------

def test_find_voyage_returns_earliest_future_sailing(reefer):
    plan = invoke(
        reefer, "ScheduleManager", "find_voyage", "Elizabeth", "Oakland", 2,
        0.0,
    )
    assert plan["origin"] == "Elizabeth"
    assert plan["departure"] == 20.0  # first scheduled departure
    assert plan["capacity"] == 20


def test_find_voyage_skips_past_departures(reefer):
    plan = invoke(
        reefer, "ScheduleManager", "find_voyage", "Elizabeth", "Oakland", 2,
        25.0,
    )
    assert plan["departure"] > 25.0


def test_find_voyage_unknown_route_errors(reefer):
    with pytest.raises(ActorMethodError, match="no route"):
        invoke(
            reefer, "ScheduleManager", "find_voyage", "Atlantis", "Oakland",
            1, 0.0,
        )


def test_find_voyage_respects_reported_capacity(reefer):
    first = invoke(
        reefer, "ScheduleManager", "find_voyage", "Elizabeth", "Oakland", 2,
        0.0,
    )
    # Report the sailing as full.
    invoke(
        reefer, "ScheduleManager", "voyage_booked", first["voyage_id"], 20,
        "O-X",
    )
    second = invoke(
        reefer, "ScheduleManager", "find_voyage", "Elizabeth", "Oakland", 2,
        0.0,
    )
    assert second["voyage_id"] != first["voyage_id"]
    assert second["departure"] > first["departure"]


def test_voyage_booked_is_idempotent_per_order(reefer):
    plan = invoke(
        reefer, "ScheduleManager", "find_voyage", "Elizabeth", "Oakland", 1,
        0.0,
    )
    for _ in range(3):  # redelivered tell
        invoke(
            reefer, "ScheduleManager", "voyage_booked", plan["voyage_id"], 1,
            "O-1",
        )
    # Capacity 20: if the update tripled we could not fit 19 more.
    final = invoke(
        reefer, "ScheduleManager", "find_voyage", "Elizabeth", "Oakland", 19,
        0.0,
    )
    assert final["voyage_id"] == plan["voyage_id"]


def test_schedule_horizon_lists_all_routes(reefer):
    plans = invoke(reefer, "ScheduleManager", "schedule_horizon", 100.0)
    origins = {plan["origin"] for plan in plans}
    assert origins == {route.origin for route in ROUTES}
    for plan in plans:
        assert plan["departure"] <= 100.0
        assert plan["arrival"] > plan["departure"]


def test_voyage_plan_is_deterministic():
    route = ROUTES[0]
    assert voyage_plan(route, 3, 20.0) == voyage_plan(route, 3, 20.0)
    assert voyage_plan(route, 3, 20.0)["departure"] == 20.0 + 3 * route.cadence_seconds


# ---------------------------------------------------------------------------
# OrderManager
# ---------------------------------------------------------------------------

def test_transition_log_rejects_terminal_regression(reefer):
    invoke(reefer, "OrderManager", "order_delivered", "O-1")
    invoke(reefer, "OrderManager", "order_departed", "O-1")  # illegal
    statuses = reefer.order_statuses()
    assert statuses["O-1"] == "delivered"  # unchanged
    violations = reefer.order_violations()
    assert violations and violations[0]["order_id"] == "O-1"


def test_statuses_excludes_internal_keys(reefer):
    invoke(reefer, "OrderManager", "order_delivered", "O-1")
    invoke(reefer, "OrderManager", "order_departed", "O-1")
    statuses = reefer.order_statuses()
    assert all(not key.startswith("_") for key in statuses)


# ---------------------------------------------------------------------------
# Voyage/Depot managers
# ---------------------------------------------------------------------------

def test_voyage_manager_first_timestamp_wins(reefer):
    invoke(reefer, "VoyageManager", "voyage_departed", "V-1", 10.0)
    invoke(reefer, "VoyageManager", "voyage_departed", "V-1", 99.0)
    stats = reefer.voyage_stats()
    assert stats["departed"]["V-1"] == 10.0


def test_depot_manager_accumulates_moves(reefer):
    invoke(reefer, "DepotManager", "containers_moved", "Oakland", 3, "allocated")
    invoke(reefer, "DepotManager", "containers_moved", "Oakland", 2, "allocated")
    stats = reefer.depot_stats()
    assert stats["moves"]["Oakland:allocated"] == 5
