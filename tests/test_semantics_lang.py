"""Unit tests for the mini-language compiler and its transition relation."""

import pytest

from repro.semantics.lang import (
    Assign,
    BinOp,
    CallExpr,
    CompileError,
    GetState,
    If,
    Lit,
    MethodDef,
    ModelProgram,
    Return,
    SetState,
    TailStmt,
    TellStmt,
    Var,
    compile_method,
)
from repro.semantics.program import CallOut, EndOut, StepOut, TailOut, TellOut


def single(iterable):
    items = list(iterable)
    assert len(items) == 1
    return items[0]


def drive_to_outcome(program, method, arg, state):
    """Run (step) transitions until a non-step outcome appears."""
    sequel = single(program.begin(method, arg, state))
    for _ in range(100):
        outcome = single(program.outcomes(sequel, state))
        if not isinstance(outcome, StepOut):
            return outcome, state
        sequel, state = outcome.sequel, outcome.state
    raise AssertionError("method did not settle")


def test_compile_simple_return():
    code = compile_method(MethodDef("m", "x", (Return(Var("x")),)))
    assert len(code) == 2  # Return + implicit fall-off return


def test_eval_and_return():
    program = ModelProgram().define(
        MethodDef(
            "double",
            "x",
            (Assign("y", BinOp("*", Var("x"), Lit(2))), Return(Var("y"))),
        )
    )
    outcome, _ = drive_to_outcome(program, "double", 21, None)
    assert isinstance(outcome, EndOut)
    assert outcome.value == 42


def test_state_read_write():
    program = ModelProgram().define(
        MethodDef(
            "swap",
            "v",
            (Assign("old", GetState()), SetState(Var("v")), Return(Var("old"))),
        )
    )
    sequel = single(program.begin("swap", "new", "old-state"))
    out1 = single(program.outcomes(sequel, "old-state"))  # Assign
    out2 = single(program.outcomes(out1.sequel, out1.state))  # SetState
    assert out2.state == "new"
    out3 = single(program.outcomes(out2.sequel, out2.state))
    assert isinstance(out3, EndOut)
    assert out3.value == "old-state"


def test_if_true_and_false_branches():
    program = ModelProgram().define(
        MethodDef(
            "sign",
            "x",
            (
                If(
                    BinOp("<", Var("x"), Lit(0)),
                    (Return(Lit("negative")),),
                    (Return(Lit("non-negative")),),
                ),
            ),
        )
    )
    outcome, _ = drive_to_outcome(program, "sign", -5, None)
    assert outcome.value == "negative"
    outcome, _ = drive_to_outcome(program, "sign", 5, None)
    assert outcome.value == "non-negative"


def test_if_without_else():
    program = ModelProgram().define(
        MethodDef(
            "clamp",
            "x",
            (
                If(BinOp("<", Var("x"), Lit(0)), (Assign("x", Lit(0)),)),
                Return(Var("x")),
            ),
        )
    )
    assert drive_to_outcome(program, "clamp", -3, None)[0].value == 0
    assert drive_to_outcome(program, "clamp", 3, None)[0].value == 3


def test_call_produces_call_outcome_and_resume():
    program = ModelProgram().define(
        MethodDef(
            "caller",
            "v",
            (
                Assign("r", CallExpr(Lit("other"), "m", Var("v"))),
                Return(Var("r")),
            ),
        )
    )
    sequel = single(program.begin("caller", 9, None))
    outcome = single(program.outcomes(sequel, None))
    assert isinstance(outcome, CallOut)
    assert (outcome.actor, outcome.method, outcome.arg) == ("other", "m", 9)
    resumed = single(program.resume(outcome.sequel, 99, None))
    end = single(program.outcomes(resumed, None))
    assert isinstance(end, EndOut)
    assert end.value == 99


def test_tell_outcome_continues():
    program = ModelProgram().define(
        MethodDef(
            "notifier",
            "v",
            (TellStmt(Lit("other"), "m", Var("v")), Return(Lit("sent"))),
        )
    )
    sequel = single(program.begin("notifier", 1, None))
    outcome = single(program.outcomes(sequel, None))
    assert isinstance(outcome, TellOut)
    end = single(program.outcomes(outcome.sequel, None))
    assert end.value == "sent"


def test_tail_outcome():
    program = ModelProgram().define(
        MethodDef("front", "v", (TailStmt(Lit("back"), "m", Var("v")),))
    )
    sequel = single(program.begin("front", 3, None))
    outcome = single(program.outcomes(sequel, None))
    assert isinstance(outcome, TailOut)
    assert (outcome.actor, outcome.method, outcome.arg) == ("back", "m", 3)


def test_implicit_return_none():
    program = ModelProgram().define(MethodDef("noop", "v", ()))
    outcome, _ = drive_to_outcome(program, "noop", 0, None)
    assert isinstance(outcome, EndOut)
    assert outcome.value is None


def test_nested_call_in_expression_rejected():
    with pytest.raises(CompileError):
        compile_method(
            MethodDef(
                "bad",
                "v",
                (Return(BinOp("+", CallExpr(Lit("x"), "m", Lit(1)), Lit(1))),),
            )
        )


def test_unknown_method_rejected():
    program = ModelProgram()
    with pytest.raises(CompileError):
        list(program.begin("ghost", 1, None))


def test_unbound_variable_rejected():
    program = ModelProgram().define(
        MethodDef("bad", "v", (Return(Var("missing")),))
    )
    sequel = single(program.begin("bad", 1, None))
    with pytest.raises(CompileError):
        list(program.outcomes(sequel, None))


def test_sequels_are_hashable_and_comparable():
    program = ModelProgram().define(
        MethodDef("m", "x", (Assign("y", Lit(1)), Return(Var("y"))))
    )
    s1 = single(program.begin("m", 5, None))
    s2 = single(program.begin("m", 5, None))
    assert s1 == s2
    assert hash(s1) == hash(s2)
