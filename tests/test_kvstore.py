"""Unit tests for the simulated key-value store."""

import pytest

from repro.kvstore import FencedClientError, KVStore
from repro.sim import Kernel, Latency


def run(kernel, coro):
    return kernel.run_until_complete(kernel.spawn(coro))


@pytest.fixture
def kernel():
    return Kernel(seed=1)


@pytest.fixture
def store(kernel):
    return KVStore(kernel, latency=Latency.fixed(0.001))


def test_get_missing_returns_none(kernel, store):
    client = store.client("a")
    assert run(kernel, client.get("nope")) is None


def test_set_then_get(kernel, store):
    client = store.client("a")

    async def scenario():
        await client.set("k", 41)
        return await client.get("k")

    assert run(kernel, scenario()) == 41


def test_latency_is_charged_per_operation(kernel, store):
    client = store.client("a")

    async def scenario():
        await client.set("k", 1)
        await client.get("k")

    run(kernel, scenario())
    assert kernel.now == pytest.approx(0.002)


def test_delete(kernel, store):
    client = store.client("a")

    async def scenario():
        await client.set("k", 1)
        first = await client.delete("k")
        second = await client.delete("k")
        return first, second, await client.get("k")

    assert run(kernel, scenario()) == (True, False, None)


def test_cas_success_and_failure(kernel, store):
    client = store.client("a")

    async def scenario():
        won = await client.cas("owner", None, "me")
        lost = await client.cas("owner", None, "you")
        moved = await client.cas("owner", "me", "you")
        return won, lost, moved, await client.get("owner")

    assert run(kernel, scenario()) == (True, False, True, "you")


def test_cas_is_atomic_under_interleaving(kernel, store):
    winners = []

    async def contender(name):
        client = store.client(name)
        if await client.cas("lock", None, name):
            winners.append(name)

    tasks = [kernel.spawn(contender(f"c{i}")) for i in range(8)]
    kernel.run_until_complete(kernel.gather(tasks))
    assert len(winners) == 1


def test_hash_operations(kernel, store):
    client = store.client("a")

    async def scenario():
        await client.hset("h", "x", 1)
        await client.hset("h", "y", 2)
        everything = await client.hgetall("h")
        removed = await client.hdel("h", "x")
        return everything, removed, await client.hget("h", "x"), await client.hget("h", "y")

    everything, removed, x, y = run(kernel, scenario())
    assert everything == {"x": 1, "y": 2}
    assert removed is True
    assert x is None
    assert y == 2


def test_hgetall_returns_copy(kernel, store):
    client = store.client("a")

    async def scenario():
        await client.hset("h", "x", 1)
        snapshot = await client.hgetall("h")
        snapshot["x"] = 99
        return await client.hget("h", "x")

    assert run(kernel, scenario()) == 1


def test_delete_hash(kernel, store):
    client = store.client("a")

    async def scenario():
        await client.hset("h", "x", 1)
        dropped = await client.delete_hash("h")
        return dropped, await client.hgetall("h")

    assert run(kernel, scenario()) == (True, {})


def test_fenced_client_rejected(kernel, store):
    client = store.client("victim")

    async def scenario():
        await client.set("k", 1)
        store.fence("victim")
        with pytest.raises(FencedClientError):
            await client.set("k", 2)
        return await store.client("survivor").get("k")

    assert run(kernel, scenario()) == 1


def test_lingering_write_rejected_by_fence(kernel, store):
    """A write issued before the fence but landing after it must fail --
    the Section 2.3 delayed store.set scenario."""
    client = store.client("victim")

    async def lingering_write():
        with pytest.raises(FencedClientError):
            await client.set("key", "stale")

    task = kernel.spawn(lingering_write())
    store.fence("victim")  # fence lands while the write is in flight
    kernel.run_until_complete(task)


def test_unfence_readmits(kernel, store):
    client = store.client("a")
    store.fence("a")
    store.unfence("a")

    async def scenario():
        await client.set("k", 5)
        return await client.get("k")

    assert run(kernel, scenario()) == 5


def test_keys_prefix(kernel, store):
    client = store.client("a")

    async def scenario():
        await client.set("p:1", 1)
        await client.set("p:2", 2)
        await client.set("q:1", 3)

    run(kernel, scenario())
    assert store.keys("p:") == ["p:1", "p:2"]
