"""Reminders: delayed and periodic tells, persistence across failures."""

from repro.core import Actor, actor_proxy

from helpers import make_app, run


class Clocked(Actor):
    fired = []

    async def tick(self, ctx, tag):
        Clocked.fired.append((tag, ctx.now))


def reminder_app(seed=0):
    Clocked.fired = []
    kernel, app = make_app(seed)
    app.register_actor(Clocked)
    app.add_component("w1", ("Clocked",))
    app.add_component("w2", ("Clocked",))
    app.client()
    app.settle()
    return kernel, app


def schedule(kernel, app, reminder_id, ref, method, delay, *args, period=None):
    from repro.core.reminders import ReminderAPI

    component = app.client()
    api = ReminderAPI(component)
    run(
        kernel,
        api.schedule(reminder_id, ref, method, delay, *args, period=period),
        process=component.process,
    )


def test_one_shot_reminder_fires_once():
    kernel, app = reminder_app(seed=1)
    ref = actor_proxy("Clocked", "c")
    schedule(kernel, app, "r1", ref, "tick", 2.0, "hello")
    kernel.run(until=kernel.now + 10.0)
    assert len(Clocked.fired) == 1
    tag, when = Clocked.fired[0]
    assert tag == "hello"
    assert when >= 2.0


def test_periodic_reminder_repeats():
    kernel, app = reminder_app(seed=2)
    ref = actor_proxy("Clocked", "c")
    schedule(kernel, app, "r1", ref, "tick", 1.0, "beat", period=2.0)
    kernel.run(until=kernel.now + 9.0)
    assert len(Clocked.fired) >= 3


def test_cancel_stops_reminder():
    kernel, app = reminder_app(seed=3)
    ref = actor_proxy("Clocked", "c")
    schedule(kernel, app, "r1", ref, "tick", 1.0, "beat", period=1.0)
    kernel.run(until=kernel.now + 3.5)
    fired_before = len(Clocked.fired)
    assert fired_before >= 1

    from repro.core.reminders import ReminderAPI

    component = app.client()
    run(kernel, ReminderAPI(component).cancel("r1"), process=component.process)
    kernel.run(until=kernel.now + 5.0)
    assert len(Clocked.fired) <= fired_before + 1  # at most one in-flight


def test_reminder_survives_leader_failure():
    """Reminders persist in the store; a new leader keeps delivering."""
    kernel, app = reminder_app(seed=4)
    ref = actor_proxy("Clocked", "c")
    schedule(kernel, app, "r1", ref, "tick", 6.0, "late")
    leader = app.coordinator.leader
    leader_name = leader.rsplit("#", 1)[0]
    if leader_name != "client":
        app.kill_component(leader_name)
    kernel.run(until=kernel.now + 30.0)
    tags = [tag for tag, _ in Clocked.fired]
    assert "late" in tags
