"""The Figure 6 booking workflow, end to end, on the KAR runtime."""

import pytest

from repro.core import KarConfig, actor_proxy
from repro.reefer import ReeferApplication, ReeferConfig
from repro.sim import Kernel


@pytest.fixture
def reefer():
    kernel = Kernel(seed=21)
    application = ReeferApplication(
        kernel,
        KarConfig.fast_test(),
        ReeferConfig(order_rate=0.0, anomaly_rate=0.0),
    )
    application.app.settle()
    return application


def book(reefer, order_id="O-000001", origin="Elizabeth",
         destination="Oakland", quantity=2):
    component = reefer.simulator_component
    task = reefer.kernel.spawn(
        component.invoke(
            None,
            actor_proxy("OrderManager", "singleton"),
            "book",
            ({
                "order_id": order_id,
                "customer": "acme",
                "product": "bananas",
                "origin": origin,
                "destination": destination,
                "quantity": quantity,
            },),
            True,
        ),
        component.process,
    )
    return reefer.kernel.run_until_complete(task, timeout=120.0)


def test_booking_returns_summary(reefer):
    result = book(reefer)
    assert result["status"] == "booked"
    assert result["order_id"] == "O-000001"
    assert len(result["containers"]) == 2
    assert result["voyage_id"].startswith("V-ELIOAK-")


def test_booking_updates_manager_and_webapi(reefer):
    book(reefer)
    statuses = reefer.order_statuses()
    assert statuses["O-000001"] == "booked"
    accepted = reefer.webapi.events("order-accepted")
    assert {"order_id": "O-000001"} in accepted


def test_booking_allocates_containers_from_origin_depot(reefer):
    result = book(reefer)
    locations = reefer.container_locations()
    for container in result["containers"]:
        assert tuple(locations[container]) == (
            "order", "O-000001", result["voyage_id"],
        )
        assert container.startswith("C-ELI-")


def test_booking_workflow_shape_matches_figure6(reefer):
    """Verify the call kinds: a tail chain through OrderManager -> Order ->
    Voyage -> Depot -> Order -> OrderManager, one reentrant sync call, one
    tell to the ScheduleManager."""
    book(reefer)
    trace = reefer.app.trace
    chain_id = trace.where("invoke.start", method="book")[0]["request"]
    chain = [
        (event["actor"].split("[")[0], event["method"])
        for event in trace.of_kind("invoke.start")
        if event["request"] == chain_id
    ]
    assert chain == [
        ("OrderManager", "book"),
        ("Order", "create"),
        ("Voyage", "reserve"),
        ("Depot", "reserve_containers"),
        ("Order", "booked"),
        ("OrderManager", "order_booked"),
    ]
    # The reentrant sub-orchestration ran while the chain was open.
    assert trace.count("invoke.start", method="order_accepted") == 1
    # The async schedule update was delivered.
    assert trace.count("invoke.start", method="voyage_booked") == 1
    # find_voyage is a synchronous nested call from Order.create.
    assert trace.count("invoke.start", method="find_voyage") == 1


def test_two_orders_share_voyage_capacity(reefer):
    first = book(reefer, "O-000001", quantity=2)
    second = book(reefer, "O-000002", quantity=2)
    assert first["voyage_id"] == second["voyage_id"]
    assert not set(first["containers"]) & set(second["containers"])


def test_order_rejected_when_depot_exhausted():
    kernel = Kernel(seed=22)
    reefer = ReeferApplication(
        kernel,
        KarConfig.fast_test(),
        ReeferConfig(order_rate=0.0, anomaly_rate=0.0, containers_per_depot=1),
    )
    reefer.app.settle()
    first = book(reefer, "O-000001", quantity=1)
    assert first["status"] == "booked"
    second = book(reefer, "O-000002", quantity=1)
    assert second["status"] == "rejected"
    statuses = reefer.order_statuses()
    assert statuses["O-000002"] == "rejected"


def test_voyage_lifecycle_departs_and_delivers(reefer):
    result = book(reefer)
    voyage = actor_proxy("Voyage", result["voyage_id"])
    component = reefer.simulator_component

    def invoke(method, *args):
        task = reefer.kernel.spawn(
            component.invoke(None, voyage, method, args, True),
            component.process,
        )
        return reefer.kernel.run_until_complete(task, timeout=120.0)

    assert invoke("depart") == "departed"
    reefer.kernel.run(until=reefer.kernel.now + 2.0)
    assert reefer.order_statuses()["O-000001"] == "in-transit"
    arrival = invoke("arrive")
    assert arrival["landed"] == 2
    reefer.kernel.run(until=reefer.kernel.now + 2.0)
    assert reefer.order_statuses()["O-000001"] == "delivered"
    # Containers landed at the destination depot.
    locations = reefer.container_locations()
    for container in result["containers"]:
        assert tuple(locations[container]) == ("depot", "Oakland")


def test_depart_is_idempotent(reefer):
    result = book(reefer)
    voyage = actor_proxy("Voyage", result["voyage_id"])
    component = reefer.simulator_component

    def invoke(method):
        task = reefer.kernel.spawn(
            component.invoke(None, voyage, method, (), True),
            component.process,
        )
        return reefer.kernel.run_until_complete(task, timeout=120.0)

    assert invoke("depart") == "departed"
    assert invoke("depart") == "departed"  # redelivery is harmless
    reefer.kernel.run(until=reefer.kernel.now + 2.0)
    stats = reefer.voyage_stats()
    assert result["voyage_id"] in stats["departed"]


def test_anomaly_in_transit_spoils_order(reefer):
    result = book(reefer)
    component = reefer.simulator_component

    def invoke(ref, method, *args):
        task = reefer.kernel.spawn(
            component.invoke(None, ref, method, args, True),
            component.process,
        )
        return reefer.kernel.run_until_complete(task, timeout=120.0)

    invoke(actor_proxy("Voyage", result["voyage_id"]), "depart")
    outcome = invoke(
        actor_proxy("AnomalyRouter", "singleton"),
        "anomaly",
        result["containers"][0],
    )
    assert outcome == "spoiled"
    reefer.kernel.run(until=reefer.kernel.now + 2.0)
    assert reefer.order_statuses()["O-000001"] == "spoiled"


def test_anomaly_at_depot_damages_container(reefer):
    outcome_container = "C-ELI-0050"
    component = reefer.simulator_component
    task = reefer.kernel.spawn(
        component.invoke(
            None,
            actor_proxy("AnomalyRouter", "singleton"),
            "anomaly",
            (outcome_container,),
            True,
        ),
        component.process,
    )
    # Router does not know the container yet (never assigned): unknown.
    assert reefer.kernel.run_until_complete(task, timeout=120.0) == "unknown"

    # Book it into the router's map, then land it back at a depot.
    result = book(reefer)
    container = result["containers"][0]
    voyage = actor_proxy("Voyage", result["voyage_id"])
    for method in ("depart", "arrive"):
        task = reefer.kernel.spawn(
            component.invoke(None, voyage, method, (), True),
            component.process,
        )
        reefer.kernel.run_until_complete(task, timeout=120.0)
    reefer.kernel.run(until=reefer.kernel.now + 2.0)
    task = reefer.kernel.spawn(
        component.invoke(
            None, actor_proxy("AnomalyRouter", "singleton"), "anomaly",
            (container,), True,
        ),
        component.process,
    )
    assert reefer.kernel.run_until_complete(task, timeout=120.0) == "damaged"
    assert tuple(reefer.container_locations()[container]) == ("damaged",)
