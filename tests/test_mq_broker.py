"""Unit tests for partitions, topics, expiry, and producer fencing."""

import pytest

from repro.mq import Broker, BrokerConfig, FencedMemberError
from repro.sim import Kernel, Latency


def run(kernel, coro):
    return kernel.run_until_complete(kernel.spawn(coro))


@pytest.fixture
def kernel():
    return Kernel(seed=3)


@pytest.fixture
def broker(kernel):
    config = BrokerConfig(
        produce_latency=Latency.fixed(0.001),
        consume_latency=Latency.fixed(0.0005),
        retention_seconds=60.0,
    )
    return Broker(kernel, config)


def test_produce_assigns_increasing_offsets(kernel, broker):
    async def scenario():
        first = await broker.produce("t", "p", "a", "client")
        second = await broker.produce("t", "p", "b", "client")
        return first.offset, second.offset

    assert run(kernel, scenario()) == (0, 1)


def test_partitions_are_independent(kernel, broker):
    async def scenario():
        one = await broker.produce("t", "p1", "a", "c")
        two = await broker.produce("t", "p2", "b", "c")
        return one.offset, two.offset

    assert run(kernel, scenario()) == (0, 0)


def test_fetch_from_offset(kernel, broker):
    async def scenario():
        for value in ("a", "b", "c"):
            await broker.produce("t", "p", value, "c")
        records = await broker.fetch("t", "p", 1, "c")
        return [record.value for record in records]

    assert run(kernel, scenario()) == ["b", "c"]


def test_fetch_limit(kernel, broker):
    async def scenario():
        for value in range(5):
            await broker.produce("t", "p", value, "c")
        records = await broker.fetch("t", "p", 0, "c", limit=2)
        return [record.value for record in records]

    assert run(kernel, scenario()) == [0, 1]


def test_expiry_by_age(kernel, broker):
    async def scenario():
        await broker.produce("t", "p", "old", "c")
        await kernel.sleep(61.0)
        await broker.produce("t", "p", "new", "c")
        records = await broker.fetch("t", "p", 0, "c")
        return [record.value for record in records]

    assert run(kernel, scenario()) == ["new"]
    partition = broker.topic("t").partition("p")
    assert partition.first_retained_offset == 1


def test_expiry_by_size():
    kernel = Kernel()
    broker = Broker(
        kernel,
        BrokerConfig(
            produce_latency=Latency.fixed(0.0),
            retention_seconds=1e9,
            retention_max_records=3,
        ),
    )

    async def scenario():
        for value in range(6):
            await broker.produce("t", "p", value, "c")
        records = await broker.fetch("t", "p", 0, "c")
        return [record.value for record in records]

    assert run(kernel, scenario()) == [3, 4, 5]


def test_fenced_producer_rejected(kernel, broker):
    async def scenario():
        await broker.produce("t", "p", "ok", "victim")
        broker.fence("victim")
        with pytest.raises(FencedMemberError):
            await broker.produce("t", "p", "stale", "victim")
        with pytest.raises(FencedMemberError):
            await broker.fetch("t", "p", 0, "victim")

    run(kernel, scenario())


def test_in_flight_produce_fenced(kernel, broker):
    """A produce issued before the fence but landing after must be refused
    (forceful disconnection extends to in-flight messages)."""

    async def lingering():
        with pytest.raises(FencedMemberError):
            await broker.produce("t", "p", "stale", "victim")

    task = kernel.spawn(lingering())
    broker.fence("victim")
    kernel.run_until_complete(task)
    partition = broker.topic("t").partition("p")
    assert len(partition) == 0


def test_snapshot_unexpired_across_partitions(kernel, broker):
    async def scenario():
        await broker.produce("t", "p1", "a", "c")
        await broker.produce("t", "p2", "b", "c")
        await broker.produce("t", "p1", "c", "c")

    run(kernel, scenario())
    snapshot = broker.topic("t").snapshot_unexpired(kernel.now)
    assert [record.value for record in snapshot] == ["a", "b", "c"]


def test_wait_for_append_wakes(kernel, broker):
    async def consumer():
        waiter = broker.wait_for_append("t", "p")
        await waiter
        records = await broker.fetch("t", "p", 0, "c")
        return records[0].value

    async def producer():
        await kernel.sleep(1.0)
        await broker.produce("t", "p", "hello", "c")

    consumer_task = kernel.spawn(consumer())
    kernel.spawn(producer())
    assert kernel.run_until_complete(consumer_task) == "hello"


def test_drop_partition(kernel, broker):
    async def scenario():
        await broker.produce("t", "dead", "x", "c")

    run(kernel, scenario())
    broker.topic("t").drop_partition("dead")
    assert "dead" not in broker.topic("t").partitions
