"""Wire-codec round trips: everything durable backends must reconstruct."""

from __future__ import annotations

import pytest

from repro.core import Request, Response, TailCall, actor_proxy
from repro.mq import Record
from repro.persist import codec


def round_trip(value):
    return codec.loads(codec.dumps(value))


def test_scalars_and_containers():
    for value in (None, True, False, 3, 2.5, "s", [1, [2, "x"]], {"a": 1}):
        assert round_trip(value) == value
    assert round_trip((1, ("a", 2))) == (1, ("a", 2))
    assert type(round_trip((1, 2))) is tuple
    assert round_trip({1: "a", (2, 3): "b"}) == {1: "a", (2, 3): "b"}
    assert round_trip({"mixed": (1, [2, {"k": (3,)}])}) == {
        "mixed": (1, [2, {"k": (3,)}])
    }
    assert round_trip({1, 2, 3}) == {1, 2, 3}
    assert round_trip(frozenset({"a"})) == frozenset({"a"})


def test_envelope_round_trip():
    request = Request(
        request_id="r42",
        step=2,
        actor=actor_proxy("Flow", "f1"),
        method="start",
        args=(7, {"opts": (1, 2)}),
        return_address="r41",
        reply_to="caller#0",
        caller_actor=actor_proxy("Driver", "d1"),
        caller_member="caller#0",
        ancestors=("r40", "r41"),
        tail_lock=True,
        after_callee="r39",
        copy_epoch=3,
        expects_reply=True,
    )
    decoded = round_trip(request)
    assert decoded == request
    assert isinstance(decoded, Request)
    assert type(decoded.args) is tuple
    assert type(decoded.ancestors) is tuple

    response = Response("r42", value={"result": (1, 2)}, error=None)
    assert round_trip(response) == response
    assert round_trip(TailCall(actor_proxy("A", "1"), "m", (1,))) == TailCall(
        actor_proxy("A", "1"), "m", (1,)
    )


def test_record_round_trip():
    record = Record("w1#0", 5, 12.25, Response("r1", value="ok"))
    assert round_trip(record) == record


def test_pickle_fallback_for_exotic_values():
    value = complex(1, 2)  # not JSON, not a dataclass
    wire = codec.to_wire(value)
    assert wire["__kar__"] == "pickle"
    assert codec.from_wire(wire) == value


def test_unknown_tag_rejected():
    with pytest.raises(codec.CodecError):
        codec.from_wire({"__kar__": "martian"})


def test_unresolvable_type_rejected():
    with pytest.raises(codec.CodecError):
        codec.from_wire(
            {"__kar__": "dc", "type": "no.such.module:Thing", "fields": {}}
        )
