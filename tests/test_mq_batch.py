"""Batched produce: one round trip, per-partition guards, whole-batch fencing."""

import pytest

from repro.mq import Broker, BrokerConfig, FencedMemberError, StaleRouteError
from repro.mq.errors import MQError
from repro.mq.records import Record
from repro.sim import Kernel, Latency, SimProcess


def run(kernel, coro):
    return kernel.run_until_complete(kernel.spawn(coro))


@pytest.fixture
def kernel():
    return Kernel(seed=3)


@pytest.fixture
def broker(kernel):
    config = BrokerConfig(
        produce_latency=Latency.fixed(0.001),
        consume_latency=Latency.fixed(0.0005),
        retention_seconds=60.0,
    )
    return Broker(kernel, config)


# ---------------------------------------------------------------------------
# broker.produce_batch
# ---------------------------------------------------------------------------

def test_produce_batch_is_one_round_trip(kernel, broker):
    entries = [("p1", "a"), ("p2", "b"), ("p1", "c"), ("p3", "d")]

    async def scenario():
        return await broker.produce_batch("t", entries, "client")

    records = run(kernel, scenario())
    assert broker.produce_count == 1  # one round trip for four records
    assert broker.produce_record_count == 4
    assert [r.partition for r in records] == ["p1", "p2", "p1", "p3"]
    # Per-partition append order follows entry order.
    assert [r.offset for r in records] == [0, 0, 1, 0]
    # One produce latency was charged, not four.
    assert kernel.now == pytest.approx(0.001)


def test_produce_batch_charges_latency_before_appending(kernel, broker):
    async def scenario():
        records = await broker.produce_batch("t", [("p", "a")], "c")
        return records[0].timestamp

    assert run(kernel, scenario()) == pytest.approx(0.001)


def test_produce_batch_fenced_rejects_everything(kernel, broker):
    broker.fence("client")

    async def scenario():
        with pytest.raises(FencedMemberError):
            await broker.produce_batch("t", [("p1", "a"), ("p2", "b")], "client")

    run(kernel, scenario())
    assert broker.produce_record_count == 0
    assert len(broker.topic("t").partition("p1")) == 0
    assert len(broker.topic("t").partition("p2")) == 0


def test_produce_batch_fencing_lands_mid_batch(kernel, broker):
    """A fence that lands while the batch's produce round trip is in flight
    rejects the WHOLE batch at append time: nothing is appended."""

    async def fence_mid_flight():
        await kernel.sleep(0.0005)  # inside the 1 ms produce round trip
        broker.fence("client")

    async def scenario():
        kernel.spawn(fence_mid_flight())
        with pytest.raises(FencedMemberError):
            await broker.produce_batch(
                "t", [("p1", "a"), ("p2", "b"), ("p3", "c")], "client"
            )

    run(kernel, scenario())
    assert broker.produce_count == 0
    assert broker.produce_record_count == 0
    for partition in ("p1", "p2", "p3"):
        assert len(broker.topic("t").partition(partition)) == 0


def test_produce_batch_guard_rejects_only_its_partition(kernel, broker):
    """Per-partition guards: a stale destination fails its own entries with
    per-entry outcomes; the rest of the batch still lands atomically."""
    live = {"p1", "p3"}
    guards = {
        name: (lambda n=name: n in live) for name in ("p1", "p2", "p3")
    }

    async def scenario():
        return await broker.produce_batch(
            "t",
            [("p1", "a"), ("p2", "b"), ("p3", "c"), ("p2", "d")],
            "client",
            guards,
        )

    outcomes = run(kernel, scenario())
    assert isinstance(outcomes[0], Record)
    assert isinstance(outcomes[1], MQError)
    assert isinstance(outcomes[2], Record)
    assert isinstance(outcomes[3], MQError)
    assert broker.produce_count == 1
    assert broker.produce_record_count == 2
    assert len(broker.topic("t").partition("p2")) == 0


def test_produce_batch_evaluates_guard_once_per_partition(kernel, broker):
    calls = []

    def guard():
        calls.append(1)
        return True

    async def scenario():
        await broker.produce_batch(
            "t", [("p", "a"), ("p", "b"), ("p", "c")], "c", {"p": guard}
        )

    run(kernel, scenario())
    assert len(calls) == 1


def test_produce_batch_empty_is_free(kernel, broker):
    async def scenario():
        return await broker.produce_batch("t", [], "c")

    assert run(kernel, scenario()) == []
    assert kernel.now == 0.0
    assert broker.produce_count == 0


def test_produce_batch_wakes_append_waiters(kernel, broker):
    async def scenario():
        waiter = broker.wait_for_append("t", "p2")
        await broker.produce_batch("t", [("p1", "a"), ("p2", "b")], "c")
        await waiter  # resolved by the batch append
        return True

    assert run(kernel, scenario())


# ---------------------------------------------------------------------------
# group member.send_batch
# ---------------------------------------------------------------------------

def _group(kernel, broker):
    from repro.mq import GroupCoordinator

    group = GroupCoordinator(broker, "g", "t")
    group.on_generation(lambda info: group.resume(info.generation))
    members = {}
    for name in ("a", "b"):
        members[name] = group.join(name, SimProcess(name))
    kernel.run(until=kernel.now + 10.0)
    assert not group.paused
    return group, members


def test_send_batch_mixed_stale_destination(kernel, broker):
    group, members = _group(kernel, broker)

    async def scenario():
        return await members["a"].send_batch(
            [("b", "x"), ("ghost", "y"), ("b", "z")]
        )

    outcomes = run(kernel, scenario())
    assert isinstance(outcomes[0], Record)
    assert isinstance(outcomes[1], StaleRouteError)
    assert isinstance(outcomes[2], Record)
    assert [r.offset for r in outcomes if isinstance(r, Record)] == [0, 1]
    assert len(broker.topic("t").partition("ghost")) == 0


def test_send_batch_fenced_member_raises_whole_batch(kernel, broker):
    group, members = _group(kernel, broker)
    group.leave("a")
    kernel.run(until=kernel.now + 10.0)

    async def scenario():
        with pytest.raises(FencedMemberError):
            await members["a"].send_batch([("b", "x")])

    run(kernel, scenario())
    assert len(broker.topic("t").partition("b")) == 0
