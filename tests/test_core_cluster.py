"""Multi-worker scale-out: sharded hosting, worker lifecycle, handoff.

Covers the cluster control plane (`repro.core.cluster`): consistent-hash
assignment of components to worker loops, the unified ``app.stats()``
evidence surface, worker crash detection + re-hosting, graceful removal,
live migration on worker join, and exactly-once settlement across a
mid-workload worker kill on both store backends.
"""

from __future__ import annotations

import pytest

from repro.core import Actor, KarCluster, KarConfig, actor_proxy
from repro.persist import PersistenceConfig
from repro.sim import Kernel


class Echo(Actor):
    async def ping(self, ctx, x):
        return x + 1


class Counter(Actor):
    """Persistent accumulator with read-then-tail-write commit discipline."""

    async def bump(self, ctx, amount):
        total = await ctx.state.get("total", 0)
        return ctx.tail_call(None, "commit", total + amount)

    async def commit(self, ctx, total):
        await ctx.state.set("total", total)
        return total

    async def get(self, ctx):
        return await ctx.state.get("total", 0)


def make_cluster(
    seed=0, workers=2, components=4, mode="memory", tmp_path=None, **overrides
):
    kernel = Kernel(seed=seed)
    config = KarConfig.fast_test().with_overrides(
        worker_loop_cost=0.002, **overrides
    )
    if mode == "sqlite":
        config = config.with_overrides(
            persistence=PersistenceConfig(
                mode="sqlite", root=str(tmp_path / "durable")
            )
        )
    app = KarCluster(kernel, config, "cluster", workers=workers)
    app.register_actor(Echo, "Echo")
    app.register_actor(Counter, "Counter")
    for index in range(components):
        app.add_component(f"comp{index}", ("Echo", "Counter"))
    app.client()
    app.settle()
    return kernel, app


def drive_calls(kernel, app, ids, timeout=600.0):
    client = app.client()

    async def one(n):
        return await client.invoke(
            None, actor_proxy("Echo", f"a{n % 32}"), "ping", (n,), True
        )

    tasks = [kernel.spawn(one(n), process=client.process) for n in ids]
    return kernel.run_until_complete(kernel.gather(tasks), timeout=timeout)


# ----------------------------------------------------------------------
# hosting & evidence surface
# ----------------------------------------------------------------------
def test_components_shard_across_workers_balanced():
    kernel, app = make_cluster(components=6, workers=2)
    placement = {name: app.worker_of(name) for name in app.components}
    hosted = [w for w in placement.values() if w is not None]
    assert len(hosted) == 6  # every actor-hosting component is assigned
    assert placement["client"] is None  # clients stay external
    per_worker = {w: hosted.count(w) for w in set(hosted)}
    assert set(per_worker.values()) == {3}


def test_unified_stats_reports_per_worker():
    kernel, app = make_cluster()
    drive_calls(kernel, app, range(20))
    stats = app.stats()
    assert set(stats) == {
        "transport",
        "store",
        "persistence",
        "overload",
        "workers",
        "placement",
        "calls",
        "gateway",
    }
    # Single-family access agrees with the full tree.
    assert stats["transport"] == app.stats("transport")
    assert stats["store"] == app.stats("store")
    assert stats["persistence"] == app.stats("persistence")
    assert set(stats["workers"]) == {"w0", "w1"}
    charged = sum(w["calls_charged"] for w in stats["workers"].values())
    assert charged >= 20
    # busy_seconds is a decaying window; right after activity it is still
    # positive, while busy_seconds_total carries the lifetime sum.
    assert all(w["busy_seconds"] > 0 for w in stats["workers"].values())
    assert all(
        w["busy_seconds_total"] >= w["busy_seconds"]
        for w in stats["workers"].values()
    )
    assert stats["placement"] == app.stats("placement")


def test_worker_loop_cost_serializes_executions():
    kernel1, app1 = make_cluster(workers=1, components=8)
    start = kernel1.now
    drive_calls(kernel1, app1, range(100))
    span1 = kernel1.now - start

    kernel2, app2 = make_cluster(workers=2, components=8)
    start = kernel2.now
    drive_calls(kernel2, app2, range(100))
    span2 = kernel2.now - start
    assert span2 < span1 / 1.4  # two loops genuinely parallelize


# ----------------------------------------------------------------------
# worker lifecycle
# ----------------------------------------------------------------------
def test_worker_crash_rehosts_components_and_settles_in_flight():
    kernel, app = make_cluster(components=4, workers=2)
    victim = app.worker_of("comp0")
    client = app.client()

    async def one(n):
        return await client.invoke(
            None, actor_proxy("Echo", f"a{n % 32}"), "ping", (n,), True
        )

    tasks = [kernel.spawn(one(n), process=client.process) for n in range(40)]
    kernel.run(until=kernel.now + 0.01)  # let calls take flight
    app.kill_worker(victim)
    results = kernel.run_until_complete(kernel.gather(tasks), timeout=600)
    assert results == [n + 1 for n in range(40)]
    kernel.run(until=kernel.now + 5.0)
    assert app.stats("calls")["unsettled"] == []
    assert app.workers_failed == [victim]
    survivors = {
        app.worker_of(name)
        for name in app.components
        if name != "client"
    }
    assert victim not in survivors


def test_graceful_remove_drains_and_hands_off():
    kernel, app = make_cluster(components=4, workers=2)
    drive_calls(kernel, app, range(10))
    app.remove_worker("w0")
    assert not app.workers["w0"].alive
    assert app.workers["w0"].retired
    # Every component now lives on the survivor and still serves calls.
    hosted = {
        app.worker_of(name) for name in app.components if name != "client"
    }
    assert hosted == {"w1"}
    assert drive_calls(kernel, app, range(10, 20)) == [
        n + 1 for n in range(10, 20)
    ]
    kernel.run(until=kernel.now + 5.0)
    assert app.stats("calls")["unsettled"] == []


def test_add_worker_migrates_ring_share():
    kernel, app = make_cluster(components=6, workers=1)
    drive_calls(kernel, app, range(10))
    assert {app.worker_of(f"comp{i}") for i in range(6)} == {"w0"}
    app.add_worker("w1")
    kernel.run(until=kernel.now + 10.0)
    placement = {f"comp{i}": app.worker_of(f"comp{i}") for i in range(6)}
    assert "w1" in set(placement.values())  # some components moved over
    assert app.migrations > 0
    assert drive_calls(kernel, app, range(10, 30)) == [
        n + 1 for n in range(10, 30)
    ]
    kernel.run(until=kernel.now + 5.0)
    assert app.stats("calls")["unsettled"] == []


# ----------------------------------------------------------------------
# exactly-once across a mid-workload kill, both store backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["memory", "sqlite"])
def test_mid_workload_worker_kill_settles_exactly_once(mode, tmp_path):
    kernel, app = make_cluster(
        seed=3, components=4, workers=2, mode=mode, tmp_path=tmp_path
    )
    client = app.client()
    counters = 8
    bumps = 5

    async def workflow(cid):
        ref = actor_proxy("Counter", f"c{cid}")
        for _ in range(bumps):
            await client.invoke(None, ref, "bump", (1,), True)

    tasks = [
        kernel.spawn(workflow(cid), process=client.process)
        for cid in range(counters)
    ]
    kernel.run(until=kernel.now + 0.05)  # workflows mid-flight
    app.kill_worker("w0")
    kernel.run_until_complete(kernel.gather(tasks), timeout=600)
    kernel.run(until=kernel.now + 5.0)
    assert app.stats("calls")["unsettled"] == []
    totals = [
        app.run_call(actor_proxy("Counter", f"c{cid}"), "get")
        for cid in range(counters)
    ]
    # Exactly once: every bump committed, none doubled by the recovery copy.
    assert totals == [bumps] * counters
    app.shutdown()
