"""The actor.state persistence API and context surface."""

import pytest

from repro.core import Actor, actor_proxy
from repro.kvstore import KVStore
from repro.sim import Latency

from helpers import make_app


class Stateful(Actor):
    async def activate(self, ctx):
        self.loaded = await ctx.state.get_all()

    async def put(self, ctx, field, value):
        await ctx.state.set(field, value)

    async def put_many(self, ctx, updates):
        await ctx.state.set_multiple(updates)

    async def read(self, ctx, field, default=None):
        return await ctx.state.get(field, default)

    async def read_all(self, ctx):
        return await ctx.state.get_all()

    async def drop(self, ctx, field):
        return await ctx.state.remove(field)

    async def wipe(self, ctx):
        return await ctx.state.remove_all()

    async def introspect(self, ctx):
        return {
            "self_ref": str(ctx.self_ref),
            "request_id": ctx.request_id,
            "now": ctx.now,
            "component": ctx.component_name,
            "member": ctx.member_id,
        }

    async def peek_other(self, ctx, other_type, other_id):
        ref = actor_proxy(other_type, other_id)
        return await ctx.state_of(ref).get_all()


def state_app(seed=81):
    kernel, app = make_app(seed)
    app.register_actor(Stateful)
    app.add_component("w1", ("Stateful",))
    app.client()
    app.settle()
    return kernel, app


def test_set_get_roundtrip():
    kernel, app = state_app()
    ref = actor_proxy("Stateful", "s")
    app.run_call(ref, "put", "x", 1)
    assert app.run_call(ref, "read", "x") == 1
    assert app.run_call(ref, "read", "missing", "fallback") == "fallback"


def test_set_multiple_and_get_all():
    kernel, app = state_app(82)
    ref = actor_proxy("Stateful", "s")
    app.run_call(ref, "put_many", {"a": 1, "b": 2})
    assert app.run_call(ref, "read_all") == {"a": 1, "b": 2}


def test_remove_field():
    kernel, app = state_app(83)
    ref = actor_proxy("Stateful", "s")
    app.run_call(ref, "put", "x", 1)
    assert app.run_call(ref, "drop", "x") is True
    assert app.run_call(ref, "drop", "x") is False
    assert app.run_call(ref, "read", "x") is None


def test_remove_all():
    kernel, app = state_app(84)
    ref = actor_proxy("Stateful", "s")
    app.run_call(ref, "put_many", {"a": 1, "b": 2})
    assert app.run_call(ref, "wipe") is True
    assert app.run_call(ref, "read_all") == {}


def test_state_is_per_instance():
    kernel, app = state_app(85)
    app.run_call(actor_proxy("Stateful", "s1"), "put", "x", 1)
    app.run_call(actor_proxy("Stateful", "s2"), "put", "x", 2)
    assert app.run_call(actor_proxy("Stateful", "s1"), "read", "x") == 1
    assert app.run_call(actor_proxy("Stateful", "s2"), "read", "x") == 2


def test_state_of_other_instance():
    kernel, app = state_app(86)
    app.run_call(actor_proxy("Stateful", "target"), "put", "k", 9)
    peeked = app.run_call(
        actor_proxy("Stateful", "peeker"), "peek_other", "Stateful", "target"
    )
    assert peeked == {"k": 9}


def test_context_introspection():
    kernel, app = state_app(87)
    info = app.run_call(actor_proxy("Stateful", "s"), "introspect")
    assert info["self_ref"] == "Stateful[s]"
    assert info["request_id"].startswith("r")
    assert info["component"] == "w1"
    assert info["member"].startswith("w1#")
    assert info["now"] > 0


def test_external_service_client_bound_to_member():
    kernel, app = make_app(seed=88)
    service = app.register_external_service(
        KVStore(kernel, Latency.fixed(0.001))
    )

    class Uses(Actor):
        async def stash(self, ctx, v):
            await ctx.external(service).set("k", v)
            return ctx.member_id

    app.register_actor(Uses)
    app.add_component("w1", ("Uses",))
    app.client()
    app.settle()
    member = app.run_call(actor_proxy("Uses", "u"), "stash", 5)
    assert member == app.components["w1"].member_id
    assert service._get("k") == 5
    # Fencing that member blocks its lingering writes.
    service.fence(member)
    from repro.kvstore import FencedClientError

    async def lingering():
        with pytest.raises(FencedClientError):
            await service.client(member).set("k", 6)

    kernel.run_until_complete(kernel.spawn(lingering()), timeout=30.0)
