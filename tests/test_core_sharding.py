"""Consistent-hash sharding: determinism, balance, and stability."""

from __future__ import annotations

import pytest

from repro.core.sharding import HashRing, assign_components

COMPONENTS = [f"comp{i}" for i in range(24)]


def test_assignment_is_deterministic_across_ring_instances():
    a = HashRing(["w0", "w1", "w2"]).assign(COMPONENTS)
    b = HashRing(["w2", "w0", "w1"]).assign(COMPONENTS)  # order-insensitive
    assert a == b
    assert a == assign_components(COMPONENTS, ["w0", "w1", "w2"])


def test_bounded_load_balances_perfectly():
    for workers in (2, 3, 4):
        ids = [f"w{i}" for i in range(workers)]
        assignment = HashRing(ids).assign(COMPONENTS)
        loads = [sum(1 for w in assignment.values() if w == wid) for wid in ids]
        cap = -(-len(COMPONENTS) // workers)  # ceil
        assert max(loads) <= cap
        assert sum(loads) == len(COMPONENTS)


def test_removing_a_worker_only_moves_its_items():
    before = HashRing(["w0", "w1", "w2"]).assign(COMPONENTS)
    after = HashRing(["w0", "w1"]).assign(COMPONENTS)
    # Items that stayed on a surviving worker kept their assignment unless
    # bounded-load overflow pushed them; the ones on w2 all moved.
    moved_from_survivors = [
        item
        for item in COMPONENTS
        if before[item] != "w2" and after[item] != before[item]
    ]
    # Bounded-load overflow may shuffle a few, but the bulk must be stable.
    assert len(moved_from_survivors) <= len(COMPONENTS) // 3


def test_successors_visit_every_worker_once():
    ring = HashRing(["w0", "w1", "w2", "w3"])
    order = list(ring.successors("some-item"))
    assert sorted(order) == ["w0", "w1", "w2", "w3"]


def test_empty_worker_set_rejected():
    with pytest.raises(ValueError):
        HashRing([]).assign(["x"])
    assert list(HashRing([]).successors("x")) == []


def test_replicas_validation():
    with pytest.raises(ValueError):
        HashRing(["w0"], replicas=0)
