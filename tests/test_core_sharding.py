"""Consistent-hash sharding: determinism, balance, and stability."""

from __future__ import annotations

import pytest

from repro.core.sharding import (
    HashRing,
    assign_components,
    parent_partition,
    sub_partition_names,
)

COMPONENTS = [f"comp{i}" for i in range(24)]


def test_assignment_is_deterministic_across_ring_instances():
    a = HashRing(["w0", "w1", "w2"]).assign(COMPONENTS)
    b = HashRing(["w2", "w0", "w1"]).assign(COMPONENTS)  # order-insensitive
    assert a == b
    assert a == assign_components(COMPONENTS, ["w0", "w1", "w2"])


def test_bounded_load_balances_perfectly():
    for workers in (2, 3, 4):
        ids = [f"w{i}" for i in range(workers)]
        assignment = HashRing(ids).assign(COMPONENTS)
        loads = [sum(1 for w in assignment.values() if w == wid) for wid in ids]
        cap = -(-len(COMPONENTS) // workers)  # ceil
        assert max(loads) <= cap
        assert sum(loads) == len(COMPONENTS)


def test_removing_a_worker_only_moves_its_items():
    before = HashRing(["w0", "w1", "w2"]).assign(COMPONENTS)
    after = HashRing(["w0", "w1"]).assign(COMPONENTS)
    # Items that stayed on a surviving worker kept their assignment unless
    # bounded-load overflow pushed them; the ones on w2 all moved.
    moved_from_survivors = [
        item
        for item in COMPONENTS
        if before[item] != "w2" and after[item] != before[item]
    ]
    # Bounded-load overflow may shuffle a few, but the bulk must be stable.
    assert len(moved_from_survivors) <= len(COMPONENTS) // 3


def test_successors_visit_every_worker_once():
    ring = HashRing(["w0", "w1", "w2", "w3"])
    order = list(ring.successors("some-item"))
    assert sorted(order) == ["w0", "w1", "w2", "w3"]


def test_empty_worker_set_rejected():
    with pytest.raises(ValueError):
        HashRing([]).assign(["x"])
    assert list(HashRing([]).successors("x")) == []


def test_replicas_validation():
    with pytest.raises(ValueError):
        HashRing(["w0"], replicas=0)


# ----------------------------------------------------------------------
# weighted assignment (the load-aware path)
# ----------------------------------------------------------------------
def test_zero_weights_reduce_to_count_balanced_assignment():
    ring = HashRing(["w0", "w1", "w2"])
    unweighted = ring.assign(COMPONENTS)
    zeroed = ring.assign(COMPONENTS, weights={c: 0.0 for c in COMPONENTS})
    assert zeroed == unweighted


def test_weighted_assignment_bounds_load_not_count():
    # One scorching item plus many cold ones: weighted capacity is the hot
    # item's load, so nothing else may share its worker.
    items = [f"comp{i}" for i in range(9)]
    weights = {name: 0.1 for name in items}
    weights["comp0"] = 10.0
    assignment = HashRing(["w0", "w1", "w2"]).assign(items, weights=weights)
    hot_worker = assignment["comp0"]
    sharing = [n for n in items if n != "comp0" and assignment[n] == hot_worker]
    assert sharing == []
    # Every item still lands somewhere, deterministically.
    assert set(assignment) == set(items)
    again = HashRing(["w2", "w1", "w0"]).assign(items, weights=weights)
    assert again == assignment


def test_weighted_assignment_spreads_equal_loads():
    items = [f"comp{i}" for i in range(6)]
    weights = {name: 1.0 for name in items}
    assignment = HashRing(["w0", "w1"]).assign(items, weights=weights)
    per_worker = [
        sum(weights[n] for n in items if assignment[n] == wid)
        for wid in ("w0", "w1")
    ]
    assert per_worker == [3.0, 3.0]


# ----------------------------------------------------------------------
# sub-partition naming (hot-component splitting)
# ----------------------------------------------------------------------
def test_sub_partition_names_roundtrip_through_parent():
    children = sub_partition_names("orders", 4)
    assert children == ("orders.s0", "orders.s1", "orders.s2", "orders.s3")
    assert all(parent_partition(child) == "orders" for child in children)
    assert parent_partition("orders") is None
    assert parent_partition("orders.sx") is None  # not a split name
    with pytest.raises(ValueError):
        sub_partition_names("orders", 1)
