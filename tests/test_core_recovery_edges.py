"""Edge cases in recovery: unplaceable types, duplicate copies, expiry,
superseded reconciliations, leader failover."""

import pytest

from repro.core import Actor, actor_proxy
from repro.core.reconciler import UNPLACED_PARTITION

from helpers import Latch, make_app, two_component_app


def test_call_waits_for_type_to_become_available():
    """Kill the only component hosting a type mid-call: the pending request
    parks in the unplaced queue and completes once a new host joins
    (Section 4.3: requests to unavailable types are revisited)."""

    class SlowLatch(Latch):
        async def slow_get(self, ctx):
            await ctx.sleep(3.0)
            return self.v

    kernel, app = make_app(seed=51)
    app.register_actor(SlowLatch)
    app.add_component("only", ("SlowLatch",))
    client = app.client()
    app.settle()
    ref = actor_proxy("SlowLatch", "x")
    app.run_call(ref, "set", 5)

    task = kernel.spawn(
        client.invoke(None, ref, "slow_get", (), True), process=client.process
    )
    kernel.run(until=kernel.now + 1.0)  # request is mid-execution
    app.kill_component("only")
    kernel.run(until=kernel.now + 8.0)  # recovery: nowhere to place
    assert not task.done()
    unplaced = app.broker.topic(app.topic_name).partitions.get(
        UNPLACED_PARTITION
    )
    assert unplaced is not None and len(unplaced) >= 1
    app.restart_component("only")
    assert kernel.run_until_complete(task, timeout=120.0) == 0  # volatile


def test_leader_failover_restarts_reconciliation():
    """Kill the reconciliation leader during recovery of another failure;
    the next leader finishes the job."""
    kernel, app = two_component_app(seed=52)
    app.add_component("w3", ("Latch",))
    kernel.run(until=kernel.now + 2.0)
    ref = actor_proxy("Latch", "x")
    app.run_call(ref, "set", 9)

    # Fail one worker; then, as soon as the rebalance fires, kill the leader.
    leader_member = app.coordinator.leader
    leader_name = leader_member.rsplit("#", 1)[0]
    victims = [n for n in ("w1", "w2", "w3") if n != leader_name][:1]
    app.kill_component(victims[0])
    kernel.run(until=kernel.now + 1.3)  # detection fires
    if leader_name != "client":
        app.kill_component(leader_name)
    kernel.run(until=kernel.now + 15.0)
    assert not app.coordinator.paused
    assert app.run_call(ref, "get", timeout=120.0) in (0, 9)
    kernel.check_no_crashes()


def test_duplicate_recovery_copies_are_skipped():
    """Force two reconciliations over the same stranded request; the second
    copy must be deduplicated by (id, step)."""
    executions = []

    class Slow(Actor):
        async def work(self, ctx):
            executions.append(ctx.now)
            await ctx.sleep(6.0)
            return "done"

    kernel, app = make_app(seed=53)
    app.register_actor(Slow)
    app.add_component("w1", ("Slow",))
    app.add_component("w2", ("Slow",))
    app.add_component("w3", ("Slow",))
    client = app.client()
    app.settle()
    ref = actor_proxy("Slow", "s")
    task = kernel.spawn(
        client.invoke(None, ref, "work", (), True), process=client.process
    )
    kernel.run(until=kernel.now + 0.5)
    host = next(
        name for name in ("w1", "w2", "w3")
        if ref in app.components[name]._instances
    )
    app.kill_component(host)
    kernel.run(until=kernel.now + 2.0)  # first recovery copies the request
    # A second failure triggers another reconciliation while the retry runs.
    other = next(
        name for name in ("w1", "w2", "w3")
        if name != host and not any(
            r == ref for r in app.components[name]._instances
        )
    )
    app.kill_component(other)
    assert kernel.run_until_complete(task, timeout=300.0) == "done"
    # The retried attempt ran at most twice in total (original + retry);
    # duplicate copies were skipped, not re-executed.
    assert len(executions) == 2


def test_completed_work_not_rerun_after_multiple_failures():
    """Regression for the evidence-destruction bug: completion records in
    dead queues must survive long enough that later reconciliations do not
    re-run completed invocations."""
    runs = []

    class Effect(Actor):
        async def apply(self, ctx, tag):
            runs.append(tag)
            return tag

    kernel, app = make_app(seed=54)
    app.register_actor(Effect)
    app.add_component("w1", ("Effect",))
    app.add_component("w2", ("Effect",))
    client = app.client()
    app.settle()
    ref = actor_proxy("Effect", "e")
    client_component = app.client()

    # Issue a tell (fire and forget) and let it complete.
    kernel.run_until_complete(
        kernel.spawn(
            client_component.invoke(None, ref, "apply", ("first",), False),
            process=client_component.process,
        ),
        timeout=60.0,
    )
    kernel.run(until=kernel.now + 2.0)
    assert runs == ["first"]

    # Now kill and restart each component a few times.
    for victim in ("w1", "w2", "w1"):
        if app.components[victim].alive:
            app.kill_component(victim)
        kernel.run(until=kernel.now + 4.0)
        app.restart_component(victim)
        kernel.run(until=kernel.now + 4.0)
    assert runs == ["first"]  # never re-executed


def test_superseded_reconciliation_aborts_cleanly():
    kernel, app = two_component_app(seed=55)
    app.run_call(actor_proxy("Latch", "x"), "set", 1)
    app.kill_component("w1")
    kernel.run(until=kernel.now + 1.3)  # reconciliation of w1 starts
    app.kill_component("w2")  # supersede it
    app.restart_component("w1")
    app.restart_component("w2")
    kernel.run(until=kernel.now + 20.0)
    assert not app.coordinator.paused
    supersessions = app.trace.count("reconcile.superseded")
    assert supersessions >= 0  # may or may not race; must not crash
    kernel.check_no_crashes()


def test_fenced_component_terminates_itself():
    kernel, app = two_component_app(seed=56)
    member_id = app.components["w1"].member_id
    original_heartbeat = app.coordinator.heartbeat

    def muted(member):
        if member != member_id:
            original_heartbeat(member)

    app.coordinator.heartbeat = muted
    kernel.run(until=kernel.now + 10.0)
    assert not app.components["w1"].alive  # paired-process termination
    assert app.trace.count("component.fenced_exit", member=member_id) >= 0
    kernel.check_no_crashes()
