"""Property-based tests: the runtime's guarantees under random failures.

The central property mirrors the paper's exactly-once claim: a counter
incremented through tail-call chains ends exactly at the number of
successful increments, no matter when components die, as long as every
increment's root call eventually completes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Actor, actor_proxy
from repro.kvstore import KVStore
from repro.sim import Latency

from helpers import Accumulator, make_app


def accumulator_app(seed):
    kernel, app = make_app(seed)
    app.register_actor(Accumulator)
    Accumulator.store = app.register_external_service(
        KVStore(kernel, Latency.fixed(0.002))
    )
    app.add_component("w1", ("Accumulator",))
    app.add_component("w2", ("Accumulator",))
    app.client()
    app.settle()
    return kernel, app


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    kill_delays=st.lists(
        st.floats(min_value=0.05, max_value=3.0), min_size=1, max_size=3
    ),
    increments=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_exactly_once_increments_under_random_failures(
    seed, kill_delays, increments
):
    kernel, app = accumulator_app(seed)
    ref = actor_proxy("Accumulator", "acc")
    app.run_call(ref, "set_value", 0)
    client = app.client()
    tasks = [
        kernel.spawn(
            client.invoke(None, ref, "incr", (), True), process=client.process
        )
        for _ in range(increments)
    ]
    alive = {"w1", "w2"}
    for delay in kill_delays:
        kernel.run(until=kernel.now + delay)
        victim = kernel.rng.choice(sorted(alive))
        app.kill_component(victim)
        app.restart_component(victim)
    results = kernel.run_until_complete(kernel.gather(tasks), timeout=600.0)
    assert results == ["OK"] * increments
    assert app.run_call(ref, "get", timeout=120.0) == increments


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_single_execution_per_request_attempt(seed):
    """Theorem 3.3 at the runtime level: for every (request id, step),
    execution intervals never overlap, across arbitrary single failures."""
    executions = []

    class Tracked(Actor):
        async def work(self, ctx, tag):
            start = ctx.now
            await ctx.sleep(1.0)
            executions.append((ctx.request_id, start, ctx.now))
            return tag

    kernel, app = make_app(seed)
    app.register_actor(Tracked)
    app.add_component("w1", ("Tracked",))
    app.add_component("w2", ("Tracked",))
    client = app.client()
    app.settle()
    tasks = [
        kernel.spawn(
            client.invoke(
                None, actor_proxy("Tracked", f"t{i}"), "work", (i,), True
            ),
            process=client.process,
        )
        for i in range(3)
    ]
    kernel.run(until=kernel.now + 0.5)
    victim = kernel.rng.choice(["w1", "w2"])
    app.kill_component(victim)
    app.restart_component(victim)
    kernel.run_until_complete(kernel.gather(tasks), timeout=600.0)

    by_request = {}
    for request_id, start, end in executions:
        by_request.setdefault(request_id, []).append((start, end))
    for request_id, intervals in by_request.items():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2, f"overlapping executions of {request_id}"


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    values=st.lists(st.integers(), min_size=1, max_size=5),
)
@settings(max_examples=10, deadline=None)
def test_calls_linearize_on_one_actor(seed, values):
    """Sequential client calls on a single actor observe program order."""
    from helpers import PersistentLatch

    kernel, app = make_app(seed)
    app.register_actor(PersistentLatch)
    app.add_component("w1", ("PersistentLatch",))
    app.client()
    app.settle()
    ref = actor_proxy("PersistentLatch", "p")
    for value in values:
        app.run_call(ref, "set", value)
        assert app.run_call(ref, "get") == value
