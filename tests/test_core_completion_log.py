"""The completion-log mode: Section 4.3's future-work alternative.

With ``completion_log=True`` every call's response is written in one
message-queue transaction both to the caller's queue and to the executing
component's own queue. Completion evidence is then local, so reconciliation
discards failed queues eagerly -- and completed work must still never
re-run.
"""

import pytest

from repro.core import Actor, actor_proxy
from repro.kvstore import KVStore
from repro.sim import Latency

from helpers import Accumulator, Latch, make_app


def build(seed, **overrides):
    overrides.setdefault("completion_log", True)
    kernel, app = make_app(seed, **overrides)
    return kernel, app


def test_basic_call_roundtrip():
    kernel, app = build(seed=71)
    app.register_actor(Latch)
    app.add_component("w1", ("Latch",))
    app.client()
    app.settle()
    ref = actor_proxy("Latch", "x")
    app.run_call(ref, "set", 5)
    assert app.run_call(ref, "get") == 5


def test_completion_logged_in_own_queue():
    kernel, app = build(seed=72)
    app.register_actor(Latch)
    app.add_component("w1", ("Latch",))
    app.client()
    app.settle()
    app.run_call(actor_proxy("Latch", "x"), "set", 5)
    member_id = app.components["w1"].member_id
    partition = app.broker.topic(app.topic_name).partition(member_id)
    from repro.core.envelope import Response

    local_responses = [
        record.value
        for record in partition.unexpired(kernel.now)
        if isinstance(record.value, Response)
    ]
    assert local_responses  # the completion marker landed locally


def test_dead_queues_dropped_eagerly():
    kernel, app = build(seed=73)
    app.register_actor(Latch)
    app.add_component("w1", ("Latch",))
    app.add_component("w2", ("Latch",))
    app.client()
    app.settle()
    app.run_call(actor_proxy("Latch", "x"), "set", 5)
    member_id = app.components["w1"].member_id
    app.kill_component("w1")
    kernel.run(until=kernel.now + 10.0)
    partitions = app.broker.topic(app.topic_name).partitions
    assert member_id not in partitions  # discarded at reconciliation


def test_retry_still_works_under_failure():
    attempts = []

    class Slow(Actor):
        async def work(self, ctx, v):
            attempts.append(ctx.now)
            await ctx.sleep(4.0)
            return v + 1

    kernel, app = build(seed=74)
    app.register_actor(Slow)
    app.add_component("w1", ("Slow",))
    app.add_component("w2", ("Slow",))
    client = app.client()
    app.settle()
    ref = actor_proxy("Slow", "s")
    task = kernel.spawn(
        client.invoke(None, ref, "work", (1,), True), process=client.process
    )
    kernel.run(until=kernel.now + 1.0)
    host = next(
        name for name in ("w1", "w2")
        if ref in app.components[name]._instances
    )
    app.kill_component(host)
    assert kernel.run_until_complete(task, timeout=300.0) == 2
    assert len(attempts) == 2


def test_completed_work_never_rerun_despite_eager_discard():
    """The regression scenario that motivated keeping dead queues in the
    default mode: with the completion log, eager discard is safe."""
    runs = []

    class Effect(Actor):
        async def apply(self, ctx, tag):
            runs.append(tag)
            return tag

    kernel, app = build(seed=75)
    app.register_actor(Effect)
    app.add_component("w1", ("Effect",))
    app.add_component("w2", ("Effect",))
    app.client()
    app.settle()
    ref = actor_proxy("Effect", "e")
    assert app.run_call(ref, "apply", "once") == "once"
    for victim in ("w1", "w2", "w1"):
        if app.components[victim].alive:
            app.kill_component(victim)
        kernel.run(until=kernel.now + 4.0)
        app.restart_component(victim)
        kernel.run(until=kernel.now + 4.0)
    assert runs == ["once"]


def test_exactly_once_increment_with_completion_log():
    kernel, app = build(seed=76)
    app.register_actor(Accumulator)
    Accumulator.store = app.register_external_service(
        KVStore(kernel, Latency.fixed(0.002))
    )
    app.add_component("w1", ("Accumulator",))
    app.add_component("w2", ("Accumulator",))
    client = app.client()
    app.settle()
    ref = actor_proxy("Accumulator", "acc")
    app.run_call(ref, "set_value", 0)
    task = kernel.spawn(
        client.invoke(None, ref, "incr", (), True), process=client.process
    )
    kernel.run(until=kernel.now + 0.2)
    host = next(
        (name for name in ("w1", "w2")
         if ref in app.components[name]._instances),
        None,
    )
    if host:
        app.kill_component(host)
    assert kernel.run_until_complete(task, timeout=300.0) == "OK"
    assert app.run_call(ref, "get") == 1


def test_message_overhead_of_completion_log():
    """The transaction writes one extra record per call -- the cost side
    of the trade (the benefit: eager queue cleanup)."""

    def count_messages(completion_log):
        kernel, app = make_app(seed=77, completion_log=completion_log)
        app.register_actor(Latch)
        app.add_component("w1", ("Latch",))
        app.client()
        app.settle()
        before = app.broker.produce_count
        for _ in range(10):
            app.run_call(actor_proxy("Latch", "x"), "get")
        return app.broker.produce_count - before

    assert count_messages(True) == count_messages(False) + 10
