"""Reentrancy: nested call stacks bypass the queue; tells do not."""

from repro.core import Actor, actor_proxy

from helpers import make_app, run


class A(Actor):
    """The paper's Section 2.2 example: A.main -> B.task -> A.callback."""

    log = []

    async def main(self, ctx, v):
        A.log.append(("main.start", v))
        result = await ctx.call(actor_proxy("B", "b"), "task", v)
        A.log.append(("main.end", result))
        return result

    async def callback(self, ctx, v):
        A.log.append(("callback", v))
        return v + 1


class B(Actor):
    async def task(self, ctx, v):
        return await ctx.call(actor_proxy("A", "a"), "callback", v)


def reentrancy_app(seed=0, **overrides):
    A.log = []
    kernel, app = make_app(seed, **overrides)
    app.register_actor(A)
    app.register_actor(B)
    app.add_component("w1", ("A",))
    app.add_component("w2", ("B",))
    app.client()
    app.settle()
    return kernel, app


def test_reentrant_call_does_not_deadlock():
    kernel, app = reentrancy_app(seed=1)
    assert app.run_call(actor_proxy("A", "a"), "main", 42, timeout=60.0) == 43
    assert A.log == [("main.start", 42), ("callback", 42), ("main.end", 43)]


def test_three_hop_cycle():
    """A -> B -> C -> A: call-chain reentrancy through two intermediaries
    (the pattern Orleans 2.x deadlocked on, Section 7)."""

    class P(Actor):
        async def start(self, ctx):
            return await ctx.call(actor_proxy("Q", "q"), "mid")

        async def finish(self, ctx):
            return "cycle-complete"

    class Q(Actor):
        async def mid(self, ctx):
            return await ctx.call(actor_proxy("R", "r"), "last")

    class R(Actor):
        async def last(self, ctx):
            return await ctx.call(actor_proxy("P", "p"), "finish")

    kernel, app = make_app(seed=2)
    for cls in (P, Q, R):
        app.register_actor(cls)
    app.add_component("w1", ("P", "R"))
    app.add_component("w2", ("Q",))
    app.client()
    app.settle()
    assert app.run_call(actor_proxy("P", "p"), "start", timeout=60.0) == "cycle-complete"


def test_self_call_reentrancy():
    class Recur(Actor):
        async def fact(self, ctx, n):
            if n <= 1:
                return 1
            return n * await ctx.call(ctx.self_ref, "fact", n - 1)

    kernel, app = make_app(seed=3)
    app.register_actor(Recur)
    app.add_component("w1", ("Recur",))
    app.client()
    app.settle()
    assert app.run_call(actor_proxy("Recur", "r"), "fact", 5, timeout=60.0) == 120


def test_unrelated_invocations_queue_in_order():
    arrivals = []

    class Seq(Actor):
        async def step(self, ctx, tag):
            arrivals.append(tag)
            await ctx.sleep(0.5)
            return tag

    kernel, app = make_app(seed=4)
    app.register_actor(Seq)
    app.add_component("w1", ("Seq",))
    app.client()
    app.settle()
    client = app.client()
    ref = actor_proxy("Seq", "s")
    tasks = [
        kernel.spawn(
            client.invoke(None, ref, "step", (i,), True), process=client.process
        )
        for i in range(4)
    ]
    kernel.run_until_complete(kernel.gather(tasks), timeout=60.0)
    assert arrivals == [0, 1, 2, 3]


def test_tell_to_self_queues_instead_of_reentering():
    """A tell is a fresh root invocation: it must wait for the current
    method to finish, not bypass the lock (Section 3.2's (tell) rule)."""
    order = []

    class Teller(Actor):
        async def outer(self, ctx):
            order.append("outer.start")
            await ctx.tell(ctx.self_ref, "inner")
            await ctx.sleep(1.0)
            order.append("outer.end")
            return "done"

        async def inner(self, ctx):
            order.append("inner")

    kernel, app = make_app(seed=5)
    app.register_actor(Teller)
    app.add_component("w1", ("Teller",))
    app.client()
    app.settle()
    app.run_call(actor_proxy("Teller", "t"), "outer", timeout=60.0)
    kernel.run(until=kernel.now + 2.0)
    assert order == ["outer.start", "outer.end", "inner"]


def test_two_actors_do_not_block_each_other():
    finish_times = {}

    class Par(Actor):
        async def work(self, ctx, tag):
            await ctx.sleep(1.0)
            finish_times[tag] = ctx.now
            return tag

    kernel, app = make_app(seed=6)
    app.register_actor(Par)
    app.add_component("w1", ("Par",))
    app.client()
    app.settle()
    client = app.client()
    tasks = [
        kernel.spawn(
            client.invoke(
                None, actor_proxy("Par", f"p{i}"), "work", (i,), True
            ),
            process=client.process,
        )
        for i in range(3)
    ]
    kernel.run_until_complete(kernel.gather(tasks), timeout=60.0)
    times = sorted(finish_times.values())
    # Distinct instances run concurrently: all finish within a small window,
    # far less than the 3 seconds serialized execution would take.
    assert times[-1] - times[0] < 0.5
