"""Journal file locking: one appender per partition journal, ever."""

from __future__ import annotations

import pytest

from repro.mq import FileJournalLog, JournalLockedError
from repro.mq.records import Record


def test_second_opener_is_rejected_with_fencing_error(tmp_path):
    path = str(tmp_path / "app.journal")
    first = FileJournalLog(path)
    first.append_many("t", [Record("p", 0, 0.0, "v")])
    with pytest.raises(JournalLockedError):
        FileJournalLog(path)
    # The first opener is unaffected by the rejected attempt.
    first.append_many("t", [Record("p", 1, 1.0, "w")])
    assert first.retained_records() == 2
    first.close()


def test_lock_releases_on_close_and_survives_rewrite(tmp_path):
    path = str(tmp_path / "app.journal")
    first = FileJournalLog(path, compact_min_records=0, compact_ratio=1.0)
    first.append_many("t", [Record("p", 0, 0.0, "v")])
    # rewrite() replaces the file and must re-take the lock on the new one.
    first.rewrite()
    with pytest.raises(JournalLockedError):
        FileJournalLog(path)
    first.close()
    # After a clean close the journal admits its next (single) opener.
    second = FileJournalLog(path)
    assert second.retained_records() == 1
    second.close()


def test_locks_are_per_path(tmp_path):
    a = FileJournalLog(str(tmp_path / "a.journal"))
    b = FileJournalLog(str(tmp_path / "b.journal"))
    a.append_many("t", [Record("p", 0, 0.0, "v")])
    b.append_many("t", [Record("p", 0, 0.0, "v")])
    a.close()
    b.close()
