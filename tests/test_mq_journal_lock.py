"""Journal file locking: one appender per partition journal, ever.

Read-only openers are the exception: they take a *shared* lock on the
journal data file (the appender's exclusive lock lives on the ``.lock``
sidecar), so any number of observers can replay and inspect a live journal
without hitting :class:`JournalLockedError` -- and without being able to
mutate or truncate anything.
"""

from __future__ import annotations

import os

import pytest

from repro.mq import FileJournalLog, JournalLockedError, JournalReadOnlyError
from repro.mq.records import Record


def test_second_opener_is_rejected_with_fencing_error(tmp_path):
    path = str(tmp_path / "app.journal")
    first = FileJournalLog(path)
    first.append_many("t", [Record("p", 0, 0.0, "v")])
    with pytest.raises(JournalLockedError):
        FileJournalLog(path)
    # The first opener is unaffected by the rejected attempt.
    first.append_many("t", [Record("p", 1, 1.0, "w")])
    assert first.retained_records() == 2
    first.close()


def test_lock_releases_on_close_and_survives_rewrite(tmp_path):
    path = str(tmp_path / "app.journal")
    first = FileJournalLog(path, compact_min_records=0, compact_ratio=1.0)
    first.append_many("t", [Record("p", 0, 0.0, "v")])
    # rewrite() replaces the file and must re-take the lock on the new one.
    first.rewrite()
    with pytest.raises(JournalLockedError):
        FileJournalLog(path)
    first.close()
    # After a clean close the journal admits its next (single) opener.
    second = FileJournalLog(path)
    assert second.retained_records() == 1
    second.close()


def test_locks_are_per_path(tmp_path):
    a = FileJournalLog(str(tmp_path / "a.journal"))
    b = FileJournalLog(str(tmp_path / "b.journal"))
    a.append_many("t", [Record("p", 0, 0.0, "v")])
    b.append_many("t", [Record("p", 0, 0.0, "v")])
    a.close()
    b.close()


def test_read_only_observer_coexists_with_live_appender(tmp_path):
    path = str(tmp_path / "app.journal")
    writer = FileJournalLog(path)
    writer.append_many("t", [Record("p", 0, 0.0, "v")])
    writer.flush()

    observer = FileJournalLog.open_read_only(path)
    assert observer.retained_records() == 1
    # A second observer shares the lock with the first.
    other = FileJournalLog(path, read_only=True)
    assert other.retained_records() == 1
    # The appender keeps appending while observers hold their snapshot.
    writer.append_many("t", [Record("p", 1, 1.0, "w")])
    writer.flush()
    assert observer.retained_records() == 1  # snapshot as of open
    # Reopening refreshes the observer's view.
    observer.close()
    refreshed = FileJournalLog.open_read_only(path)
    assert refreshed.retained_records() == 2
    refreshed.close()
    other.close()
    writer.close()


def test_read_only_observer_replays_meta_and_partitions(tmp_path):
    path = str(tmp_path / "app.journal")
    writer = FileJournalLog(path)
    writer.set_meta("lease:t:base", ["t", "base", "base#3", 3])
    writer.append_many("t", [Record("p", 0, 0.0, "v")])
    writer.flush()
    observer = FileJournalLog.open_read_only(path)
    assert observer.get_meta("lease:t:base") == ["t", "base", "base#3", 3]
    [(topic, partition, first, next_offset, records)] = list(
        observer.replay()
    )
    assert (topic, partition, first, next_offset) == ("t", "p", 0, 1)
    assert [record.value for record in records] == ["v"]
    observer.close()
    writer.close()


def test_read_only_observer_rejects_every_mutation(tmp_path):
    path = str(tmp_path / "app.journal")
    writer = FileJournalLog(path)
    writer.append_many("t", [Record("p", 0, 0.0, "v")])
    writer.close()
    observer = FileJournalLog.open_read_only(path)
    with pytest.raises(JournalReadOnlyError):
        observer.append_many("t", [Record("p", 1, 1.0, "w")])
    with pytest.raises(JournalReadOnlyError):
        observer.set_meta("key", "value")
    with pytest.raises(JournalReadOnlyError):
        observer.rewrite()
    observer.close()
    # Nothing leaked through: the next appender sees only the original.
    writer = FileJournalLog(path)
    assert writer.retained_records() == 1
    writer.close()


def test_read_only_observer_does_not_truncate_torn_tail(tmp_path):
    path = str(tmp_path / "app.journal")
    writer = FileJournalLog(path)
    writer.append_many("t", [Record("p", 0, 0.0, "v")])
    writer.close()
    with open(path, "ab") as handle:
        handle.write(b"\x99\x00\x00\x00partial")  # torn frame residue
    torn_size = os.path.getsize(path)

    observer = FileJournalLog.open_read_only(path)
    assert observer.retained_records() == 1  # stops at the tear
    assert os.path.getsize(path) == torn_size  # recovery is not its job
    observer.close()

    # The appender's next open performs the actual truncation recovery.
    writer = FileJournalLog(path)
    assert writer.retained_records() == 1
    assert os.path.getsize(path) < torn_size
    writer.close()


def test_read_only_open_of_missing_journal_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        FileJournalLog.open_read_only(str(tmp_path / "nope.journal"))
