"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Kernel, SimProcess, TaskKilled


def test_time_starts_at_zero():
    kernel = Kernel()
    assert kernel.now == 0.0


def test_schedule_runs_in_time_order():
    kernel = Kernel()
    seen = []
    kernel.schedule(2.0, seen.append, "b")
    kernel.schedule(1.0, seen.append, "a")
    kernel.schedule(3.0, seen.append, "c")
    kernel.run()
    assert seen == ["a", "b", "c"]
    assert kernel.now == 3.0


def test_same_time_events_run_in_schedule_order():
    kernel = Kernel()
    seen = []
    for label in ("first", "second", "third"):
        kernel.schedule(1.0, seen.append, label)
    kernel.run()
    assert seen == ["first", "second", "third"]


def test_run_until_stops_at_bound():
    kernel = Kernel()
    seen = []
    kernel.schedule(1.0, seen.append, "early")
    kernel.schedule(5.0, seen.append, "late")
    kernel.run(until=2.0)
    assert seen == ["early"]
    assert kernel.now == 2.0
    kernel.run()
    assert seen == ["early", "late"]


def test_timer_cancel():
    kernel = Kernel()
    seen = []
    timer = kernel.schedule(1.0, seen.append, "x")
    timer.cancel()
    kernel.run()
    assert seen == []


def test_negative_delay_rejected():
    kernel = Kernel()
    with pytest.raises(ValueError):
        kernel.schedule(-0.1, lambda: None)


def test_sleep_advances_time():
    kernel = Kernel()

    async def napper():
        await kernel.sleep(1.5)
        return kernel.now

    task = kernel.spawn(napper())
    assert kernel.run_until_complete(task) == 1.5


def test_task_return_value():
    kernel = Kernel()

    async def work():
        return 42

    assert kernel.run_until_complete(kernel.spawn(work())) == 42


def test_task_exception_propagates_to_awaiter():
    kernel = Kernel()

    async def boom():
        raise ValueError("broken")

    async def waiter():
        try:
            await kernel.spawn(boom())
        except ValueError as error:
            return str(error)
        return "no error"

    assert kernel.run_until_complete(kernel.spawn(waiter())) == "broken"


def test_unawaited_task_exception_recorded_as_crash():
    kernel = Kernel()

    async def boom():
        raise RuntimeError("lost")

    kernel.spawn(boom())
    kernel.run()
    assert len(kernel.crashes) == 1
    with pytest.raises(RuntimeError):
        kernel.check_no_crashes()


def test_future_resolution_wakes_task():
    kernel = Kernel()
    future = kernel.create_future()

    async def waiter():
        return await future

    task = kernel.spawn(waiter())
    kernel.schedule(3.0, future.set_result, "done")
    assert kernel.run_until_complete(task) == "done"
    assert kernel.now == 3.0


def test_future_double_resolution_rejected():
    kernel = Kernel()
    future = kernel.create_future()
    future.set_result(1)
    with pytest.raises(RuntimeError):
        future.set_result(2)


def test_future_exception_raises_in_awaiter():
    kernel = Kernel()
    future = kernel.create_future()

    async def waiter():
        with pytest.raises(KeyError):
            await future
        return "handled"

    task = kernel.spawn(waiter())
    kernel.call_soon(future.set_exception, KeyError("k"))
    assert kernel.run_until_complete(task) == "handled"


def test_gather_collects_in_order():
    kernel = Kernel()

    async def delayed(value, delay):
        await kernel.sleep(delay)
        return value

    tasks = [kernel.spawn(delayed(i, 3.0 - i)) for i in range(3)]
    result = kernel.run_until_complete(kernel.gather(tasks))
    assert result == [0, 1, 2]


def test_gather_empty():
    kernel = Kernel()
    assert kernel.run_until_complete(kernel.gather([])) == []


def test_process_kill_abandons_tasks():
    kernel = Kernel()
    process = SimProcess("victim")
    progress = []

    async def worker():
        progress.append("started")
        await kernel.sleep(10.0)
        progress.append("finished")

    kernel.spawn(worker(), process=process)
    kernel.run(until=1.0)
    assert progress == ["started"]
    process.kill()
    kernel.run()
    assert progress == ["started"]
    assert not process.alive


def test_killed_task_raises_in_awaiter():
    kernel = Kernel()
    process = SimProcess("victim")

    async def worker():
        await kernel.sleep(10.0)

    async def observer():
        task = kernel.spawn(worker(), process=process)
        kernel.schedule(1.0, process.kill)
        with pytest.raises(TaskKilled):
            await task
        return "observed"

    assert kernel.run_until_complete(kernel.spawn(observer())) == "observed"


def test_spawn_on_dead_process_is_killed_immediately():
    kernel = Kernel()
    process = SimProcess("gone")
    process.kill()

    async def worker():
        return 1

    task = kernel.spawn(worker(), process=process)
    kernel.run()
    assert task.done()
    assert isinstance(task.completion.exception(), TaskKilled)


def test_kill_hooks_run_once():
    kernel = Kernel()
    process = SimProcess("p")
    calls = []
    process.kill_hooks.append(lambda: calls.append("hook"))
    process.kill()
    process.kill()
    assert calls == ["hook"]


def test_determinism_same_seed_same_trace():
    def run(seed):
        kernel = Kernel(seed=seed)
        samples = []

        async def worker():
            for _ in range(5):
                delay = kernel.rng.uniform(0.1, 1.0)
                await kernel.sleep(delay)
                samples.append(round(kernel.now, 9))

        kernel.run_until_complete(kernel.spawn(worker()))
        return samples

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_run_until_complete_timeout():
    kernel = Kernel()
    future = kernel.create_future()
    kernel.schedule(100.0, future.set_result, None)
    with pytest.raises(TimeoutError):
        kernel.run_until_complete(future, timeout=1.0)


def test_event_loop_drained_error():
    kernel = Kernel()
    future = kernel.create_future()
    with pytest.raises(RuntimeError):
        kernel.run_until_complete(future)
