"""Placement: CAS coordination, caching, invalidation, re-placement."""

import pytest

from repro.core import PlacementService, actor_proxy
from repro.core.placement import placement_key
from repro.kvstore import KVStore
from repro.sim import Kernel, Latency

from helpers import Latch, make_app, two_component_app


def run(kernel, coro):
    return kernel.run_until_complete(kernel.spawn(coro), timeout=60.0)


def test_resolve_is_deterministic_and_sticky():
    kernel = Kernel(seed=1)
    store = KVStore(kernel, Latency.fixed(0.001))
    service = PlacementService(store.client("a"))
    ref = actor_proxy("T", "x")

    async def scenario():
        first = await service.resolve(ref, ["c1", "c2", "c3"])
        second = await service.resolve(ref, ["c1", "c2", "c3"])
        return first, second

    first, second = run(kernel, scenario())
    assert first == second


def test_concurrent_resolvers_agree():
    kernel = Kernel(seed=2)
    store = KVStore(kernel, Latency.fixed(0.001))
    ref = actor_proxy("T", "x")
    services = [PlacementService(store.client(f"c{i}")) for i in range(4)]

    async def resolver(service):
        return await service.resolve(ref, ["c1", "c2"])

    tasks = [kernel.spawn(resolver(s)) for s in services]
    results = kernel.run_until_complete(kernel.gather(tasks), timeout=60.0)
    assert len(set(results)) == 1


def test_cache_skips_store_reads():
    kernel = Kernel(seed=3)
    store = KVStore(kernel, Latency.fixed(0.001))
    service = PlacementService(store.client("a"), cache_enabled=True)
    ref = actor_proxy("T", "x")
    run(kernel, service.resolve(ref, ["c1"]))
    before = store.operation_count
    run(kernel, service.resolve(ref, ["c1"]))
    assert store.operation_count == before  # pure cache hit


def test_no_cache_reads_store_every_time():
    kernel = Kernel(seed=4)
    store = KVStore(kernel, Latency.fixed(0.001))
    service = PlacementService(store.client("a"), cache_enabled=False)
    ref = actor_proxy("T", "x")
    run(kernel, service.resolve(ref, ["c1"]))
    before = store.operation_count
    run(kernel, service.resolve(ref, ["c1"]))
    assert store.operation_count > before


def test_invalidation_forces_replacement():
    kernel = Kernel(seed=5)
    store = KVStore(kernel, Latency.fixed(0.001))
    service = PlacementService(store.client("a"))
    ref = actor_proxy("T", "x")
    placed = run(kernel, service.resolve(ref, ["dead", "alive"]))
    if placed == "alive":
        pytest.skip("hash landed on the survivor; nothing to invalidate")
    service.invalidate_components({placed})
    moved = run(kernel, service.resolve(ref, ["alive"]))
    assert moved == "alive"


def test_resolve_rejects_empty_candidates():
    kernel = Kernel(seed=6)
    store = KVStore(kernel, Latency.fixed(0.001))
    service = PlacementService(store.client("a"))

    from repro.core import NoPlacementError

    async def scenario():
        with pytest.raises(NoPlacementError):
            await service.resolve(actor_proxy("T", "x"), [])

    run(kernel, scenario())


def test_actor_lands_on_supporting_component_only():
    kernel, app = make_app(seed=7)
    app.register_actor(Latch)

    class Other(Latch):
        pass

    app.register_actor(Other, name="Other")
    app.add_component("latches", ("Latch",))
    app.add_component("others", ("Other",))
    app.client()
    app.settle()
    app.run_call(actor_proxy("Latch", "a"), "set", 1)
    app.run_call(actor_proxy("Other", "b"), "set", 2)
    assert actor_proxy("Latch", "a") in app.components["latches"]._instances
    assert actor_proxy("Other", "b") in app.components["others"]._instances


def test_placement_store_updated_after_failure():
    kernel, app = two_component_app(seed=8)
    ref = actor_proxy("Latch", "x")
    app.run_call(ref, "set", 3)
    host = next(
        name
        for name, comp in app.components.items()
        if comp.alive and ref in comp._instances
    )
    app.kill_component(host)
    kernel.run(until=kernel.now + 10.0)
    assert app.run_call(ref, "get", timeout=60.0) == 0  # rehomed, volatile
    placed = app.store._get(placement_key(ref))
    assert placed != host


def test_replicas_share_load():
    kernel, app = two_component_app(seed=9)
    for i in range(20):
        app.run_call(actor_proxy("Latch", f"i{i}"), "set", i)
    w1 = len(app.components["w1"]._instances)
    w2 = len(app.components["w2"]._instances)
    assert w1 + w2 == 20
    assert w1 > 0 and w2 > 0  # crc32 spreads across replicas


# ---------------------------------------------------------------------------
# single-flight resolution: concurrent resolves share one store lookup
# ---------------------------------------------------------------------------

def test_concurrent_resolves_single_flight():
    kernel = Kernel(seed=10)
    store = KVStore(kernel, Latency.fixed(0.001))
    service = PlacementService(store.client("a"))
    ref = actor_proxy("T", "x")

    tasks = [
        kernel.spawn(service.resolve(ref, ["c1", "c2", "c3"]))
        for _ in range(8)
    ]
    results = kernel.run_until_complete(kernel.gather(tasks), timeout=60.0)
    assert len(set(results)) == 1
    # One leader ran the GET+CAS; the other seven piggybacked.
    assert service.store_resolutions == 1
    assert service.shared_resolutions == 7
    # One GET plus one CAS, not eight of each.
    assert store.operation_count == 2
    # The flight is over: nothing left in the single-flight table.
    assert service._inflight == {}


def test_single_flight_distinct_refs_do_not_share():
    kernel = Kernel(seed=11)
    store = KVStore(kernel, Latency.fixed(0.001))
    service = PlacementService(store.client("a"))

    tasks = [
        kernel.spawn(service.resolve(actor_proxy("T", f"x{i}"), ["c1", "c2"]))
        for i in range(3)
    ]
    kernel.run_until_complete(kernel.gather(tasks), timeout=60.0)
    assert service.store_resolutions == 3
    assert service.shared_resolutions == 0


def test_single_flight_result_cached_for_followers():
    kernel = Kernel(seed=12)
    store = KVStore(kernel, Latency.fixed(0.001))
    service = PlacementService(store.client("a"))
    ref = actor_proxy("T", "y")

    async def scenario():
        first = kernel.spawn(service.resolve(ref, ["c1", "c2"]))
        second = kernel.spawn(service.resolve(ref, ["c1", "c2"]))
        results = [await first, await second]
        # A later resolve is a pure cache hit (no new store traffic).
        before = store.operation_count
        third = await service.resolve(ref, ["c1", "c2"])
        assert store.operation_count == before
        return results + [third]

    results = run(kernel, scenario())
    assert len(set(results)) == 1


def test_no_cache_disables_single_flight_sharing():
    """The Table 2 'no cache' ablation pays full store cost per resolve:
    concurrent resolutions must not piggyback on each other either."""
    kernel = Kernel(seed=13)
    store = KVStore(kernel, Latency.fixed(0.001))
    service = PlacementService(store.client("a"), cache_enabled=False)
    ref = actor_proxy("T", "z")

    tasks = [
        kernel.spawn(service.resolve(ref, ["c1", "c2"])) for _ in range(4)
    ]
    results = kernel.run_until_complete(kernel.gather(tasks), timeout=60.0)
    assert len(set(results)) == 1
    assert service.store_resolutions == 4
    assert service.shared_resolutions == 0
