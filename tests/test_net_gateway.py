"""The serving edge, end to end: real sockets against the simulated runtime.

Every test here talks to :class:`repro.net.KarGateway` over an actual TCP
connection -- hand-written HTTP/1.1 on the client side too, so the wire
format (status lines, headers, keep-alive, Retry-After) is asserted rather
than assumed. The suite covers the full sidecar surface (calls, tells,
state, reminders, system views), protocol-level rejections, the
exception-to-status mapping table, exactly-once settlement across a
mid-request worker kill on the sqlite backend, and the deprecation shims
left behind by the unified ``app.stats()`` redesign.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from helpers import Echo, Latch, PersistentLatch, make_app
from repro.core import (
    Actor,
    ActorMethodError,
    BreakerOpenError,
    InvocationCancelled,
    KarApplication,
    KarConfig,
    KarError,
    NoPlacementError,
    UnknownActorTypeError,
)
from repro.core.overload import BackoffPolicy
from repro.kvstore.errors import FencedClientError
from repro.mq.errors import StaleLeaseError, StaleRouteError
from repro.net import ERROR_STATUS, KarGateway, map_error
from repro.persist import PersistenceConfig
from repro.sim import Kernel
from repro.sim.kernel import TaskKilled


# ----------------------------------------------------------------------
# tiny raw HTTP client (the tests assert the wire format itself)
# ----------------------------------------------------------------------


async def send_raw(host: str, port: int, data: bytes):
    """One connection, one raw payload, read to EOF."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(data)
    await writer.drain()
    response = await reader.read()
    writer.close()
    return response


def parse_response(data: bytes):
    head, _, body = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    payload = json.loads(body) if body else None
    return status, payload, headers


async def request(host, port, method, path, payload=None, body=None):
    if body is None:
        body = b"" if payload is None else json.dumps(payload).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    )
    return parse_response(await send_raw(host, port, head.encode() + body))


class KeepAliveClient:
    """A persistent connection issuing sequential requests."""

    def __init__(self, host, port):
        self.host = host
        self.port = port
        self.reader = None
        self.writer = None

    async def __aenter__(self):
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def __aexit__(self, *exc):
        self.writer.close()

    async def request(self, method, path, payload=None):
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        )
        self.writer.write(head.encode() + body)
        await self.writer.drain()
        raw_head = await self.reader.readuntil(b"\r\n\r\n")
        status, _, headers = parse_response(raw_head + b"")
        length = int(headers.get("content-length", "0"))
        body = await self.reader.readexactly(length)
        return status, json.loads(body) if body else None, headers


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------


class SlowCounter(Actor):
    """Exactly-once increments with a long execution window.

    ``incr`` marks itself started, sleeps (simulated) long enough for a
    test to kill its hosting component mid-execution, then commits via the
    read-then-tail-write discipline -- so no matter how many times retry
    orchestration re-runs the method, the increment lands exactly once.
    """

    async def incr(self, ctx, amount):
        await ctx.state.set("started", True)
        # Long in *simulated* seconds so the polling test reliably catches
        # the method mid-execution; the pump burns through it in well under
        # a wall-clock second.
        await ctx.sleep(300.0)
        total = await ctx.state.get("total", 0)
        return ctx.tail_call(None, "commit", total + amount)

    async def commit(self, ctx, new_total):
        await ctx.state.set("total", new_total)
        return new_total

    async def total(self, ctx):
        return await ctx.state.get("total", 0)


def build_app(actor_classes=(Latch, PersistentLatch, Echo), config=None, **overrides):
    kernel, app = make_app(seed=7, config=config, **overrides)
    names = tuple(app.register_actor(cls) for cls in actor_classes)
    app.add_component("w1", names)
    app.add_component("w2", names)
    app.settle()
    return kernel, app


async def serve(app):
    gateway = KarGateway(app, port=0)
    host, port = await gateway.start()
    return gateway, host, port


# ----------------------------------------------------------------------
# the sidecar surface over a real socket
# ----------------------------------------------------------------------


def test_call_state_reminder_roundtrip_over_socket():
    kernel, app = build_app()

    async def scenario():
        gateway, host, port = await serve(app)
        try:
            status, health, _ = await request(host, port, "GET", "/system/health")
            assert status == 200 and health["status"] == "ok" and health["ready"]

            status, body, _ = await request(
                host, port, "POST", "/actor/Latch/l1/call/set", {"args": [41]}
            )
            assert status == 200
            status, body, _ = await request(
                host, port, "POST", "/actor/Latch/l1/call/get"
            )
            assert (status, body) == (200, {"value": 41})

            # Tells are accepted before execution.
            status, body, _ = await request(
                host, port, "POST", "/actor/Latch/l1/tell/set", {"args": [5]}
            )
            assert (status, body) == (202, {"status": "accepted"})

            # State CRUD reads what the actor persisted.
            status, _, _ = await request(
                host, port, "POST", "/actor/PersistentLatch/p/call/set", {"args": [7]}
            )
            assert status == 200
            status, body, _ = await request(
                host, port, "GET", "/actor/PersistentLatch/p/state/v"
            )
            assert (status, body) == (200, {"value": 7})
            status, body, _ = await request(
                host, port, "GET", "/actor/PersistentLatch/p/state"
            )
            assert body == {"state": {"v": 7}}
            status, _, _ = await request(
                host, port, "PUT", "/actor/PersistentLatch/p/state/note",
                {"value": {"x": 1}},
            )
            assert status == 200
            status, body, _ = await request(
                host, port, "GET", "/actor/PersistentLatch/p/state/note"
            )
            assert body == {"value": {"x": 1}}
            status, _, _ = await request(
                host, port, "DELETE", "/actor/PersistentLatch/p/state/note"
            )
            assert status == 200
            status, body, _ = await request(
                host, port, "DELETE", "/actor/PersistentLatch/p/state/note"
            )
            assert (status, body["error"]["code"]) == (404, "no_such_key")

            # A reminder scheduled over HTTP fires inside the simulation.
            status, _, _ = await request(
                host, port, "PUT", "/actor/Latch/l1/reminders/r1",
                {"method": "set", "delay": 0.3, "args": [99]},
            )
            assert status == 201
            status, body, _ = await request(
                host, port, "GET", "/actor/Latch/l1/reminders"
            )
            assert status == 200 and [r["id"] for r in body["reminders"]] == ["r1"]
            deadline = asyncio.get_running_loop().time() + 10.0
            value = None
            while asyncio.get_running_loop().time() < deadline:
                await asyncio.sleep(0.02)  # idle pump advances simulated time
                _, body, _ = await request(
                    host, port, "POST", "/actor/Latch/l1/call/get"
                )
                value = body["value"]
                if value == 99:
                    break
            assert value == 99
            status, body, _ = await request(
                host, port, "DELETE", "/actor/Latch/l1/reminders/r1"
            )
            assert (status, body["error"]["code"]) == (404, "no_such_reminder")

            # The observability plane saw all of it, on both surfaces.
            status, body, _ = await request(
                host, port, "GET", "/system/stats/gateway"
            )
            assert status == 200
            snapshot = body["stats"]
            assert snapshot["requests_total"] > 10
            calls_route = snapshot["routes"]["POST /actor/{type}/{id}/call/{method}"]
            assert calls_route["requests"] >= 4
            assert calls_route["latency"]["count"] >= 4
            assert app.stats("gateway")["attached"]
            # The stats request records itself after snapshotting, so the
            # live tree is at least as far along as the HTTP snapshot.
            assert app.stats("gateway")["requests_total"] >= snapshot["requests_total"]

            status, body, _ = await request(host, port, "GET", "/system/actors")
            assert sorted(body["actor_types"]) == ["Echo", "Latch", "PersistentLatch"]
        finally:
            await gateway.stop()

    asyncio.run(scenario())
    kernel.check_no_crashes()


def test_concurrent_requests_interleave_across_connections():
    kernel, app = build_app()

    async def worker(host, port, lane):
        async with KeepAliveClient(host, port) as client:
            results = []
            for n in range(5):
                status, _, _ = await client.request(
                    "POST", f"/actor/Latch/lane{lane}/call/set", {"args": [lane * 100 + n]}
                )
                assert status == 200
                status, body, _ = await client.request(
                    "POST", f"/actor/Latch/lane{lane}/call/get"
                )
                assert status == 200
                results.append(body["value"])
            return results

    async def scenario():
        gateway, host, port = await serve(app)
        try:
            lanes = await asyncio.gather(
                *(worker(host, port, lane) for lane in range(8))
            )
        finally:
            await gateway.stop()
        # Each keep-alive connection saw its own writes in order, even
        # while seven other connections interleaved on the same runtime.
        for lane, results in enumerate(lanes):
            assert results == [lane * 100 + n for n in range(5)]

    asyncio.run(scenario())
    kernel.check_no_crashes()
    assert app.stats("calls")["unsettled"] == []


# ----------------------------------------------------------------------
# exactly-once across a mid-request worker kill (sqlite backend)
# ----------------------------------------------------------------------


def test_exactly_once_settlement_across_mid_request_kill_sqlite(tmp_path):
    config = KarConfig.fast_test().with_overrides(
        persistence=PersistenceConfig(mode="sqlite", root=str(tmp_path / "durable"))
    )
    kernel = Kernel(seed=13)
    app = KarApplication.fresh(kernel, config, name="edge")
    app.register_actor(SlowCounter)
    app.add_component("host", ("SlowCounter",))
    app.settle()

    async def scenario():
        gateway, host, port = await serve(app)
        try:
            call = asyncio.get_running_loop().create_task(
                request(
                    host, port, "POST", "/actor/SlowCounter/c/call/incr",
                    {"args": [5]},
                )
            )
            # Wait until the method is provably mid-execution (it has
            # persisted the "started" flag but not yet committed).
            while True:
                _, body, _ = await request(
                    host, port, "GET", "/actor/SlowCounter/c/state"
                )
                if body["state"].get("started"):
                    break
                await asyncio.sleep(0.01)
            assert "total" not in body["state"]

            # Fail-stop the hosting component under the in-flight request,
            # then bring a replacement up; retry orchestration must re-run
            # the method and settle the original HTTP call exactly once.
            app.kill_component("host")
            app.restart_component("host")

            status, body, _ = await call
            assert (status, body) == (200, {"value": 5})

            status, body, _ = await request(
                host, port, "POST", "/actor/SlowCounter/c/call/total"
            )
            assert (status, body) == (200, {"value": 5})  # once, not twice
        finally:
            await gateway.stop()

    asyncio.run(scenario())
    kernel.check_no_crashes()
    assert app.stats("calls")["unsettled"] == []


# ----------------------------------------------------------------------
# protocol-level rejections
# ----------------------------------------------------------------------


def test_malformed_requests_are_rejected():
    kernel, app = build_app()

    async def scenario():
        gateway, host, port = await serve(app)
        try:
            status, body, _ = await request(
                host, port, "POST", "/actor/Latch/l/call/set", body=b"{nope"
            )
            assert (status, body["error"]["code"]) == (400, "bad_json")

            status, body, _ = await request(
                host, port, "POST", "/actor/Latch/l/call/set", {"args": "not-a-list"}
            )
            assert (status, body["error"]["code"]) == (400, "bad_request")

            status, body, _ = await request(host, port, "GET", "/no/such/route")
            assert (status, body["error"]["code"]) == (404, "unknown_route")

            status, body, _ = await request(
                host, port, "GET", "/system/stats/bogus"
            )
            assert (status, body["error"]["code"]) == (404, "unknown_family")

            status, body, _ = await request(
                host, port, "POST", "/actor/Latch/l/call/set",
                body=b"x" * (gateway.max_body + 1),
            )
            assert (status, body["error"]["code"]) == (413, "body_too_large")

            raw = await send_raw(host, port, b"GARBAGE\r\n\r\n")
            status, body, headers = parse_response(raw)
            assert (status, body["error"]["code"]) == (400, "bad_request")
            assert headers["connection"] == "close"
        finally:
            await gateway.stop()

    asyncio.run(scenario())
    kernel.check_no_crashes()


# ----------------------------------------------------------------------
# error mapping
# ----------------------------------------------------------------------


def test_error_mapping_table():
    kernel, app = make_app()
    policy = BackoffPolicy(
        app.config.retry_backoff_base, app.config.retry_backoff_cap
    )
    transient = policy.bound(1)
    cases = [
        (UnknownActorTypeError("Nope"), 404, "unknown_actor_type", None),
        (BreakerOpenError("T", "m", 2.5), 503, "breaker_open", 2.5),
        (NoPlacementError("nowhere"), 503, "no_placement", transient),
        (StaleRouteError("moved"), 503, "stale_route", transient),
        (FencedClientError("fenced"), 409, "fenced", None),
        (StaleLeaseError("stale"), 409, "fenced", None),
        (ActorMethodError("boom"), 500, "actor_error", None),
        (InvocationCancelled("gone"), 500, "invocation_cancelled", None),
        (TaskKilled("host"), 503, "component_lost", None),
        (KarError("generic"), 500, "kar_error", None),
        (ValueError("unmapped"), 500, "internal", None),
    ]
    for error, expected_status, expected_code, expected_retry in cases:
        status, code, message, retry_after = map_error(error, app)
        assert (status, code) == (expected_status, expected_code), error
        assert retry_after == expected_retry, error
        assert message  # the envelope always explains itself

    # Subclasses must precede their bases in the table, or the wrong row
    # would shadow them.
    for index, (exc_type, _, _) in enumerate(ERROR_STATUS):
        for later_type, _, _ in ERROR_STATUS[index + 1 :]:
            assert not issubclass(later_type, exc_type) or later_type is exc_type


def test_breaker_open_maps_to_503_with_retry_after_header():
    kernel, app = build_app(breaker_threshold=3, breaker_cooldown=300.0)

    async def scenario():
        gateway, host, port = await serve(app)
        try:
            # Three propagated application failures trip the breaker.
            for n in range(3):
                status, body, _ = await request(
                    host, port, "POST", "/actor/Echo/e/call/fail_with",
                    {"args": [f"boom{n}"]},
                )
                assert (status, body["error"]["code"]) == (500, "actor_error")

            status, body, headers = await request(
                host, port, "POST", "/actor/Echo/e/call/fail_with", {"args": ["x"]}
            )
            assert (status, body["error"]["code"]) == (503, "breaker_open")
            assert int(headers["retry-after"]) >= 1

            # Admission is per (actor type, method): other methods still run.
            status, body, _ = await request(
                host, port, "POST", "/actor/Echo/e/call/echo", {"args": ["ok"]}
            )
            assert (status, body) == (200, {"value": "ok"})

            # Nothing parked: the open breaker rejected at the edge instead
            # of diverting an unsettleable call to the dead-letter lot.
            assert app.stats("overload")["dead_letter_depth"] == 0
        finally:
            await gateway.stop()

    asyncio.run(scenario())
    kernel.check_no_crashes()


def test_unknown_actor_type_is_rejected_at_admission():
    kernel, app = build_app()

    async def scenario():
        gateway, host, port = await serve(app)
        try:
            status, body, _ = await request(
                host, port, "POST", "/actor/Ghost/g/call/get"
            )
            assert (status, body["error"]["code"]) == (404, "unknown_actor_type")
        finally:
            await gateway.stop()

    asyncio.run(scenario())
    # The typo never reached the runtime: no placement entry was minted.
    assert app.store.backend.get("placement:Ghost:g") is None


# ----------------------------------------------------------------------
# the unified stats() redesign
# ----------------------------------------------------------------------


def test_deprecated_stats_shims_warn_and_agree():
    kernel, app = build_app()
    shims = [
        ("transport_stats", "transport"),
        ("store_stats", "store"),
        ("overload_stats", "overload"),
        ("persistence_stats", "persistence"),
        ("placement_stats", "placement"),
    ]
    for old_name, family in shims:
        with pytest.warns(DeprecationWarning, match=old_name):
            legacy = getattr(app, old_name)()
        assert legacy == app.stats(family)
    with pytest.warns(DeprecationWarning, match="unsettled_call_ids"):
        legacy = app.unsettled_call_ids()
    assert legacy == app.stats("calls")["unsettled"]


def test_stats_tree_rejects_unknown_family():
    kernel, app = build_app()
    with pytest.raises(KeyError):
        app.stats("nope")
