"""Rebalance edge cases for the scale-out handoff protocol.

Three corners the multi-worker refactor must not bend:

- a partition handed off *while a retry sits parked* (happen-before parking
  or backoff re-queue) still settles every call exactly once;
- a generation bump racing a batched produce rejects the stale-epoch batch
  whole -- no partial batch from a superseded incarnation ever lands;
- a worker leaving gracefully and a worker crashing produce identical
  settled sets (the only difference is who pays: drain vs. reconciliation).
"""

from __future__ import annotations

import pytest

from repro.core import Actor, KarCluster, KarConfig, actor_proxy
from repro.mq import (
    Broker,
    BrokerConfig,
    FencedMemberError,
    StaleLeaseError,
)
from repro.sim import Kernel


class Counter(Actor):
    """Read-then-tail-write commit discipline (exactly-once evidence)."""

    async def bump(self, ctx, amount):
        total = await ctx.state.get("total", 0)
        return ctx.tail_call(None, "commit", total + amount)

    async def commit(self, ctx, total):
        await ctx.state.set("total", total)
        return total

    async def get(self, ctx):
        return await ctx.state.get("total", 0)


class Relay(Actor):
    """Nested caller: recovery copies of its retries park on the callee."""

    async def forward(self, ctx, cid, amount):
        return await ctx.call(actor_proxy("Counter", cid), "bump", amount)


class SlowCallee(Actor):
    """Long-running callee: keeps the happen-before window open so a
    caller retry reliably parks while this executes."""

    runs = 0

    async def task(self, ctx, v):
        SlowCallee.runs += 1
        await ctx.sleep(6.0)
        return v + 1


class ParkCaller(Actor):
    async def main(self, ctx, v):
        return await ctx.call(actor_proxy("SlowCallee", "c"), "task", v)


def make_cluster(seed=0, workers=2, components=4, **overrides):
    kernel = Kernel(seed=seed)
    config = KarConfig.fast_test().with_overrides(
        worker_loop_cost=0.002, **overrides
    )
    app = KarCluster(kernel, config, "edges", workers=workers)
    app.register_actor(Counter, "Counter")
    app.register_actor(Relay, "Relay")
    for index in range(components):
        app.add_component(f"comp{index}", ("Counter", "Relay"))
    app.client()
    app.settle()
    return kernel, app


# ----------------------------------------------------------------------
# handoff while retries are parked
# ----------------------------------------------------------------------
def test_handoff_while_retry_parked_settles_exactly_once():
    SlowCallee.runs = 0
    kernel = Kernel(seed=5)
    config = KarConfig.fast_test().with_overrides(
        worker_loop_cost=0.002, cancellation=False
    )
    app = KarCluster(kernel, config, "edges", workers=3)
    app.register_actor(SlowCallee, "SlowCallee")
    app.register_actor(ParkCaller, "ParkCaller")
    app.add_component("callers", ("ParkCaller",))
    app.add_component("callees", ("SlowCallee",))
    client = app.client()
    app.settle()

    ref = actor_proxy("ParkCaller", "a")
    task = kernel.spawn(
        client.invoke(None, ref, "main", (1,), True), process=client.process
    )
    kernel.run(until=kernel.now + 2.0)  # the callee is mid-sleep
    assert SlowCallee.runs == 1
    # Crash the caller's worker: reconciliation copies the stranded "main"
    # retry annotated after_callee -- it parks on the re-hosted partition
    # waiting for the slow callee's response.
    app.kill_worker(app.worker_of("callers"))
    kernel.run(until=kernel.now + 2.2)  # recovery done; retry parked
    assert app.trace.count("request.parked") >= 1
    assert app.trace.count("request.unparked") == 0
    # Hand the partition off AGAIN while the retry sits parked: the parked
    # copy dies with this incarnation and reconciliation re-copies it.
    app.kill_worker(app.worker_of("callers"))
    assert kernel.run_until_complete(task, timeout=300.0) == 2
    kernel.run(until=kernel.now + 5.0)
    assert app.trace.count("request.parked") >= 2
    assert app.trace.count("request.unparked") >= 1
    assert app.unsettled_call_ids() == []


# ----------------------------------------------------------------------
# generation bump racing a batched produce
# ----------------------------------------------------------------------
def test_stale_epoch_batch_is_rejected_whole():
    kernel = Kernel(seed=1)
    broker = Broker(kernel, BrokerConfig())
    broker.acquire_partition_lease("t", "comp", "comp#1", 1)
    outcome: dict = {}

    async def produce_stale():
        try:
            outcome["result"] = await broker.produce_batch(
                "t",
                [("comp", "a"), ("other", "b"), ("comp", "c")],
                "comp#1",
            )
        except FencedMemberError as error:
            outcome["error"] = error

    kernel.spawn(produce_stale())
    # The handoff wins the race while the batch's produce round trip is in
    # flight: the successor acquires the lease at epoch 2.
    broker.acquire_partition_lease("t", "comp", "comp#2", 2)
    kernel.run(until=1.0)
    # Whole-batch rejection: the stale producer got a fencing error (the
    # lease acquisition fences the superseded member, and a stale-epoch
    # identity that escaped the fence set trips StaleLeaseError) and
    # nothing -- not even the entry for an unrelated partition -- landed.
    assert isinstance(outcome.get("error"), FencedMemberError)
    assert "result" not in outcome
    assert len(broker.topic("t").partition("comp")) == 0
    assert len(broker.topic("t").partition("other")) == 0


def test_stale_lease_blocks_fetch_and_single_produce():
    kernel = Kernel(seed=2)
    broker = Broker(kernel, BrokerConfig())
    broker.acquire_partition_lease("t", "comp", "comp#2", 2)

    async def attempt():
        with pytest.raises(StaleLeaseError):
            await broker.produce("t", "x", "v", "comp#1")
        with pytest.raises(StaleLeaseError):
            await broker.fetch("t", "comp#1", 0, "comp#1")
        # The lease holder itself passes.
        await broker.produce("t", "x", "v", "comp#2")

    task = kernel.spawn(attempt())
    kernel.run_until_complete(task, timeout=10.0)


def test_lease_acquisition_is_monotonic_and_fences_predecessor():
    kernel = Kernel(seed=3)
    broker = Broker(kernel, BrokerConfig())
    broker.acquire_partition_lease("t", "comp", "comp#1", 1)
    broker.acquire_partition_lease("t", "comp", "comp#2", 2)
    assert broker.is_fenced("comp#1")
    with pytest.raises(StaleLeaseError):
        broker.acquire_partition_lease("t", "comp", "comp#2b", 2)
    with pytest.raises(StaleLeaseError):
        broker.acquire_partition_lease("t", "comp", "comp#1", 1)
    assert broker.partition_lease("t", "comp") == ("comp#2", 2)


def test_leases_survive_cold_restart():
    kernel = Kernel(seed=4)
    broker = Broker(kernel, BrokerConfig())
    broker.acquire_partition_lease("t", "comp", "comp#3", 3)
    # A brand-new broker over the same log restores the lease, so a stale
    # incarnation cannot sneak back in across a process death.
    reborn = Broker(kernel, BrokerConfig(), log=broker.log)
    reborn.restore_from_log()
    assert reborn.partition_lease("t", "comp") == ("comp#3", 3)
    with pytest.raises(StaleLeaseError):
        reborn.acquire_partition_lease("t", "comp", "comp#2", 2)


# ----------------------------------------------------------------------
# graceful leave vs. crash: identical settled sets
# ----------------------------------------------------------------------
def run_leave_scenario(graceful: bool):
    kernel, app = make_cluster(seed=9, components=4)
    client = app.client()
    counters = 6
    bumps = 4

    async def workflow(cid):
        ref = actor_proxy("Counter", f"c{cid}")
        for _ in range(bumps):
            await client.invoke(None, ref, "bump", (1,), True)

    tasks = [
        kernel.spawn(workflow(cid), process=client.process)
        for cid in range(counters)
    ]
    kernel.run(until=kernel.now + 0.05)
    if graceful:
        app.remove_worker("w0")
    else:
        app.kill_worker("w0")
    kernel.run_until_complete(kernel.gather(tasks), timeout=600)
    kernel.run(until=kernel.now + 5.0)
    totals = tuple(
        app.run_call(actor_proxy("Counter", f"c{cid}"), "get")
        for cid in range(counters)
    )
    unsettled = tuple(app.unsettled_call_ids())
    expected = (bumps,) * counters
    return totals, unsettled, expected


def test_graceful_and_crash_leave_settle_identically():
    graceful_totals, graceful_unsettled, expected = run_leave_scenario(True)
    crash_totals, crash_unsettled, _ = run_leave_scenario(False)
    assert graceful_unsettled == crash_unsettled == ()
    assert graceful_totals == crash_totals == expected
