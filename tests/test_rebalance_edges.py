"""Rebalance edge cases for the scale-out handoff protocol.

The corners the multi-worker refactor must not bend:

- a partition handed off *while a retry sits parked* (happen-before parking
  or backoff re-queue) still settles every call exactly once;
- a generation bump racing a batched produce rejects the stale-epoch batch
  whole -- no partial batch from a superseded incarnation ever lands;
- a worker leaving gracefully and a worker crashing produce identical
  settled sets (the only difference is who pays: drain vs. reconciliation);
- adaptive placement actions (split, migrate) fired *mid-burst* under
  zipfian skew preserve exactly-once on both store backends;
- a migration whose chosen target dies during the drain lands the
  component on a live worker instead of restarting it on a corpse.
"""

from __future__ import annotations

import pytest

from repro.core import Actor, KarCluster, KarConfig, actor_proxy
from repro.mq import (
    Broker,
    BrokerConfig,
    FencedMemberError,
    StaleLeaseError,
)
from repro.persist import PersistenceConfig
from repro.sim import Kernel


class Counter(Actor):
    """Read-then-tail-write commit discipline (exactly-once evidence)."""

    async def bump(self, ctx, amount):
        total = await ctx.state.get("total", 0)
        return ctx.tail_call(None, "commit", total + amount)

    async def commit(self, ctx, total):
        await ctx.state.set("total", total)
        return total

    async def get(self, ctx):
        return await ctx.state.get("total", 0)


class Relay(Actor):
    """Nested caller: recovery copies of its retries park on the callee."""

    async def forward(self, ctx, cid, amount):
        return await ctx.call(actor_proxy("Counter", cid), "bump", amount)


class SlowCallee(Actor):
    """Long-running callee: keeps the happen-before window open so a
    caller retry reliably parks while this executes."""

    runs = 0

    async def task(self, ctx, v):
        SlowCallee.runs += 1
        await ctx.sleep(6.0)
        return v + 1


class ParkCaller(Actor):
    async def main(self, ctx, v):
        return await ctx.call(actor_proxy("SlowCallee", "c"), "task", v)


def make_cluster(seed=0, workers=2, components=4, **overrides):
    kernel = Kernel(seed=seed)
    config = KarConfig.fast_test().with_overrides(
        worker_loop_cost=0.002, **overrides
    )
    app = KarCluster(kernel, config, "edges", workers=workers)
    app.register_actor(Counter, "Counter")
    app.register_actor(Relay, "Relay")
    for index in range(components):
        app.add_component(f"comp{index}", ("Counter", "Relay"))
    app.client()
    app.settle()
    return kernel, app


# ----------------------------------------------------------------------
# handoff while retries are parked
# ----------------------------------------------------------------------
def test_handoff_while_retry_parked_settles_exactly_once():
    SlowCallee.runs = 0
    kernel = Kernel(seed=5)
    config = KarConfig.fast_test().with_overrides(
        worker_loop_cost=0.002, cancellation=False
    )
    app = KarCluster(kernel, config, "edges", workers=3)
    app.register_actor(SlowCallee, "SlowCallee")
    app.register_actor(ParkCaller, "ParkCaller")
    app.add_component("callers", ("ParkCaller",))
    app.add_component("callees", ("SlowCallee",))
    client = app.client()
    app.settle()

    ref = actor_proxy("ParkCaller", "a")
    task = kernel.spawn(
        client.invoke(None, ref, "main", (1,), True), process=client.process
    )
    kernel.run(until=kernel.now + 2.0)  # the callee is mid-sleep
    assert SlowCallee.runs == 1
    # Crash the caller's worker: reconciliation copies the stranded "main"
    # retry annotated after_callee -- it parks on the re-hosted partition
    # waiting for the slow callee's response.
    app.kill_worker(app.worker_of("callers"))
    kernel.run(until=kernel.now + 2.2)  # recovery done; retry parked
    assert app.trace.count("request.parked") >= 1
    assert app.trace.count("request.unparked") == 0
    # Hand the partition off AGAIN while the retry sits parked: the parked
    # copy dies with this incarnation and reconciliation re-copies it.
    app.kill_worker(app.worker_of("callers"))
    assert kernel.run_until_complete(task, timeout=300.0) == 2
    kernel.run(until=kernel.now + 5.0)
    assert app.trace.count("request.parked") >= 2
    assert app.trace.count("request.unparked") >= 1
    assert app.stats("calls")["unsettled"] == []


# ----------------------------------------------------------------------
# generation bump racing a batched produce
# ----------------------------------------------------------------------
def test_stale_epoch_batch_is_rejected_whole():
    kernel = Kernel(seed=1)
    broker = Broker(kernel, BrokerConfig())
    broker.acquire_partition_lease("t", "comp", "comp#1", 1)
    outcome: dict = {}

    async def produce_stale():
        try:
            outcome["result"] = await broker.produce_batch(
                "t",
                [("comp", "a"), ("other", "b"), ("comp", "c")],
                "comp#1",
            )
        except FencedMemberError as error:
            outcome["error"] = error

    kernel.spawn(produce_stale())
    # The handoff wins the race while the batch's produce round trip is in
    # flight: the successor acquires the lease at epoch 2.
    broker.acquire_partition_lease("t", "comp", "comp#2", 2)
    kernel.run(until=1.0)
    # Whole-batch rejection: the stale producer got a fencing error (the
    # lease acquisition fences the superseded member, and a stale-epoch
    # identity that escaped the fence set trips StaleLeaseError) and
    # nothing -- not even the entry for an unrelated partition -- landed.
    assert isinstance(outcome.get("error"), FencedMemberError)
    assert "result" not in outcome
    assert len(broker.topic("t").partition("comp")) == 0
    assert len(broker.topic("t").partition("other")) == 0


def test_stale_lease_blocks_fetch_and_single_produce():
    kernel = Kernel(seed=2)
    broker = Broker(kernel, BrokerConfig())
    broker.acquire_partition_lease("t", "comp", "comp#2", 2)

    async def attempt():
        with pytest.raises(StaleLeaseError):
            await broker.produce("t", "x", "v", "comp#1")
        with pytest.raises(StaleLeaseError):
            await broker.fetch("t", "comp#1", 0, "comp#1")
        # The lease holder itself passes.
        await broker.produce("t", "x", "v", "comp#2")

    task = kernel.spawn(attempt())
    kernel.run_until_complete(task, timeout=10.0)


def test_lease_acquisition_is_monotonic_and_fences_predecessor():
    kernel = Kernel(seed=3)
    broker = Broker(kernel, BrokerConfig())
    broker.acquire_partition_lease("t", "comp", "comp#1", 1)
    broker.acquire_partition_lease("t", "comp", "comp#2", 2)
    assert broker.is_fenced("comp#1")
    with pytest.raises(StaleLeaseError):
        broker.acquire_partition_lease("t", "comp", "comp#2b", 2)
    with pytest.raises(StaleLeaseError):
        broker.acquire_partition_lease("t", "comp", "comp#1", 1)
    assert broker.partition_lease("t", "comp") == ("comp#2", 2)


def test_leases_survive_cold_restart():
    kernel = Kernel(seed=4)
    broker = Broker(kernel, BrokerConfig())
    broker.acquire_partition_lease("t", "comp", "comp#3", 3)
    # A brand-new broker over the same log restores the lease, so a stale
    # incarnation cannot sneak back in across a process death.
    reborn = Broker(kernel, BrokerConfig(), log=broker.log)
    reborn.restore_from_log()
    assert reborn.partition_lease("t", "comp") == ("comp#3", 3)
    with pytest.raises(StaleLeaseError):
        reborn.acquire_partition_lease("t", "comp", "comp#2", 2)


# ----------------------------------------------------------------------
# graceful leave vs. crash: identical settled sets
# ----------------------------------------------------------------------
def run_leave_scenario(graceful: bool):
    kernel, app = make_cluster(seed=9, components=4)
    client = app.client()
    counters = 6
    bumps = 4

    async def workflow(cid):
        ref = actor_proxy("Counter", f"c{cid}")
        for _ in range(bumps):
            await client.invoke(None, ref, "bump", (1,), True)

    tasks = [
        kernel.spawn(workflow(cid), process=client.process)
        for cid in range(counters)
    ]
    kernel.run(until=kernel.now + 0.05)
    if graceful:
        app.remove_worker("w0")
    else:
        app.kill_worker("w0")
    kernel.run_until_complete(kernel.gather(tasks), timeout=600)
    kernel.run(until=kernel.now + 5.0)
    totals = tuple(
        app.run_call(actor_proxy("Counter", f"c{cid}"), "get")
        for cid in range(counters)
    )
    unsettled = tuple(app.stats("calls")["unsettled"])
    expected = (bumps,) * counters
    return totals, unsettled, expected


def test_graceful_and_crash_leave_settle_identically():
    graceful_totals, graceful_unsettled, expected = run_leave_scenario(True)
    crash_totals, crash_unsettled, _ = run_leave_scenario(False)
    assert graceful_unsettled == crash_unsettled == ()
    assert graceful_totals == crash_totals == expected


# ----------------------------------------------------------------------
# adaptive placement under skew, mid-burst, both store backends
# ----------------------------------------------------------------------
def skewed_ids(app, component_name, count):
    """Actor ids whose placement hash keys them to ``component_name``."""
    candidates = sorted(
        name for name, types in app.component_types.items() if types
    )
    ids, index = [], 0
    while len(ids) < count:
        actor_id = f"z{index}"
        ref = actor_proxy("Counter", actor_id)
        if candidates[ref.stable_hash() % len(candidates)] == component_name:
            ids.append(actor_id)
        index += 1
    return ids


@pytest.mark.parametrize("mode", ["memory", "sqlite"])
def test_skewed_burst_splits_midflight_and_settles_exactly_once(
    mode, tmp_path
):
    overrides = dict(
        split_threshold=0.35,
        split_factor=4,
        rebalance_cooldown=0.3,
        drain_timeout=0.4,
    )
    if mode == "sqlite":
        overrides["persistence"] = PersistenceConfig(
            mode="sqlite", root=str(tmp_path / "durable")
        )
    kernel, app = make_cluster(seed=21, workers=4, components=4, **overrides)
    client = app.client()
    hot = "comp1"
    ids = skewed_ids(app, hot, 12)
    bumps = 20

    async def workflow(actor_id):
        ref = actor_proxy("Counter", actor_id)
        for _ in range(bumps):
            await client.invoke(None, ref, "bump", (1,), True)

    tasks = [
        kernel.spawn(workflow(actor_id), process=client.process)
        for actor_id in ids
    ]
    kernel.run_until_complete(kernel.gather(tasks), timeout=600)
    # The controller acted while the burst was still in flight...
    assert app.splits >= 1
    assert app.trace.of_kind("component.split")[0]["component"] == hot
    kernel.run(until=kernel.now + 3.0)
    # ...and every bump still landed exactly once, on either backend.
    totals = {
        actor_id: app.run_call(actor_proxy("Counter", actor_id), "get")
        for actor_id in ids
    }
    assert totals == {actor_id: bumps for actor_id in ids}
    assert app.stats("calls")["unsettled"] == []
    kernel.check_no_crashes()
    app.shutdown()


# ----------------------------------------------------------------------
# target worker dies while the migration is draining
# ----------------------------------------------------------------------
def test_migration_target_killed_mid_drain_lands_on_live_worker():
    SlowCallee.runs = 0
    kernel = Kernel(seed=22)
    config = KarConfig.fast_test().with_overrides(
        worker_loop_cost=0.002, cancellation=False
    )
    app = KarCluster(kernel, config, "edges", workers=3)
    app.register_actor(SlowCallee, "SlowCallee")
    app.add_component("callees", ("SlowCallee",))
    client = app.client()
    app.settle()

    ref = actor_proxy("SlowCallee", "c")
    task = kernel.spawn(
        client.invoke(None, ref, "task", (1,), True), process=client.process
    )
    kernel.run(until=kernel.now + 0.5)  # the callee is mid-sleep
    assert SlowCallee.runs == 1

    # Start a migration toward a specific target, then kill that target
    # while the 6s-long callee holds the drain open (drain_timeout is 5s).
    source = app.worker_of("callees")
    target = next(
        wid
        for wid in sorted(app.workers)
        if wid != source and app.workers[wid].alive
    )
    move = kernel.spawn(app._migrate_component("callees", target))
    kernel.run(until=kernel.now + 1.0)  # migration is draining
    app.kill_worker(target)
    kernel.run_until_complete(move, timeout=60.0)

    landed = app.worker_of("callees")
    assert landed is not None
    assert landed != target
    assert app.workers[landed].alive and not app.workers[landed].retired
    # The in-flight call settles exactly once on the re-hosted component.
    assert kernel.run_until_complete(task, timeout=300.0) == 2
    kernel.run(until=kernel.now + 5.0)
    assert app.stats("calls")["unsettled"] == []
