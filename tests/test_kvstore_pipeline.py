"""Pipelined store I/O contract: coalescing, ordering, fencing, latency.

The pipelined client must be observationally identical to the unpipelined
one -- per-operation results, CAS atomicity, landing-time fencing -- while
collapsing every operation issued in one event-loop turn into a single
latency-paying round trip on the client's (serial) connection.
"""

from __future__ import annotations

import pytest

from repro.kvstore import (
    KVStore,
    MemoryStoreBackend,
    PipelinedStoreClient,
    SqliteStoreBackend,
)
from repro.kvstore.errors import FencedClientError
from repro.sim import Kernel, Latency

from helpers import run

BACKENDS = ["memory", "sqlite"]


def make_backend(flavor: str, tmp_path):
    if flavor == "memory":
        return MemoryStoreBackend()
    return SqliteStoreBackend(str(tmp_path / "pipeline.store.sqlite3"))


@pytest.fixture(params=BACKENDS)
def store_setup(request, tmp_path):
    backend = make_backend(request.param, tmp_path)
    kernel = Kernel(seed=3)
    store = KVStore(kernel, Latency.fixed(0.0005), backend=backend)
    yield kernel, store
    backend.close()


def test_same_turn_ops_share_one_round_trip(store_setup):
    kernel, store = store_setup
    client = PipelinedStoreClient(store, "c1")

    async def burst():
        # Concurrent tasks all issue within the same event-loop turn.
        writes = [
            kernel.spawn(client.set(f"k{i}", {"payload": i}), name=f"w{i}")
            for i in range(8)
        ]
        reads = [
            kernel.spawn(client.get(f"k{i}"), name=f"r{i}") for i in range(8)
        ]
        await kernel.gather(writes)
        return [await read for read in reads]

    start = kernel.now
    values = run(kernel, burst())
    assert values == [{"payload": i} for i in range(8)]
    assert store.round_trips == 1
    assert store.operation_count == 16
    assert client.largest_batch == 16
    # One batch, one latency sample.
    assert kernel.now - start == pytest.approx(0.0005)


def test_dependent_ops_take_separate_round_trips(store_setup):
    kernel, store = store_setup
    client = PipelinedStoreClient(store, "c1")

    async def cas_loop():
        # Read-modify-write: each await lands before the next op issues,
        # so dependent operations can never share (or reorder within) a
        # round trip.
        assert await client.cas("p", None, "w1") is True
        current = await client.get("p")
        assert await client.cas("p", current, "w2") is True
        return await client.get("p")

    assert run(kernel, cas_loop()) == "w2"
    assert store.round_trips == 4


def test_fence_lands_per_operation(store_setup):
    kernel, store = store_setup
    client = PipelinedStoreClient(store, "c1")

    async def fenced_batch():
        first = kernel.spawn(client.set("a", 1), name="first")
        kernel.spawn(client.set("b", 2), name="second")
        # The fence arrives while the batch is in flight: every operation
        # in it lands after the fence and must be rejected.
        store.fence("c1")
        await first

    with pytest.raises(FencedClientError):
        run(kernel, fenced_batch())
    assert store.backend.get("a") is None
    assert store.backend.get("b") is None


def test_pipeline_matches_unpipelined_results(store_setup):
    kernel, store = store_setup
    plain = store.client("plain")
    piped = PipelinedStoreClient(store, "piped")

    async def scenario(client):
        await client.hset_many("h", {"x": 1, "y": (2, 3)})
        await client.hset("h", "z", None)
        assert await client.hget("h", "x") == 1
        assert await client.hget_many("h", ("x", "y", "missing")) == {
            "x": 1,
            "y": (2, 3),
            "missing": None,
        }
        assert await client.hdel("h", "x") is True
        snapshot = await client.hgetall("h")
        await client.delete_hash("h")
        return snapshot

    assert run(kernel, scenario(plain)) == run(kernel, scenario(piped))


def test_serial_connection_queues_unpipelined_ops(store_setup):
    """Concurrent operations on ONE client queue behind each other (a
    serial connection); the pipelined client amortizes that queueing."""
    kernel, store = store_setup
    plain = store.client("plain")
    piped = PipelinedStoreClient(store, "piped")

    async def fan(client, keys):
        start = kernel.now
        tasks = [
            kernel.spawn(client.set(key, "v"), name=f"op:{key}")
            for key in keys
        ]
        await kernel.gather(tasks)
        return kernel.now - start

    plain_elapsed = run(kernel, fan(plain, [f"p{i}" for i in range(8)]))
    piped_elapsed = run(kernel, fan(piped, [f"q{i}" for i in range(8)]))
    # 8 serial trips vs one shared trip.
    assert plain_elapsed == pytest.approx(8 * 0.0005)
    assert piped_elapsed == pytest.approx(0.0005)


def test_sqlite_batch_joins_bracketing_transaction(tmp_path):
    """hset_many inside a pipelined batch joins the batch transaction
    instead of nesting BEGINs, and everything lands durably."""
    backend = make_backend("sqlite", tmp_path)
    kernel = Kernel(seed=4)
    store = KVStore(kernel, Latency.fixed(0.0005), backend=backend)
    client = PipelinedStoreClient(store, "c1")

    async def burst():
        tasks = [
            kernel.spawn(client.hset_many("h", {"x": 1, "y": 2}), name="a"),
            kernel.spawn(client.set("flat", "v"), name="b"),
            kernel.spawn(client.hset_many("h", {"z": 3}), name="c"),
        ]
        await kernel.gather(tasks)

    run(kernel, burst())
    assert store.round_trips == 1
    backend.close()

    reopened = SqliteStoreBackend(str(tmp_path / "pipeline.store.sqlite3"))
    assert reopened.hgetall("h") == {"x": 1, "y": 2, "z": 3}
    assert reopened.get("flat") == "v"
    reopened.close()
