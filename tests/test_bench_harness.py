"""Smoke tests for the benchmark harnesses (small scales)."""

from repro.bench import (
    CLUSTER_DEV,
    CLUSTER_PROD,
    FailureCampaign,
    LatencyHarness,
    MANAGED,
    campaign_kar_config,
)
from repro.bench.failure_harness import run_total_failure_iterations
from repro.reefer import ReeferConfig


def test_campaign_records_phases():
    campaign = FailureCampaign(seed=3, failures=2)
    result = campaign.run()
    assert len(result.records) == 2
    assert not result.invariant_violations
    for record in result.records:
        assert record.detection > 0
        assert record.consensus > 0
        assert record.reconciliation >= 0
        assert record.total >= record.detection
    stats = result.phase_stats()
    assert stats["Total Outage"]["count"] == 2


def test_campaign_latency_spike_measured():
    campaign = FailureCampaign(seed=4, failures=1)
    result = campaign.run()
    record = result.records[0]
    assert record.max_order_latency is None or record.max_order_latency > 0


def test_paired_campaign_recovers():
    campaign = FailureCampaign(
        seed=5, failures=1, paired=True, recovery_timeout=300.0
    )
    result = campaign.run()
    assert len(result.records) == 1
    assert not result.invariant_violations


def test_total_failure_helper():
    outcome = run_total_failure_iterations(seed=6, iterations=1)
    assert outcome["recovered"] == 1
    assert not outcome["violations"]


def test_latency_harness_orderings():
    harness = LatencyHarness(CLUSTER_DEV, iterations=40, seed=1)
    name, http, kafka, kar, nocache = harness.row()
    assert name == "ClusterDev"
    assert http < kafka < kar < nocache


def test_profiles_are_distinct():
    devices = [CLUSTER_DEV, CLUSTER_PROD, MANAGED]
    produces = [profile.produce.base for profile in devices]
    assert produces == sorted(produces)
    config = CLUSTER_PROD.kar_config(placement_cache=False)
    assert config.placement_cache is False


def test_campaign_config_matches_paper_detector():
    config = campaign_kar_config()
    assert config.broker.heartbeat_interval == 3.0
    assert config.broker.session_timeout == 10.0
    assert config.broker.retention_seconds == 600.0


def test_campaign_custom_workload():
    campaign = FailureCampaign(
        seed=7,
        failures=1,
        reefer_config=ReeferConfig(
            order_rate=0.2, anomaly_rate=0.0, containers_per_depot=50
        ),
    )
    result = campaign.run()
    assert not result.invariant_violations
