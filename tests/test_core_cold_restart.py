"""Cold-restart recovery: shutdown + reopen over durable backends.

These tests kill *every* process of an application (components, client,
their in-memory dedup evidence, placement caches, pending futures -- all of
it) and rebuild the application from the persistence layer alone. The
memory flavor models the infrastructure services surviving an app-wide
crash; the sqlite flavor reconstructs from files, as a brand-new OS process
would.
"""

from __future__ import annotations

import pytest

from repro.core import Actor, KarApplication, KarConfig, actor_proxy
from repro.persist import PersistenceConfig
from repro.persist.framing import MAGIC as FRAME_MAGIC
from repro.sim import Kernel

MODES = ["memory", "sqlite"]


class Flow(Actor):
    """A root workflow that fans a tail-call chain across Tally actors."""

    async def start(self, ctx, wid, hops):
        target = actor_proxy("Tally", f"t{wid % 3}")
        return ctx.tail_call(target, "add", wid, hops)


class Tally(Actor):
    """Exactly-once counting via the read-then-tail-write discipline."""

    async def add(self, ctx, wid, hops):
        total = await ctx.state.get("total", 0)
        return ctx.tail_call(None, "commit", wid, hops, total + 1)

    async def commit(self, ctx, wid, hops, new_total):
        await ctx.state.set_multiple({"total": new_total, f"done:{wid}": True})
        if hops > 1:
            flow = actor_proxy("Flow", f"f{wid}")
            return ctx.tail_call(flow, "start", wid, hops - 1)
        return "done"

    async def report(self, ctx):
        return await ctx.state.get("total", 0)


class RunCounter(Actor):
    """Deliberately non-idempotent: every execution bumps the counter."""

    async def bump(self, ctx):
        runs = await ctx.state.get("runs", 0)
        await ctx.state.set("runs", runs + 1)
        return runs + 1

    async def runs(self, ctx):
        return await ctx.state.get("runs", 0)


def make_config(mode: str, tmp_path) -> KarConfig:
    persistence = (
        PersistenceConfig(mode="sqlite", root=str(tmp_path / "durable"))
        if mode == "sqlite"
        else PersistenceConfig()
    )
    return KarConfig.fast_test().with_overrides(persistence=persistence)


def boot_app(kernel, config, name="app"):
    app = KarApplication.fresh(kernel, config, name=name)
    populate(app)
    return app


def populate(app):
    app.register_actor(Flow)
    app.register_actor(Tally)
    app.register_actor(RunCounter)
    app.add_component("w1", ("Flow", "Tally", "RunCounter"))
    app.add_component("w2", ("Flow", "Tally", "RunCounter"))
    app.client()
    app.settle()
    return app


def readd_components(app):
    """What a restarted deployment does: same names, same types."""
    app.add_component("w1", ("Flow", "Tally", "RunCounter"))
    app.add_component("w2", ("Flow", "Tally", "RunCounter"))
    app.client()
    app.settle()
    return app


def drain(app, max_wait=180.0):
    deadline = app.kernel.now + max_wait
    while app.stats("calls")["unsettled"] and app.kernel.now < deadline:
        app.kernel.run(until=app.kernel.now + 1.0)
    return app.stats("calls")["unsettled"]


def total_commits(app):
    return sum(
        app.run_call(actor_proxy("Tally", f"t{i}"), "report") for i in range(3)
    )


@pytest.mark.parametrize("mode", MODES)
def test_reopen_settles_all_in_flight_calls_exactly_once(mode, tmp_path):
    kernel = Kernel(seed=21)
    app = boot_app(kernel, make_config(mode, tmp_path))
    client = app.client()

    workflows, hops = 12, 3

    async def drive(wid):
        ref = actor_proxy("Flow", f"f{wid}")
        await client.invoke(None, ref, "start", (wid, hops), True)

    for wid in range(workflows):
        kernel.spawn(drive(wid), client.process, name=f"wf{wid}")
    # Crash mid-workflow: some chains have landed, none have finished.
    kernel.run(until=kernel.now + 0.05)
    in_flight = app.stats("calls")["unsettled"]
    assert in_flight  # the crash interrupted real work

    app2 = app.reopen()
    assert app2.restored_records > 0
    readd_components(app2)

    assert drain(app2) == []
    assert total_commits(app2) == workflows * hops
    # Every commit marker landed exactly once per workflow.
    kernel.check_no_crashes()
    app2.shutdown()


@pytest.mark.parametrize("mode", MODES)
def test_completed_work_is_never_rerun_after_restart(mode, tmp_path):
    kernel = Kernel(seed=22)
    app = boot_app(kernel, make_config(mode, tmp_path))
    ref = actor_proxy("RunCounter", "only")

    assert app.run_call(ref, "bump") == 1
    task = kernel.spawn(
        app.client().invoke(None, ref, "bump", (), False),
        app.client().process,
        name="tell",
    )
    kernel.run_until_complete(task)
    kernel.run(until=kernel.now + 2.0)  # let the tell finish executing

    app2 = app.reopen()
    readd_components(app2)
    assert drain(app2) == []
    # The journals still retain the completed call and tell; their response
    # evidence (including the tell self-ack) keeps reconciliation from
    # re-running them, even though all in-memory dedup evidence died.
    assert app2.run_call(ref, "runs") == 2
    kernel.check_no_crashes()
    app2.shutdown()


@pytest.mark.parametrize("mode", MODES)
def test_boot_epochs_and_generation_are_monotonic(mode, tmp_path):
    kernel = Kernel(seed=23)
    app = boot_app(kernel, make_config(mode, tmp_path))
    assert app.boot == 1
    generation_before = app.coordinator.generation
    members_before = set(app.coordinator.members)

    app2 = app.reopen()
    readd_components(app2)
    assert app2.boot == 2
    # New incarnations never collide with journal partitions of the dead
    # boot: every epoch advanced past the persisted watermark.
    assert not (set(app2.coordinator.members) & members_before)
    assert app2.coordinator.generation > generation_before

    app3 = app2.reopen()
    readd_components(app3)
    assert app3.boot == 3
    assert drain(app3) == []
    kernel.check_no_crashes()
    app3.shutdown()


def test_sqlite_reopen_restores_state_and_placement(tmp_path):
    kernel = Kernel(seed=24)
    app = boot_app(kernel, make_config("sqlite", tmp_path))
    ref = actor_proxy("Tally", "t0")
    app.run_call(ref, "commit", 99, 1, 5)

    placement_before = app.store.backend.get("placement:Tally:t0")
    assert placement_before in ("w1", "w2")

    app2 = app.reopen()
    readd_components(app2)
    # Placement names survive verbatim (component names are stable), and
    # actor state comes back from the database file.
    assert app2.store.backend.get("placement:Tally:t0") == placement_before
    assert app2.run_call(ref, "report") == 5
    kernel.check_no_crashes()
    app2.shutdown()


def test_fresh_wipes_previous_durable_files(tmp_path):
    kernel = Kernel(seed=25)
    config = make_config("sqlite", tmp_path)
    app = boot_app(kernel, config)
    app.run_call(actor_proxy("Tally", "t0"), "commit", 1, 1, 7)
    app.shutdown()

    app2 = KarApplication.fresh(kernel, config)
    populate(app2)
    assert app2.boot == 1  # not a reopen: history was wiped
    assert app2.restored_records == 0
    assert app2.run_call(actor_proxy("Tally", "t0"), "report") == 0
    kernel.check_no_crashes()
    app2.shutdown()


def test_shutdown_is_idempotent_and_blocks_joins(tmp_path):
    kernel = Kernel(seed=26)
    app = boot_app(kernel, make_config("memory", tmp_path))
    app.shutdown()
    app.shutdown()
    assert all(not component.alive for component in app.components.values())
    with pytest.raises(Exception):
        app.add_component("w3")


def test_legacy_json_journal_replays_under_binary_codec(tmp_path):
    """A pre-binary deployment's tagged-JSON journal must replay to the
    identical restored state when the next boot runs the binary codec --
    including in-flight calls interrupted by the crash -- and the journal
    migrates to the configured format on open."""
    kernel = Kernel(seed=27)
    root = str(tmp_path / "durable")
    legacy = KarConfig.fast_test().with_overrides(
        persistence=PersistenceConfig.sqlite(root, codec="json")
    )
    app = boot_app(kernel, legacy)
    client = app.client()

    workflows, hops = 12, 3

    async def drive(wid):
        ref = actor_proxy("Flow", f"f{wid}")
        await client.invoke(None, ref, "start", (wid, hops), True)

    for wid in range(workflows):
        kernel.spawn(drive(wid), client.process, name=f"wf{wid}")
    kernel.run(until=kernel.now + 0.02)
    assert app.stats("calls")["unsettled"]  # crashed mid-workflow
    app.shutdown()

    journal = tmp_path / "durable" / "app.journal"
    assert journal.read_bytes()[:1] == b"{"  # legacy tagged-JSON text

    upgraded = KarConfig.fast_test().with_overrides(
        persistence=PersistenceConfig.sqlite(root)  # codec defaults to binary
    )
    app2 = KarApplication(kernel, upgraded, name="app")
    assert app2.restored_records > 0
    assert app2.broker.log.migrations == 1
    assert journal.read_bytes()[:3] == FRAME_MAGIC
    populate(app2)

    assert drain(app2) == []
    assert total_commits(app2) == workflows * hops
    kernel.check_no_crashes()
    app2.shutdown()
