"""Unit tests for consumer groups: detection, consensus, fencing, pausing."""

import pytest

from repro.mq import Broker, BrokerConfig, FencedMemberError, GroupCoordinator
from repro.sim import Kernel, Latency, SimProcess


def make_group(seed=5, **overrides):
    kernel = Kernel(seed=seed)
    defaults = dict(
        produce_latency=Latency.fixed(0.001),
        consume_latency=Latency.fixed(0.0005),
        heartbeat_interval=3.0,
        session_timeout=10.0,
        watchdog_interval=0.5,
        rebalance_join_window=2.2,
        rebalance_sync_latency=Latency.around(0.2, 0.15),
    )
    defaults.update(overrides)
    broker = Broker(kernel, BrokerConfig(**defaults))
    coordinator = GroupCoordinator(broker, "app", "app-topic")
    return kernel, broker, coordinator


def auto_resume(coordinator):
    """Stand-in for the KAR leader: resume immediately on each generation."""
    coordinator.on_generation(lambda info: coordinator.resume(info.generation))


def test_join_creates_generation():
    kernel, _broker, group = make_group()
    auto_resume(group)
    process = SimProcess("m1")
    group.join("m1", process)
    kernel.run(until=5.0)
    assert group.generation == 1
    assert group.live_members == ("m1",)
    assert group.leader == "m1"
    assert not group.paused


def test_simultaneous_joins_coalesce():
    kernel, _broker, group = make_group()
    auto_resume(group)
    for name in ("m1", "m2", "m3"):
        group.join(name, SimProcess(name))
    kernel.run(until=5.0)
    assert group.generation == 1
    assert group.live_members == ("m1", "m2", "m3")


def test_duplicate_member_rejected():
    _kernel, _broker, group = make_group()
    group.join("m1", SimProcess("m1"))
    with pytest.raises(ValueError):
        group.join("m1", SimProcess("m1-again"))


def test_failure_detected_within_session_timeout():
    kernel, broker, group = make_group()
    auto_resume(group)
    victim = SimProcess("victim")
    survivor = SimProcess("survivor")
    group.join("victim", victim)
    group.join("survivor", survivor)
    kernel.run(until=20.0)
    assert group.generation == 1

    kill_time = kernel.now
    victim.kill()
    kernel.run(until=kill_time + 40.0)

    assert group.live_members == ("survivor",)
    assert broker.is_fenced("victim")
    record = group.history[-1]
    assert record.failed == ("victim",)
    detection = record.triggered_at - kill_time
    # Heartbeat every 3 s, session timeout 10 s, watchdog every 0.5 s:
    # detection must land in [7.0, 10.5 + eps].
    assert 6.9 <= detection <= 11.1
    consensus = record.completed_at - record.triggered_at
    assert 2.2 <= consensus <= 3.3


def test_evicted_member_cannot_send():
    kernel, _broker, group = make_group()
    auto_resume(group)
    victim = SimProcess("victim")
    group.join("victim", victim)
    group.join("other", SimProcess("other"))
    kernel.run(until=20.0)
    member = group.members["victim"].member

    # Simulate a zombie: stop heartbeats without killing the send path.
    group.members["victim"].last_heartbeat = -1000.0
    kernel.run(until=40.0)
    assert "victim" not in group.members

    async def zombie_send():
        with pytest.raises(FencedMemberError):
            await member.send("other", "stale")

    kernel.run_until_complete(kernel.spawn(zombie_send()))


def test_group_stays_paused_until_resume():
    kernel, _broker, group = make_group()
    resumes = []
    group.on_generation(lambda info: resumes.append(info))
    group.join("m1", SimProcess("m1"))
    kernel.run(until=30.0)
    assert group.generation == 1
    assert group.paused  # nobody called resume
    group.resume(1)
    assert not group.paused


def test_stale_resume_ignored():
    kernel, _broker, group = make_group()
    generations = []
    group.on_generation(lambda info: generations.append(info.generation))
    m1 = SimProcess("m1")
    m2 = SimProcess("m2")
    group.join("m1", m1)
    kernel.run(until=10.0)
    assert group.generation == 1
    group.join("m2", m2)
    kernel.run(until=20.0)
    assert group.generation == 2
    group.resume(1)  # stale: must not unpause generation 2
    assert group.paused
    group.resume(2)
    assert not group.paused


def test_send_and_poll_roundtrip():
    kernel, _broker, group = make_group()
    auto_resume(group)
    p1, p2 = SimProcess("m1"), SimProcess("m2")
    alice = group.join("m1", p1)
    bob = group.join("m2", p2)
    kernel.run(until=5.0)

    async def sender():
        await alice.send("m2", {"msg": "hi"})

    async def receiver():
        records = await bob.poll()
        return records[0].value

    receiver_task = kernel.spawn(receiver(), process=p2)
    kernel.spawn(sender(), process=p1)
    assert kernel.run_until_complete(receiver_task) == {"msg": "hi"}


def test_send_blocks_while_paused():
    kernel, _broker, group = make_group()
    p1 = SimProcess("m1")
    alice = group.join("m1", p1)
    sent_at = []

    async def sender():
        await alice.send("m1", "x")
        sent_at.append(kernel.now)

    kernel.spawn(sender(), process=p1)
    kernel.run(until=30.0)
    assert sent_at == []  # group still paused: nothing sent
    group.resume(group.generation)
    kernel.run(until=31.0)
    assert len(sent_at) == 1


def test_failure_during_rebalance_restarts_it():
    kernel, _broker, group = make_group()
    auto_resume(group)
    a, b, c = SimProcess("a"), SimProcess("b"), SimProcess("c")
    group.join("a", a)
    group.join("b", b)
    group.join("c", c)
    kernel.run(until=10.0)
    assert group.generation == 1

    a.kill()
    kernel.run(until=22.0)  # watchdog evicts "a", rebalance starts
    b.kill()  # second failure while first recovery is in flight
    kernel.run(until=60.0)
    assert group.live_members == ("c",)
    assert not group.paused
    # Both failures eventually reflected in history.
    failed = {name for record in group.history for name in record.failed}
    assert failed == {"a", "b"}


def test_leader_is_lowest_member_id():
    kernel, _broker, group = make_group()
    auto_resume(group)
    for name in ("mz", "ma", "mk"):
        group.join(name, SimProcess(name))
    kernel.run(until=5.0)
    assert group.leader == "ma"


def test_empty_group_resumes_itself():
    kernel, _broker, group = make_group()
    solo = SimProcess("solo")
    group.join("solo", solo)
    kernel.run(until=5.0)
    solo.kill()
    kernel.run(until=60.0)
    assert group.live_members == ()
    assert not group.paused
