"""Actor lifecycle & memory management: idle passivation, bounded dedup
bookkeeping, batched state I/O, and the response-path regression fixes."""

import pytest

from repro.core import Actor, Response, actor_proxy
from repro.core.retention import RetentionSet
from repro.mq import BrokerConfig, StaleRouteError
from repro.sim import Latency

from helpers import make_app


class Counting(Actor):
    """Persists ``v``; counts lifecycle transitions on the class."""

    activations = 0
    deactivations = 0

    async def activate(self, ctx):
        Counting.activations += 1
        self.loaded = await ctx.state.get_all()
        self.v = self.loaded.get("v", 0)

    async def deactivate(self, ctx):
        Counting.deactivations += 1
        await ctx.state.set_multiple({"v": self.v, "flushed": True})

    async def set(self, ctx, v):
        self.v = v

    async def get(self, ctx):
        return self.v

    async def snapshot(self, ctx):
        return dict(self.loaded)


class SlowDeactivate(Counting):
    """Deactivate takes simulated time; flags while it is in progress."""

    in_deactivate = False
    current = None

    async def deactivate(self, ctx):
        SlowDeactivate.in_deactivate = True
        SlowDeactivate.current = ctx.self_ref.id
        await ctx.sleep(0.5)
        await ctx.state.set_multiple({"v": self.v, "flushed": True})
        SlowDeactivate.in_deactivate = False


class Chainer(Actor):
    """A slow tail-call chain to self: holds the actor lock throughout."""

    activations = 0

    async def activate(self, ctx):
        Chainer.activations += 1

    async def chain(self, ctx, n):
        await ctx.sleep(0.3)
        if n == 0:
            return "done"
        return ctx.tail_call(None, "chain", n - 1)


def reset_counters():
    Counting.activations = 0
    Counting.deactivations = 0
    SlowDeactivate.in_deactivate = False
    Chainer.activations = 0


def lifecycle_app(seed=200, actor_class=Counting, **overrides):
    reset_counters()
    overrides.setdefault("idle_passivation_timeout", 1.0)
    overrides.setdefault("maintenance_interval", 0.2)
    kernel, app = make_app(seed, **overrides)
    name = app.register_actor(actor_class)
    app.add_component("w1", (name,))
    app.client()
    app.settle()
    return kernel, app


# ---------------------------------------------------------------------------
# idle passivation
# ---------------------------------------------------------------------------

def test_idle_actor_is_passivated_and_reactivated_transparently():
    kernel, app = lifecycle_app()
    worker = app.components["w1"]
    ref = actor_proxy("Counting", "c")
    app.run_call(ref, "set", 41)
    assert len(worker._instances) == 1 and len(worker._mailboxes) == 1
    kernel.run(until=kernel.now + 5.0)
    # Idle past the timeout: instance, mailbox, cache, and stamp evicted.
    assert worker._instances == {}
    assert worker._mailboxes == {}
    assert worker._state_caches == {}
    assert worker._last_active == {}
    assert Counting.deactivations == 1
    assert worker.passivations == 1
    assert app.trace.count("actor.passivate", actor=str(ref)) == 1
    # The next request transparently re-activates from persisted state.
    assert app.run_call(ref, "get") == 41
    assert Counting.activations == 2


def test_reactivation_reads_back_exactly_the_flushed_state():
    kernel, app = lifecycle_app(seed=201)
    ref = actor_proxy("Counting", "c")
    app.run_call(ref, "set", 7)  # volatile only; deactivate must flush it
    kernel.run(until=kernel.now + 5.0)
    assert Counting.deactivations == 1
    assert app.run_call(ref, "snapshot") == {"v": 7, "flushed": True}
    assert app.run_call(ref, "get") == 7


def test_request_arriving_mid_deactivate_waits_then_reactivates():
    kernel, app = lifecycle_app(seed=202, actor_class=SlowDeactivate)
    ref = actor_proxy("SlowDeactivate", "s")
    app.run_call(ref, "set", 9)
    # Drive until the deactivate hook is underway.
    deadline = kernel.now + 10.0
    while not SlowDeactivate.in_deactivate:
        assert kernel.now < deadline, "passivation never started"
        kernel.run(until=kernel.now + 0.05)
    # A request lands mid-deactivate: it must queue behind the teardown,
    # then re-activate and observe the flushed state.
    assert app.run_call(ref, "get") == 9
    assert not SlowDeactivate.in_deactivate
    assert Counting.activations == 2
    worker = app.components["w1"]
    assert len(worker._instances) == 1  # resident again after re-activation


def test_tail_call_chain_pins_actor_against_eviction():
    kernel, app = lifecycle_app(
        seed=203, actor_class=Chainer, idle_passivation_timeout=0.4
    )
    ref = actor_proxy("Chainer", "c")
    # 8 links x 0.3s of work each: far longer than the idle timeout, but
    # the tail lock keeps the mailbox busy, so the chain is never evicted.
    assert app.run_call(ref, "chain", 7) == "done"
    assert Chainer.activations == 1
    assert app.trace.count("actor.passivate", actor=str(ref)) == 0
    # Once the chain completes and the actor goes idle, eviction resumes.
    kernel.run(until=kernel.now + 3.0)
    assert app.trace.count("actor.passivate", actor=str(ref)) == 1


def test_activity_during_sweep_defers_later_passivations():
    # Two idle actors are listed in one sweep; the first has a slow
    # deactivate hook, and the second serves a request meanwhile -- its
    # idle clock must be re-checked at its turn, not the sweep snapshot.
    kernel, app = lifecycle_app(seed=205, actor_class=SlowDeactivate)
    a, b = actor_proxy("SlowDeactivate", "a"), actor_proxy("SlowDeactivate", "b")
    app.run_call(a, "set", 1)
    app.run_call(b, "set", 2)
    deadline = kernel.now + 10.0
    while SlowDeactivate.current != "a":
        assert kernel.now < deadline, "first passivation never started"
        kernel.run(until=kernel.now + 0.05)
    assert app.run_call(b, "get") == 2  # fresh activity on b mid-sweep
    kernel.run(until=kernel.now + 0.6)  # let a's passivation finish
    worker = app.components["w1"]
    assert app.trace.count("actor.passivate", actor=str(a)) == 1
    assert app.trace.count("actor.passivate", actor=str(b)) == 0
    assert b in worker._instances  # b stayed resident through the sweep
    kernel.run(until=kernel.now + 3.0)  # now b goes genuinely idle
    assert app.trace.count("actor.passivate", actor=str(b)) == 1


def test_passivation_disabled_keeps_instances_resident():
    kernel, app = make_app(seed=204)  # default: no idle timeout
    app.register_actor(Counting)
    app.add_component("w1", ("Counting",))
    app.client()
    app.settle()
    reset_counters()
    app.run_call(actor_proxy("Counting", "c"), "set", 1)
    kernel.run(until=kernel.now + 10.0)
    assert len(app.components["w1"]._instances) == 1
    assert Counting.deactivations == 0


# ---------------------------------------------------------------------------
# bounded dedup bookkeeping
# ---------------------------------------------------------------------------

def test_dedup_evidence_swept_in_step_with_broker_retention():
    kernel, app = make_app(
        seed=210,
        broker=BrokerConfig(
            produce_latency=Latency.fixed(0.001),
            consume_latency=Latency.fixed(0.0005),
            heartbeat_interval=0.3,
            session_timeout=1.0,
            watchdog_interval=0.1,
            rebalance_join_window=0.2,
            rebalance_sync_latency=Latency.around(0.05, 0.02),
            retention_seconds=5.0,
        ),
        dedup_retention_slack=1.0,
        maintenance_interval=0.2,
    )
    app.register_actor(Counting)
    app.add_component("w1", ("Counting",))
    client = app.client()
    app.settle()
    reset_counters()
    worker = app.components["w1"]
    for i in range(5):
        app.run_call(actor_proxy("Counting", f"c{i}"), "set", i)
    assert len(worker._handled) >= 5
    assert len(client._settled) >= 5
    # Past the retention horizon (+slack) the evidence is garbage-collected.
    kernel.run(until=kernel.now + 10.0)
    assert len(worker._handled) == 0
    assert len(client._settled) == 0
    assert worker._handled.swept_total >= 5


def test_retention_set_observe_sweep_and_refresh():
    rs = RetentionSet()
    assert rs.observe("a", 1.0) is False
    assert rs.observe("b", 2.0) is False
    assert rs.observe("a", 3.0) is True  # duplicate sighting refreshes "a"
    assert "a" in rs and "b" in rs and len(rs) == 2
    assert rs.sweep(2.5) == 1  # only "b" (stamp 2.0) has expired
    assert "b" not in rs and "a" in rs
    assert rs.sweep(10.0) == 1
    assert len(rs) == 0 and rs.swept_total == 2
    rs.add("c", 5.0)
    rs.discard("c")
    assert "c" not in rs


# ---------------------------------------------------------------------------
# batched state I/O
# ---------------------------------------------------------------------------

class Stateful(Actor):
    async def put(self, ctx, field, value):
        await ctx.state.set(field, value)

    async def put_many(self, ctx, updates):
        await ctx.state.set_multiple(updates)

    async def read(self, ctx, field):
        return await ctx.state.get(field)

    async def read_many(self, ctx, fields):
        return await ctx.state.get_multiple(tuple(fields))

    async def read_all(self, ctx):
        return await ctx.state.get_all()

    async def drop(self, ctx, field):
        return await ctx.state.remove(field)

    async def poke_other(self, ctx, other_type, other_id, field, value):
        ref = actor_proxy(other_type, other_id)
        await ctx.state_of(ref).set(field, value)


def stateful_app(seed=220, **overrides):
    kernel, app = make_app(seed, **overrides)
    app.register_actor(Stateful)
    app.add_component("w1", ("Stateful",))
    app.client()
    app.settle()
    return kernel, app


def test_set_multiple_costs_one_round_trip():
    kernel, app = stateful_app()
    ref = actor_proxy("Stateful", "s")
    updates = {f"f{i}": i for i in range(8)}
    app.run_call(ref, "put_many", {"warm": 0})  # place actor, warm caches
    before = app.store.operation_count
    app.run_call(ref, "put_many", updates)
    assert app.store.operation_count - before == 1  # one RTT for 8 fields
    assert app.run_call(ref, "read_all") == {"warm": 0, **updates}


def test_get_multiple_costs_at_most_one_round_trip():
    kernel, app = stateful_app(seed=221, state_cache=False)
    ref = actor_proxy("Stateful", "s")
    app.run_call(ref, "put_many", {"a": 1, "b": 2})
    before = app.store.operation_count
    assert app.run_call(ref, "read_many", ("a", "b", "missing")) == {
        "a": 1,
        "b": 2,
        "missing": None,
    }
    assert app.store.operation_count - before == 1


def test_hot_reads_served_from_write_through_cache():
    kernel, app = stateful_app(seed=222)
    ref = actor_proxy("Stateful", "s")
    app.run_call(ref, "put_many", {"a": 1, "b": 2})
    before = app.store.operation_count
    # The write-through cache knows every field just written: zero RTTs.
    assert app.run_call(ref, "read", "a") == 1
    assert app.run_call(ref, "read_many", ("a", "b")) == {"a": 1, "b": 2}
    assert app.store.operation_count == before


def test_get_all_agrees_warm_and_cold_for_none_and_removed_fields():
    # A stored None and a removed field must read identically through the
    # warm cache and straight from the store.
    expectations = {}
    for seed, state_cache in ((224, True), (225, False)):
        kernel, app = stateful_app(seed=seed, state_cache=state_cache)
        ref = actor_proxy("Stateful", "s")
        app.run_call(ref, "put", "flag", None)
        app.run_call(ref, "put", "gone", 1)
        app.run_call(ref, "drop", "gone")
        expectations[state_cache] = (
            app.run_call(ref, "read_all"),
            app.run_call(ref, "read", "flag"),
            app.run_call(ref, "read", "gone"),
        )
    assert expectations[True] == expectations[False]
    assert expectations[True][0] == {"flag": None}


def test_state_of_write_stays_coherent_with_resident_cache():
    kernel, app = stateful_app(seed=226)
    target = actor_proxy("Stateful", "target")
    peeker = actor_proxy("Stateful", "peeker")
    app.run_call(target, "put_many", {"a": 1})
    assert app.run_call(target, "read", "a") == 1  # warm cache on target
    # Another actor on the same component writes through state_of: the
    # resident instance's cache must observe it (shared cache).
    app.run_call(peeker, "poke_other", "Stateful", "target", "a", 99)
    assert app.run_call(target, "read", "a") == 99


def test_cache_dropped_on_passivation_rereads_store():
    kernel, app = make_app(
        seed=223, idle_passivation_timeout=1.0, maintenance_interval=0.2
    )
    app.register_actor(Stateful)
    app.add_component("w1", ("Stateful",))
    app.client()
    app.settle()
    ref = actor_proxy("Stateful", "s")
    app.run_call(ref, "put_many", {"a": 1})
    kernel.run(until=kernel.now + 5.0)  # passivated; cache evicted
    assert app.components["w1"]._state_caches == {}
    assert app.run_call(ref, "read", "a") == 1  # re-read from the store


# ---------------------------------------------------------------------------
# regression: stale-route retry must invalidate the resolved placement
# ---------------------------------------------------------------------------

def test_send_response_invalidates_placement_on_stale_route():
    from repro.core.envelope import Request

    kernel, app = make_app(seed=230)
    app.register_actor(Counting)
    app.add_component("w1", ("Counting",))
    app.add_component("w2", ("Counting",))
    app.settle()
    executor = app.components["w2"]
    caller_ref = actor_proxy("Counting", "caller")

    invalidated = []
    original = executor.placement.invalidate_components

    def recording(names):
        invalidated.append(set(names))
        return original(names)

    executor.placement.invalidate_components = recording

    fails = {"left": 2}
    original_send = executor.member.send

    async def flaky_send(partition, value):
        if fails["left"] > 0:
            fails["left"] -= 1
            raise StaleRouteError(partition)
        return await original_send(partition, value)

    executor.member.send = flaky_send

    # The caller's component is dead (reply_to unknown), so the response
    # must follow the caller *actor*'s placement; the first sends raise
    # StaleRouteError and each retry must re-resolve a fresh entry instead
    # of spinning on the cached dead one.
    request = Request(
        request_id="r900",
        step=0,
        actor=actor_proxy("Counting", "callee"),
        method="get",
        args=(),
        return_address="r800",
        reply_to="dead#0",
        caller_actor=caller_ref,
        caller_member="dead#0",
        expects_reply=True,
    )
    response = Response("r900", value=5)

    task = kernel.spawn(
        executor._send_response(request, response), executor.process
    )
    kernel.run_until_complete(task, timeout=60.0)
    assert fails["left"] == 0
    # Each stale send invalidated the placement entry it had resolved.
    assert len(invalidated) >= 2
    for names in invalidated:
        assert names  # never an empty invalidation
    assert app.trace.count("response.sent", request="r900") == 1


# ---------------------------------------------------------------------------
# regression: late duplicate responses never resolve a pending future
# ---------------------------------------------------------------------------

def test_late_duplicate_response_does_not_resolve_pending_future():
    kernel, app = make_app(seed=231)
    app.register_actor(Counting)
    app.add_component("w1", ("Counting",))
    app.settle()
    worker = app.components["w1"]

    # The caller already observed a synthetic cancellation for r1 ...
    worker._handle_response(Response("r1", cancelled=True))
    assert "r1" in worker._settled
    # ... then a future is (erroneously, via the race) pending under the
    # same id when the real response finally lands.
    future = kernel.create_future()
    worker._pending_calls["r1"] = future
    worker._handle_response(Response("r1", value=42))
    assert not future.done()  # the late duplicate must not settle it
    assert app.trace.count("response.duplicate", request="r1") == 1
    # A fresh id still resolves normally.
    future2 = kernel.create_future()
    worker._pending_calls["r2"] = future2
    worker._handle_response(Response("r2", value=1))
    assert future2.done() and future2.result().value == 1


def test_duplicate_response_still_releases_parked_requests():
    from repro.core.envelope import Request

    kernel, app = make_app(seed=232)
    app.register_actor(Counting)
    app.add_component("w1", ("Counting",))
    app.settle()
    worker = app.components["w1"]
    worker._handle_response(Response("r1", value=1))  # settles r1
    parked = Request(
        request_id="r5",
        step=0,
        actor=actor_proxy("Counting", "p"),
        method="get",
        args=(),
        return_address=None,
        reply_to=None,
        caller_actor=None,
        caller_member=None,
        after_callee="r1",
    )
    worker._parked.setdefault("r1", []).append(parked)
    worker._handle_response(Response("r1", value=1))  # duplicate
    assert worker._parked == {}  # happen-before release is idempotent
    kernel.run(until=kernel.now + 1.0)  # drain the released executor
