"""Exactly-once analyses and property-based tests over the semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics import Explorer, make_monitors
from repro.semantics.examples import (
    accumulator_nested,
    accumulator_tail,
    accumulator_unsafe,
    final_counter,
    latch_getset,
    nested_call_model,
    reentrancy_model,
)
from repro.semantics.lang import (
    Assign,
    BinOp,
    GetState,
    Lit,
    MethodDef,
    ModelProgram,
    Return,
    SetState,
    TailStmt,
    Var,
)
from repro.semantics.state import initial_state


def explore(example, failures, **options):
    program, init = example()
    return Explorer(
        program, max_failures=failures, monitors=make_monitors(), **options
    ).explore(init)


# ---------------------------------------------------------------------------
# the Section 2.3 claims, model-checked
# ---------------------------------------------------------------------------

def test_tail_call_increment_exactly_once_without_failures():
    result = explore(accumulator_tail, failures=0)
    assert {final_counter(s) for s in result.quiescent} == {1}


def test_tail_call_increment_exactly_once_under_failures():
    """The headline claim: across EVERY interleaving with up to two
    injected failures, the counter ends exactly one higher."""
    result = explore(accumulator_tail, failures=2)
    assert not result.truncated
    assert {final_counter(s) for s in result.quiescent} == {1}


def test_unsafe_increment_has_double_increment_witness():
    result = explore(accumulator_unsafe, failures=1)
    counters = {final_counter(s) for s in result.quiescent}
    assert 2 in counters  # the paper's predicted corruption
    assert 1 in counters  # and the lucky path


def test_nested_call_increment_has_double_increment_witness():
    result = explore(accumulator_nested, failures=1)
    counters = {final_counter(s) for s in result.quiescent}
    assert 2 in counters


def test_tail_call_witness_trace_is_reportable():
    result = explore(accumulator_unsafe, failures=1)
    witness = result.find_quiescent(lambda s: final_counter(s) == 2)
    assert witness is not None
    _state, trace = witness
    rules = [rule for rule, _ in trace]
    assert "failure" in rules  # corruption requires a failure


def test_getset_result_always_swaps():
    program, init = latch_getset()
    result = Explorer(
        program, max_failures=2, monitors=make_monitors()
    ).explore(init)
    for state in result.quiescent:
        assert dict(state.store) == {"latch": 42}
        # The response may be the old value from any attempt; with getset
        # the first write persists, so retries observe 42.
        response = state.response(0)
        assert response is not None
        assert response.value in (7, 42)


def test_nested_model_completes_under_failures():
    result = explore(nested_call_model, failures=2)
    for state in result.quiescent:
        response = state.response(0)
        assert response is not None
        assert response.value == 11  # v+1 regardless of retries


def test_reentrancy_no_deadlock_and_correct_result():
    result = explore(reentrancy_model, failures=1)
    assert result.quiescent  # no global deadlock
    for state in result.quiescent:
        response = state.response(0)
        assert response is not None
        assert response.value == 5


# ---------------------------------------------------------------------------
# property-based: random linear tail-call chains are exactly-once
# ---------------------------------------------------------------------------

@st.composite
def chain_programs(draw):
    """A chain of 2-4 methods, each either stepping or tail-calling the
    next, ending in a state write -- generalizing the accumulator."""
    length = draw(st.integers(min_value=2, max_value=4))
    increments = [draw(st.integers(min_value=1, max_value=3))
                  for _ in range(length)]
    program = ModelProgram()
    for index in range(length):
        is_last = index == length - 1
        body = [
            Assign("value", GetState()),
            SetState(BinOp("+", Var("value"), Lit(increments[index]))),
        ]
        if is_last:
            body.append(Return(Lit("done")))
        else:
            body.append(TailStmt(Lit("actor"), f"m{index + 1}", Lit(None)))
        program.define(MethodDef(f"m{index}", "arg", tuple(body)))
    return program, increments


@given(chain_programs(), st.integers(min_value=0, max_value=1))
@settings(max_examples=25, deadline=None)
def test_tail_chain_total_is_bounded(chain, failures):
    """Along a tail chain, each link writes its state exactly once per
    execution; a failure may re-run the *current* link only (its write is
    then repeated), never a completed one. Hence the final counter is the
    exact sum when no failure lands, and at most sum + max(increment) extra
    per failure when one does."""
    program, increments = chain
    init = initial_state("actor", "m0", None, {"actor": 0})
    result = Explorer(
        program, max_failures=failures, monitors=make_monitors(),
        max_states=100_000,
    ).explore(init)
    assert not result.truncated
    exact = sum(increments)
    for state in result.quiescent:
        final = dict(state.store)["actor"]
        if failures == 0:
            assert final == exact
        else:
            # One failure re-runs at most one link's read-modify-write.
            assert exact <= final <= exact + max(increments)


@given(st.integers(min_value=0, max_value=2))
@settings(max_examples=3, deadline=None)
def test_theorems_hold_for_any_failure_budget(failures):
    result = explore(accumulator_tail, failures=failures)
    assert result.quiescent
