"""Core runtime basics: calls, tells, state, errors, activation."""

import pytest

from repro.core import ActorMethodError, KarError, actor_proxy
from repro.core.refs import ActorRef

from helpers import Echo, Latch, PersistentLatch, run, two_component_app


def test_call_returns_value():
    kernel, app = two_component_app(seed=1)
    ref = actor_proxy("Latch", "a")
    app.run_call(ref, "set", 7)
    assert app.run_call(ref, "get") == 7
    kernel.check_no_crashes()


def test_proxy_identity():
    assert actor_proxy("Latch", "x") == actor_proxy("Latch", "x")
    assert actor_proxy("Latch", "x") != actor_proxy("Latch", "y")
    assert str(actor_proxy("Latch", "x")) == "Latch[x]"


def test_distinct_instances_have_distinct_state():
    kernel, app = two_component_app(seed=2)
    app.run_call(actor_proxy("Latch", "a"), "set", 1)
    app.run_call(actor_proxy("Latch", "b"), "set", 2)
    assert app.run_call(actor_proxy("Latch", "a"), "get") == 1
    assert app.run_call(actor_proxy("Latch", "b"), "get") == 2


def test_activate_runs_once_per_instantiation():
    kernel, app = two_component_app(seed=3)
    ref = actor_proxy("Latch", "fresh")
    assert app.run_call(ref, "get") == 0  # activate initialized v
    app.run_call(ref, "set", 9)
    assert app.run_call(ref, "get") == 9
    assert app.trace.count("actor.activate", actor="Latch[fresh]") == 1


def test_exception_propagates_to_caller():
    kernel, app = two_component_app(seed=4, actor_classes=(Echo,))
    ref = actor_proxy("Echo", "e")
    with pytest.raises(ActorMethodError, match="boom"):
        app.run_call(ref, "fail_with", "boom")


def test_exception_does_not_poison_actor():
    kernel, app = two_component_app(seed=5, actor_classes=(Echo,))
    ref = actor_proxy("Echo", "e")
    with pytest.raises(ActorMethodError):
        app.run_call(ref, "fail_with", "boom")
    assert app.run_call(ref, "echo", "still alive") == "still alive"


def test_unknown_method_is_an_error_response():
    kernel, app = two_component_app(seed=6, actor_classes=(Echo,))
    with pytest.raises(ActorMethodError, match="no invocable method"):
        app.run_call(actor_proxy("Echo", "e"), "nope")


def test_unknown_actor_type_rejected_at_registration():
    kernel, app = two_component_app(seed=7)
    with pytest.raises(ValueError):
        app.add_component("bad", ("Unknown",))


def test_private_methods_not_invocable():
    kernel, app = two_component_app(seed=8, actor_classes=(Echo,))
    with pytest.raises(ActorMethodError):
        app.run_call(actor_proxy("Echo", "e"), "_execute")
    with pytest.raises(ActorMethodError):
        app.run_call(actor_proxy("Echo", "e"), "activate")


def test_tell_is_fire_and_forget():
    kernel, app = two_component_app(seed=9)
    ref = actor_proxy("Latch", "t")
    client = app.client()
    run(kernel, client.invoke(None, ref, "set", (5,), False), client.process)
    kernel.run(until=kernel.now + 2.0)
    assert app.run_call(ref, "get") == 5


def test_tell_exception_discarded():
    kernel, app = two_component_app(seed=10, actor_classes=(Echo,))
    client = app.client()
    ref = actor_proxy("Echo", "e")
    run(kernel, client.invoke(None, ref, "fail_with", ("quiet",), False),
        client.process)
    kernel.run(until=kernel.now + 2.0)
    # The error shows up in the trace but nothing crashes.
    assert app.trace.count("invoke.error") == 1
    kernel.check_no_crashes()


def test_persistent_state_survives_failure():
    kernel, app = two_component_app(seed=11, actor_classes=(PersistentLatch,))
    ref = actor_proxy("PersistentLatch", "p")
    app.run_call(ref, "set", 123)
    host = next(
        name
        for name, comp in app.components.items()
        if any(r == ref for r in comp._instances)
    )
    app.kill_component(host)
    kernel.run(until=kernel.now + 10.0)  # detection + recovery
    assert app.run_call(ref, "get", timeout=60.0) == 123


def test_volatile_state_lost_on_failure():
    kernel, app = two_component_app(seed=12)
    ref = actor_proxy("Latch", "v")
    app.run_call(ref, "set", 99)
    host = next(
        name
        for name, comp in app.components.items()
        if any(r == ref for r in comp._instances)
    )
    app.kill_component(host)
    kernel.run(until=kernel.now + 10.0)
    assert app.run_call(ref, "get", timeout=60.0) == 0  # re-activated fresh


def test_actor_ref_ordering_and_hashing():
    refs = {ActorRef("A", "1"), ActorRef("A", "1"), ActorRef("B", "1")}
    assert len(refs) == 2
    assert ActorRef("A", "1") < ActorRef("B", "1")
    assert ActorRef("A", "1").stable_hash() == ActorRef("A", "1").stable_hash()


def test_duplicate_actor_registration_rejected():
    kernel, app = two_component_app(seed=13)

    class Latch2(Latch):
        pass

    with pytest.raises(KarError):
        app.register_actor(Latch2, name="Latch")


def test_component_restart_requires_death():
    kernel, app = two_component_app(seed=14)
    with pytest.raises(ValueError):
        app.restart_component("w1")
    app.kill_component("w1")
    restarted = app.restart_component("w1")
    assert restarted.member_id == "w1#1"
    kernel.run(until=kernel.now + 15.0)
    assert "w1#1" in app.coordinator.members
