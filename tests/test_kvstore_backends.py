"""Backend-conformance suite: the store/broker persistence contract.

Every test in this file runs identically against the in-memory backends and
the durable ones (SQLite store, file-journal broker log): CAS semantics,
batched hash writes, batched produce with per-entry guards, fencing,
retention expiry, offset-indexed replay, and journal compaction. The
durable backends additionally prove the *cold* half of the contract --
closing every handle and reconstructing from files yields the same state.
"""

from __future__ import annotations

import pytest

from repro.kvstore import KVStore, MemoryStoreBackend, SqliteStoreBackend
from repro.kvstore.errors import FencedClientError
from repro.mq import (
    Broker,
    BrokerConfig,
    FencedMemberError,
    FileJournalLog,
    MemoryBrokerLog,
    MQError,
    Record,
)
from repro.sim import Kernel, Latency

from helpers import run

STORE_BACKENDS = ["memory", "sqlite"]
BROKER_LOGS = ["memory", "journal"]


# ---------------------------------------------------------------------------
# store backend harness
# ---------------------------------------------------------------------------
class StoreHarness:
    """Build, and later cold-reopen, one store backend flavor."""

    def __init__(self, flavor: str, tmp_path):
        self.flavor = flavor
        self.tmp_path = tmp_path

    def open(self):
        if self.flavor == "memory":
            self.backend = MemoryStoreBackend()
        else:
            self.backend = SqliteStoreBackend(
                str(self.tmp_path / "conformance.store.sqlite3")
            )
        return self.backend

    def reopen(self):
        """Simulate a restart: durable flavors drop every handle and
        reconstruct from files; memory survives as the same object."""
        if self.flavor == "memory":
            return self.backend
        self.backend.close()
        return self.open()

    def cleanup(self):
        if self.flavor != "memory" and getattr(self, "backend", None):
            self.backend.close()


@pytest.fixture(params=STORE_BACKENDS)
def store_harness(request, tmp_path):
    harness = StoreHarness(request.param, tmp_path)
    yield harness
    harness.cleanup()


def make_store(backend) -> tuple[Kernel, KVStore]:
    kernel = Kernel(seed=1)
    store = KVStore(kernel, Latency.fixed(0.0001), backend=backend)
    return kernel, store


def test_flat_keys_contract(store_harness):
    kernel, store = make_store(store_harness.open())
    client = store.client("c1")

    async def scenario():
        await client.set("k1", {"nested": [1, 2, {"deep": "x"}]})
        await client.set("k2", ("tuple", 7))
        assert await client.get("k1") == {"nested": [1, 2, {"deep": "x"}]}
        assert await client.get("k2") == ("tuple", 7)
        assert await client.get("missing") is None
        assert await client.delete("k1") is True
        assert await client.delete("k1") is False
        return await client.get("k1")

    assert run(kernel, scenario()) is None
    assert store.keys() == ["k2"]


def test_cas_contract(store_harness):
    kernel, store = make_store(store_harness.open())
    client = store.client("c1")

    async def scenario():
        # CAS from absent (expected None) wins exactly once.
        assert await client.cas("p", None, "w1") is True
        assert await client.cas("p", None, "w2") is False
        # CAS with the current value succeeds; stale expectations fail.
        assert await client.cas("p", "w1", "w3") is True
        assert await client.cas("p", "w1", "w4") is False
        return await client.get("p")

    assert run(kernel, scenario()) == "w3"


def test_cas_compares_by_value_across_reopen(store_harness):
    kernel, store = make_store(store_harness.open())
    client = store.client("c1")
    run(kernel, client.set("p", {"component": "w1", "epoch": 3}))

    backend = store_harness.reopen()
    kernel2, store2 = make_store(backend)
    client2 = store2.client("c2")

    async def scenario():
        # The expected value is a fresh, structurally equal object: CAS
        # must compare decoded values, not object identity or encoding.
        return await client2.cas(
            "p", {"component": "w1", "epoch": 3}, {"component": "w2", "epoch": 4}
        )

    assert run(kernel2, scenario()) is True
    assert run(kernel2, client2.get("p")) == {"component": "w2", "epoch": 4}


def test_hash_contract(store_harness):
    kernel, store = make_store(store_harness.open())
    client = store.client("c1")

    async def scenario():
        await client.hset("h", "a", 1)
        await client.hset_many("h", {"b": 2, "c": {"x": (1, 2)}})
        assert await client.hget("h", "a") == 1
        assert await client.hget("h", "missing") is None
        many = await client.hget_many("h", ("a", "b", "zzz"))
        assert many == {"a": 1, "b": 2, "zzz": None}
        assert await client.hgetall("h") == {"a": 1, "b": 2, "c": {"x": (1, 2)}}
        assert await client.hdel("h", "a") is True
        assert await client.hdel("h", "a") is False
        assert await client.delete_hash("h") is True
        assert await client.delete_hash("h") is False
        return await client.hgetall("h")

    assert run(kernel, scenario()) == {}


def test_keys_prefix_contract(store_harness):
    kernel, store = make_store(store_harness.open())
    client = store.client("c1")

    async def scenario():
        for key in ("placement:A:1", "placement:A:2", "state:A:1"):
            await client.set(key, key)

    run(kernel, scenario())
    assert store.keys("placement:") == ["placement:A:1", "placement:A:2"]
    assert store.keys() == ["placement:A:1", "placement:A:2", "state:A:1"]


def test_fencing_contract(store_harness):
    kernel, store = make_store(store_harness.open())
    client = store.client("c1")
    run(kernel, client.set("k", 1))
    store.fence("c1")
    with pytest.raises(FencedClientError):
        run(kernel, client.set("k", 2))
    with pytest.raises(FencedClientError):
        run(kernel, client.get("k"))
    # Fencing is service state, not backend state: another identity reads
    # the value the fenced client managed to write before the fence.
    assert run(kernel, store.client("c2").get("k")) == 1


def test_store_survives_reopen(store_harness):
    kernel, store = make_store(store_harness.open())
    client = store.client("c1")

    async def scenario():
        await client.set("placement:A:1", "w1")
        await client.hset_many("state:A:1", {"balance": 42, "log": [1, 2]})

    run(kernel, scenario())

    backend = store_harness.reopen()
    kernel2, store2 = make_store(backend)
    client2 = store2.client("c9")

    async def verify():
        assert await client2.get("placement:A:1") == "w1"
        assert await client2.hgetall("state:A:1") == {
            "balance": 42,
            "log": [1, 2],
        }

    run(kernel2, verify())


# ---------------------------------------------------------------------------
# broker log harness
# ---------------------------------------------------------------------------
class LogHarness:
    """Build, and later cold-reopen, one broker log flavor."""

    def __init__(self, flavor: str, tmp_path):
        self.flavor = flavor
        self.tmp_path = tmp_path

    def open(self, **journal_knobs):
        if self.flavor == "memory":
            self.log = MemoryBrokerLog()
        else:
            self.log = FileJournalLog(
                str(self.tmp_path / "conformance.journal"), **journal_knobs
            )
            self._journal_knobs = journal_knobs
        return self.log

    def reopen(self):
        if self.flavor == "memory":
            return self.log
        self.log.close()
        return self.open(**self._journal_knobs)

    def cleanup(self):
        if self.flavor != "memory" and getattr(self, "log", None):
            self.log.close()


@pytest.fixture(params=BROKER_LOGS)
def log_harness(request, tmp_path):
    harness = LogHarness(request.param, tmp_path)
    yield harness
    harness.cleanup()


def make_broker(log, **config) -> tuple[Kernel, Broker]:
    kernel = Kernel(seed=2)
    broker = Broker(
        kernel,
        BrokerConfig(
            produce_latency=Latency.fixed(0.001),
            consume_latency=Latency.fixed(0.0005),
            **config,
        ),
        log=log,
    )
    return kernel, broker


def test_produce_fetch_and_batch_guards(log_harness):
    kernel, broker = make_broker(log_harness.open())

    async def scenario():
        first = await broker.produce("t", "p1", "a", "prod")
        assert (first.partition, first.offset) == ("p1", 0)
        outcomes = await broker.produce_batch(
            "t",
            [("p1", "b"), ("p2", "c"), ("p3", "d")],
            "prod",
            guards={"p3": lambda: False},
        )
        assert isinstance(outcomes[0], Record) and outcomes[0].offset == 1
        assert isinstance(outcomes[1], Record) and outcomes[1].offset == 0
        assert isinstance(outcomes[2], MQError)
        fetched = await broker.fetch("t", "p1", 0, "cons")
        assert [record.value for record in fetched] == ["a", "b"]

    run(kernel, scenario())
    # The whole batch was one produce round trip, and the guarded entry
    # appended nothing anywhere (including the durable log).
    assert broker.produce_count == 2
    assert broker.produce_record_count == 3
    assert broker.log.retained_records() == 3


def test_fenced_producer_rejects_whole_batch(log_harness):
    kernel, broker = make_broker(log_harness.open())
    broker.fence("prod")

    async def scenario():
        with pytest.raises(FencedMemberError):
            await broker.produce("t", "p1", "a", "prod")
        with pytest.raises(FencedMemberError):
            await broker.produce_batch("t", [("p1", "a")], "prod")

    run(kernel, scenario())
    assert broker.produce_record_count == 0
    assert broker.log.retained_records() == 0


def test_retention_expiry_compacts_log(log_harness):
    kernel, broker = make_broker(log_harness.open(), retention_seconds=10.0)

    async def produce_round(tag):
        await broker.produce_batch(
            "t", [("p1", f"{tag}-1"), ("p1", f"{tag}-2")], "prod"
        )

    run(kernel, produce_round("old"))
    kernel.run(until=kernel.now + 60.0)
    run(kernel, produce_round("new"))

    partition = broker.topic("t").partition("p1")
    assert partition.expire(kernel.now) == 2
    assert partition.first_retained_offset == 2
    assert [record.value for record in partition.unexpired(kernel.now)] == [
        "new-1",
        "new-2",
    ]
    # The log mirrors the trim: replay yields only retained records with
    # their original offsets.
    ((topic, part, first, next_offset, records),) = list(broker.log.replay())
    assert (topic, part, first, next_offset) == ("t", "p1", 2, 4)
    assert [record.offset for record in records] == [2, 3]


def test_restore_from_log_rebuilds_partitions(log_harness):
    kernel, broker = make_broker(log_harness.open(), retention_seconds=10.0)

    async def scenario():
        await broker.produce_batch(
            "t", [("p1", {"req": ("x", 1)}), ("p2", "solo")], "prod"
        )
        await broker.produce("t", "p1", "later", "prod")

    run(kernel, scenario())
    expected = {
        name: list(partition.unexpired(kernel.now))
        for name, partition in broker.topic("t").partitions.items()
    }

    log = log_harness.reopen()
    kernel2 = Kernel(seed=3)
    broker2 = Broker(kernel2, broker.config, log=log)
    restored = broker2.restore_from_log()

    assert restored == 3
    topic = broker2.topics["t"]
    assert set(topic.partitions) == {"p1", "p2"}
    for name, records in expected.items():
        partition = topic.partition(name)
        assert partition.unexpired(kernel2.now) == records
        assert partition.end_offset == records[-1].offset + 1


def test_drop_partition_erased_from_log(log_harness):
    kernel, broker = make_broker(log_harness.open())
    run(kernel, broker.produce("t", "dead", "x", "prod"))
    run(kernel, broker.produce("t", "live", "y", "prod"))
    broker.topic("t").drop_partition("dead")

    log = log_harness.reopen()
    kernel2 = Kernel(seed=4)
    broker2 = Broker(kernel2, broker.config, log=log)
    broker2.restore_from_log()
    assert set(broker2.topic("t").partitions) == {"live"}


def test_meta_survives_reopen(log_harness):
    log_harness.open()
    log_harness.log.set_meta("group:app:generation", 7)
    log_harness.log.set_meta("app:app:epoch:w1", 3)
    log = log_harness.reopen()
    assert log.get_meta("group:app:generation") == 7
    assert log.meta_items()["app:app:epoch:w1"] == 3
    assert log.get_meta("missing") is None


def test_replay_onto_younger_clock_keeps_append_order(log_harness):
    """A new process replays journal timestamps from a clock that was ahead
    of its own; appends after the replay must not break the per-partition
    append-order-implies-timestamp-order invariant that the reconciliation
    catalog's k-way merge relies on."""
    kernel, broker = make_broker(log_harness.open())
    kernel.run(until=50.0)  # the first boot's clock is well ahead
    run(kernel, broker.produce("t", "p1", "old", "prod"))

    log = log_harness.reopen()
    kernel2 = Kernel(seed=6)  # fresh clock starting at 0.0
    broker2 = Broker(kernel2, broker.config, log=log)
    broker2.restore_from_log()
    run(kernel2, broker2.produce("t", "p1", "new", "prod"))
    run(kernel2, broker2.produce("t", "p2", "other", "prod"))

    records = broker2.topic("t").partition("p1").unexpired(kernel2.now)
    timestamps = [record.timestamp for record in records]
    assert timestamps == sorted(timestamps)
    snapshot = broker2.topic("t").snapshot_unexpired(kernel2.now)
    keys = [(r.timestamp, r.partition, r.offset) for r in snapshot]
    assert keys == sorted(keys)
    assert [r.value for r in snapshot if r.partition == "p1"] == ["old", "new"]


def test_journal_rewrite_shrinks_file(tmp_path):
    """Retention-driven compaction rewrites the journal file in place."""
    harness = LogHarness("journal", tmp_path)
    kernel, broker = make_broker(
        harness.open(compact_min_records=8, compact_ratio=0.5),
        retention_seconds=5.0,
    )

    async def burst(tag):
        await broker.produce_batch(
            "t", [("p1", f"{tag}-{i}") for i in range(10)], "prod"
        )

    run(kernel, burst("old"))
    kernel.run(until=kernel.now + 60.0)
    run(kernel, burst("new"))
    size_before = (tmp_path / "conformance.journal").stat().st_size
    broker.topic("t").partition("p1").expire(kernel.now)
    assert broker.log.rewrites == 1
    size_after = (tmp_path / "conformance.journal").stat().st_size
    assert size_after < size_before

    # The rewritten journal still replays to the exact retained image.
    log = harness.reopen()
    kernel2 = Kernel(seed=5)
    broker2 = Broker(kernel2, broker.config, log=log)
    assert broker2.restore_from_log() == 10
    partition = broker2.topic("t").partition("p1")
    assert partition.first_retained_offset == 10
    assert partition.end_offset == 20
    harness.cleanup()


def test_journal_replay_tolerates_torn_final_line(tmp_path):
    """A crash mid-write leaves a partial trailing line; replay truncates
    it (the record was never acknowledged) instead of refusing to boot."""
    harness = LogHarness("journal", tmp_path)
    kernel, broker = make_broker(harness.open())
    run(kernel, broker.produce("t", "p1", "acked", "prod"))
    harness.log.close()
    path = tmp_path / "conformance.journal"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"k":"r","t":"t","p":"p1","o":1,"ts":9.9,"v":"torn')

    log = harness.open()
    kernel2 = Kernel(seed=7)
    broker2 = Broker(kernel2, broker.config, log=log)
    assert broker2.restore_from_log() == 1  # the acked record survives
    # The torn bytes were truncated away: new appends produce a journal
    # that replays cleanly again.
    run(kernel2, broker2.produce("t", "p1", "after", "prod"))
    log2 = harness.reopen()
    kernel3 = Kernel(seed=8)
    broker3 = Broker(kernel3, broker.config, log=log2)
    assert broker3.restore_from_log() == 2
    values = [
        r.value for r in broker3.topic("t").partition("p1").unexpired(0.0)
    ]
    assert values == ["acked", "after"]
    harness.cleanup()


def test_journal_refuses_mid_file_corruption(tmp_path):
    harness = LogHarness("journal", tmp_path)
    kernel, broker = make_broker(harness.open(codec="json"))
    run(kernel, broker.produce("t", "p1", "first", "prod"))
    harness.log.close()
    path = tmp_path / "conformance.journal"
    text = path.read_text()
    path.write_text('{"k":"r","t":"t","p":"p1","o":0,"ts":0.1,"v":"tor\n' + text)
    with pytest.raises(ValueError, match="corrupt journal line"):
        harness.open(codec="json")


def test_binary_journal_refuses_mid_file_corruption(tmp_path):
    """A damaged frame with intact frames after it is corruption, not a
    torn tail -- replay must refuse rather than silently drop records."""
    harness = LogHarness("journal", tmp_path)
    kernel, broker = make_broker(harness.open())
    run(kernel, broker.produce("t", "p1", "first", "prod"))
    run(kernel, broker.produce("t", "p1", "second", "prod"))
    harness.log.close()
    path = tmp_path / "conformance.journal"
    data = bytearray(path.read_bytes())
    data[8] = 0xFF  # first frame's leading opcode (after header + length)
    path.write_bytes(bytes(data))
    with pytest.raises(ValueError, match="corrupt journal frame"):
        harness.open()


def test_binary_journal_tolerates_torn_final_frame(tmp_path):
    """A partial trailing frame (crash mid-append) truncates away."""
    harness = LogHarness("journal", tmp_path)
    kernel, broker = make_broker(harness.open())
    run(kernel, broker.produce("t", "p1", "acked", "prod"))
    harness.log.close()
    path = tmp_path / "conformance.journal"
    data = path.read_bytes()
    with open(path, "ab") as handle:
        handle.write(data[4:25])  # replay a fragment of the first frame
    log = harness.open()
    kernel2 = Kernel(seed=7)
    broker2 = Broker(kernel2, broker.config, log=log)
    assert broker2.restore_from_log() == 1
    run(kernel2, broker2.produce("t", "p1", "after", "prod"))
    log2 = harness.reopen()
    kernel3 = Kernel(seed=8)
    broker3 = Broker(kernel3, broker.config, log=log2)
    assert broker3.restore_from_log() == 2
    values = [
        r.value for r in broker3.topic("t").partition("p1").unexpired(0.0)
    ]
    assert values == ["acked", "after"]
    harness.cleanup()


def test_journal_codec_migration_round_trip(tmp_path):
    """A journal written under one codec opens under the other: the
    versioned reader replays it, then rewrites it into the configured
    format (the pre-binary migration path)."""
    harness = LogHarness("journal", tmp_path)
    kernel, broker = make_broker(harness.open(codec="json"))
    run(kernel, broker.produce("t", "p1", {"payload": (1, 2)}, "prod"))
    run(kernel, broker.produce("t", "p2", "other", "prod"))
    harness.log.close()
    path = tmp_path / "conformance.journal"
    assert path.read_bytes()[0:1] == b"{"  # legacy JSONL on disk

    log = harness.open(codec="binary")
    assert log.migrations == 1
    assert path.read_bytes()[:3] == b"\xabKR"  # rewritten as binary
    kernel2 = Kernel(seed=7)
    broker2 = Broker(kernel2, broker.config, log=log)
    assert broker2.restore_from_log() == 2
    records = broker2.topic("t").partition("p1").unexpired(0.0)
    assert [r.value for r in records] == [{"payload": (1, 2)}]

    # And back: binary journals migrate to JSONL when configured.
    harness.log.close()
    log = harness.open(codec="json")
    assert log.migrations == 1
    assert path.read_bytes()[0:1] == b"{"
    kernel3 = Kernel(seed=8)
    broker3 = Broker(kernel3, broker.config, log=log)
    assert broker3.restore_from_log() == 2
    harness.cleanup()


def test_unencodable_payload_fails_cleanly(tmp_path):
    """A CodecError on a durable log must leave broker and journal both
    without the record (no divergence, no phantom in-memory message)."""
    harness = LogHarness("journal", tmp_path)
    kernel, broker = make_broker(harness.open())
    run(kernel, broker.produce("t", "p1", "good", "prod"))

    from repro.persist.codec import CodecError

    class Unpicklable:
        def __reduce__(self):
            raise TypeError("nope")

    with pytest.raises(CodecError):
        run(kernel, broker.produce("t", "p1", Unpicklable(), "prod"))
    partition = broker.topic("t").partition("p1")
    assert [r.value for r in partition.unexpired(kernel.now)] == ["good"]
    assert partition.end_offset == 1
    assert broker.produce_record_count == 1
    # A later good append reuses the rolled-back offset and replays fine.
    run(kernel, broker.produce("t", "p1", "next", "prod"))
    log = harness.reopen()
    kernel2 = Kernel(seed=9)
    broker2 = Broker(kernel2, broker.config, log=log)
    assert broker2.restore_from_log() == 2
    harness.cleanup()
