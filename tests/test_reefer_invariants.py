"""Reefer under load and failures: the Section 6.1 invariants."""

import pytest

from repro.core import KarConfig
from repro.reefer import ReeferApplication, ReeferConfig, check_invariants
from repro.sim import Kernel


def build(seed, order_rate=1.0, anomaly_rate=0.05, **reefer_overrides):
    kernel = Kernel(seed=seed)
    reefer = ReeferApplication(
        kernel,
        KarConfig.fast_test(),
        ReeferConfig(order_rate=order_rate, anomaly_rate=anomaly_rate,
                     **reefer_overrides),
    )
    return kernel, reefer.start()


def test_failure_free_run_no_violations():
    kernel, reefer = build(seed=31)
    reefer.run_for(60.0)
    reefer.drain(max_wait=120.0)
    report = check_invariants(reefer)
    assert report.ok(), report.violations
    assert report.details["orders_submitted"] > 20
    assert report.details["orders_in_flight"] == 0


def test_failure_free_latency_is_small():
    kernel, reefer = build(seed=32, anomaly_rate=0.0)
    reefer.run_for(40.0)
    reefer.drain(max_wait=120.0)
    summary = reefer.metrics.summary()
    assert summary["median_latency"] < 0.5


def test_single_victim_failure_no_lost_orders():
    kernel, reefer = build(seed=33)
    reefer.run_for(20.0)
    reefer.kill("actors-0")
    reefer.run_for(6.0)
    reefer.restart("actors-0")
    reefer.run_for(30.0)
    reefer.drain(max_wait=300.0)
    report = check_invariants(reefer)
    assert report.ok(), report.violations


def test_singleton_failure_no_lost_orders():
    kernel, reefer = build(seed=34)
    reefer.run_for(15.0)
    reefer.kill("singletons-0")
    reefer.run_for(6.0)
    reefer.restart("singletons-0")
    reefer.run_for(30.0)
    reefer.drain(max_wait=300.0)
    report = check_invariants(reefer)
    assert report.ok(), report.violations


def test_node_failure_kills_two_components():
    """A victim node hosts one replica of each kind (Figure 5b): killing
    both together must still recover."""
    kernel, reefer = build(seed=35)
    reefer.run_for(15.0)
    reefer.kill("actors-0")
    reefer.kill("singletons-0")
    reefer.run_for(8.0)
    reefer.restart("actors-0")
    reefer.restart("singletons-0")
    reefer.run_for(40.0)
    reefer.drain(max_wait=300.0)
    report = check_invariants(reefer)
    assert report.ok(), report.violations


def test_repeated_failures_no_lost_orders():
    kernel, reefer = build(seed=36, order_rate=0.6)
    victims = ["actors-0", "singletons-1", "actors-1"]
    reefer.run_for(10.0)
    for victim in victims:
        reefer.kill(victim)
        reefer.run_for(5.0)
        reefer.restart(victim)
        reefer.run_for(12.0)
    reefer.drain(max_wait=400.0)
    report = check_invariants(reefer)
    assert report.ok(), report.violations


def test_order_latency_spikes_around_failure():
    kernel, reefer = build(seed=37, anomaly_rate=0.0)
    reefer.run_for(20.0)
    kill_time = kernel.now
    reefer.kill("singletons-0")
    reefer.run_for(8.0)
    reefer.restart("singletons-0")
    reefer.run_for(20.0)
    reefer.drain(max_wait=300.0)
    spike = reefer.metrics.max_latency_in_window(kill_time, kill_time + 10.0)
    baseline = reefer.metrics.max_latency_in_window(0.0, kill_time - 1.0)
    assert spike is not None and baseline is not None
    assert spike > baseline  # the Figure 7b signal


def test_anomalies_do_not_break_conservation():
    kernel, reefer = build(seed=38, anomaly_rate=0.5)
    reefer.run_for(60.0)
    reefer.drain(max_wait=200.0)
    report = check_invariants(reefer)
    assert report.ok(), report.violations
    assert reefer.depot_stats()["damaged"] or reefer.order_statuses()


def test_invariant_checker_detects_lost_order():
    kernel, reefer = build(seed=39, order_rate=0.0)
    reefer.metrics.order_submitted("O-GHOST")
    reefer.metrics.order_completed("O-GHOST", "booked")
    report = check_invariants(reefer)
    assert not report.ok()
    assert any("O-GHOST" in violation for violation in report.violations)
