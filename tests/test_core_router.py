"""The batched transport layer: outbox coalescing, stale re-routing,
tail-call atomicity and ordering under ``send_linger``, memoized routing
tables, and single-flight placement inside a running application."""

import pytest

from repro.core import Actor, actor_proxy
from repro.core.envelope import Response
from repro.mq import StaleRouteError

from helpers import Echo, Latch, make_app, run


class Recorder(Actor):
    """Accumulates tell payloads in arrival order."""

    async def activate(self, ctx):
        self.seen = []

    async def note(self, ctx, value):
        self.seen.append(value)

    async def dump(self, ctx):
        return list(self.seen)


class Chainer(Actor):
    async def first(self, ctx, v):
        return ctx.tail_call(None, "second", v + 1)

    async def second(self, ctx, v):
        return v * 2


def one_worker_app(seed, actor_class, **overrides):
    kernel, app = make_app(seed, **overrides)
    name = app.register_actor(actor_class)
    app.add_component("w1", (name,))
    app.client()
    app.settle()
    return kernel, app


# ---------------------------------------------------------------------------
# outbox coalescing under fan-in
# ---------------------------------------------------------------------------

def test_fan_in_coalesces_into_batched_round_trips():
    kernel, app = one_worker_app(41, Echo, send_linger=0.002)
    client = app.client()
    before = app.broker.produce_count

    async def caller(i):
        ref = actor_proxy("Echo", f"a{i}")
        return await client.invoke(None, ref, "echo", (i,), True)

    tasks = [
        kernel.spawn(caller(i), client.process, name=f"caller{i}")
        for i in range(16)
    ]
    results = kernel.run_until_complete(kernel.gather(tasks), timeout=120.0)
    assert results == list(range(16))
    round_trips = app.broker.produce_count - before
    # 16 requests + 16 responses = 32 records; far fewer round trips.
    assert round_trips < 32 / 2
    stats = app.stats("transport")
    assert stats["largest_batch"] > 1
    kernel.check_no_crashes()


def test_zero_linger_coalesces_same_turn_sends_without_delay():
    kernel, app = one_worker_app(42, Echo)  # send_linger defaults to 0.0
    client = app.client()

    async def caller(i):
        return await client.invoke(
            None, actor_proxy("Echo", f"b{i}"), "echo", (i,), True
        )

    tasks = [kernel.spawn(caller(i), client.process) for i in range(8)]
    before = app.broker.produce_count
    results = kernel.run_until_complete(kernel.gather(tasks), timeout=120.0)
    assert results == list(range(8))
    # Same-instant sends coalesce even with no linger at all.
    assert app.broker.produce_count - before < 16
    kernel.check_no_crashes()


# ---------------------------------------------------------------------------
# one stale destination inside a mixed batch
# ---------------------------------------------------------------------------

def test_stale_entry_in_mixed_batch_fails_only_itself():
    kernel, app = one_worker_app(43, Echo, send_linger=0.01)
    client = app.client()
    router = client.router
    worker_member = app.components["w1"].member_id

    # Two envelopes in one batch: a live destination and a dead one. The
    # batch must land the live entry and fail only the stale one.
    live_future = router.send_durable(worker_member, Response("nobody-1"))
    stale_future = router.send_durable("ghost#0", Response("nobody-2"))

    async def waiter():
        record = await live_future
        with pytest.raises(StaleRouteError):
            await stale_future
        return record

    record = run(kernel, waiter(), process=client.process)
    assert record.partition == worker_member
    assert router.largest_batch == 2
    ghost = app.broker.topic(app.topic_name).partition("ghost#0")
    assert len(ghost) == 0
    kernel.check_no_crashes()


def test_stale_response_is_rerouted_without_failing_the_batch():
    """End to end: a response whose resolved target died mid-linger is
    re-resolved and re-sent; concurrent traffic in the same batch lands."""
    kernel, app = make_app(44, send_linger=0.001)
    app.register_actor(Latch)
    app.add_component("w1", ("Latch",))
    app.add_component("w2", ("Latch",))
    app.client()
    app.settle()
    # Place one actor per worker, then kill w2's host mid-conversation.
    refs = [actor_proxy("Latch", f"x{i}") for i in range(12)]
    for i, ref in enumerate(refs):
        app.run_call(ref, "set", i)
    hosts = {
        name: [r for r in refs if r in app.components[name]._instances]
        for name in ("w1", "w2")
    }
    assert hosts["w1"] and hosts["w2"]
    app.kill_component("w2")
    survivor = hosts["w1"][0]
    # The surviving worker keeps answering during and after recovery.
    assert app.run_call(survivor, "get", timeout=600.0) is not None
    kernel.check_no_crashes()


# ---------------------------------------------------------------------------
# tail calls under batching
# ---------------------------------------------------------------------------

def test_tail_call_is_still_one_record_under_linger():
    kernel, app = one_worker_app(45, Chainer, send_linger=0.005)
    ref = actor_proxy("Chainer", "t")
    records_before = app.broker.produce_record_count
    assert app.run_call(ref, "first", 20) == 42
    appended = app.broker.produce_record_count - records_before
    # Exactly three records: the request, the tail successor (which
    # atomically completes `first` while issuing `second`), the response.
    assert appended == 3
    tail_ends = app.trace.where("invoke.end", outcome="tail")
    assert len(tail_ends) == 1
    kernel.check_no_crashes()


# ---------------------------------------------------------------------------
# completion-log mode is unaffected by the outbox
# ---------------------------------------------------------------------------

def test_completion_log_still_transactional_with_linger():
    kernel, app = one_worker_app(
        46, Latch, completion_log=True, send_linger=0.005
    )
    ref = actor_proxy("Latch", "x")
    app.run_call(ref, "set", 9)
    assert app.run_call(ref, "get") == 9
    member_id = app.components["w1"].member_id
    partition = app.broker.topic(app.topic_name).partition(member_id)
    local_responses = [
        record.value
        for record in partition.unexpired(kernel.now)
        if isinstance(record.value, Response)
    ]
    # Each call's completion was logged in the executing component's own
    # queue by the message-queue transaction, outbox or not.
    assert len(local_responses) == 2
    assert app.trace.where("response.sent", completion_logged=True)
    kernel.check_no_crashes()


# ---------------------------------------------------------------------------
# ordering: linger never reorders two sends to the same partition
# ---------------------------------------------------------------------------

def test_linger_preserves_same_partition_send_order():
    kernel, app = one_worker_app(47, Recorder, send_linger=0.01)
    client = app.client()
    router = client.router
    worker_member = app.components["w1"].member_id

    futures = [
        router.send_durable(worker_member, Response(f"ord-{i}"))
        for i in range(5)
    ]

    async def waiter():
        return [await future for future in futures]

    records = run(kernel, waiter(), process=client.process)
    offsets = [record.offset for record in records]
    assert offsets == sorted(offsets)  # FIFO per partition


def test_linger_preserves_tell_order_end_to_end():
    kernel, app = one_worker_app(48, Recorder, send_linger=0.002)
    client = app.client()
    ref = actor_proxy("Recorder", "r")

    async def tell(i):
        await client.invoke(None, ref, "note", (i,), False)

    tasks = [
        kernel.spawn(tell(i), client.process, name=f"tell{i}")
        for i in range(6)
    ]
    kernel.run_until_complete(kernel.gather(tasks), timeout=120.0)
    assert app.run_call(ref, "dump") == list(range(6))
    kernel.check_no_crashes()


# ---------------------------------------------------------------------------
# ordering across overflowing batches (send_batch_max)
# ---------------------------------------------------------------------------

def test_batch_overflow_drains_fifo():
    kernel, app = one_worker_app(49, Recorder, send_linger=0.01, send_batch_max=3)
    client = app.client()
    router = client.router
    worker_member = app.components["w1"].member_id
    futures = [
        router.send_durable(worker_member, Response(f"ovf-{i}"))
        for i in range(8)
    ]

    async def waiter():
        return [await future for future in futures]

    records = run(kernel, waiter(), process=client.process)
    offsets = [record.offset for record in records]
    assert offsets == sorted(offsets)
    assert router.largest_batch == 3
    assert router.batches_flushed >= 3


# ---------------------------------------------------------------------------
# memoized routing tables
# ---------------------------------------------------------------------------

def test_live_candidates_memoized_per_generation():
    kernel, app = one_worker_app(50, Echo)
    component = app.components["w1"]
    first = component.router.live_candidates("Echo")
    second = component.router.live_candidates("Echo")
    assert first is second  # memoized within a generation
    assert first == ["w1"]
    generation = app.coordinator.generation
    app.add_component("w2", ("Echo",))
    app.settle()
    assert app.coordinator.generation > generation
    refreshed = component.router.live_candidates("Echo")
    assert refreshed == ["w1", "w2"]
    assert refreshed is not first


def test_live_incarnation_memoized_and_refreshed():
    kernel, app = one_worker_app(51, Echo)
    component = app.components["w1"]
    assert component.router.live_incarnation("w1") == component.member_id
    assert component.router.live_incarnation("nope") is None
    # Same generation: served from the memoized table.
    table = component.router._incarnations
    assert table is not None
    assert component.router.live_incarnation("w1") == component.member_id
    assert component.router._incarnations is table
