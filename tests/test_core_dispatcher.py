"""Unit tests for the per-actor mailbox (locking and reentrancy rules)."""

from repro.core import ActorMailbox
from repro.core.envelope import Request
from repro.core.refs import ActorRef

REF = ActorRef("T", "x")


def request(request_id, ancestors=(), step=0, tail_lock=False):
    return Request(
        request_id=request_id,
        step=step,
        actor=REF,
        method="m",
        args=(),
        return_address=None,
        reply_to=None,
        caller_actor=None,
        caller_member=None,
        ancestors=tuple(ancestors),
        tail_lock=tail_lock,
    )


def test_idle_mailbox_admits_immediately():
    mailbox = ActorMailbox()
    assert mailbox.try_admit(request("r1"))
    assert mailbox.lock_root == "r1"


def test_second_request_queues():
    mailbox = ActorMailbox()
    assert mailbox.try_admit(request("r1"))
    assert not mailbox.try_admit(request("r2"))
    assert len(mailbox.pending) == 1


def test_reentrant_request_bypasses_queue():
    mailbox = ActorMailbox()
    assert mailbox.try_admit(request("r1"))
    # r3 is nested in r1 (through some other actor's r2).
    assert mailbox.try_admit(request("r3", ancestors=("r1", "r2")))
    assert mailbox.stack == {"r1", "r3"}


def test_unrelated_nested_request_queues():
    mailbox = ActorMailbox()
    assert mailbox.try_admit(request("r1"))
    assert not mailbox.try_admit(request("r9", ancestors=("r7", "r8")))


def test_same_id_readmitted_for_tail_to_self():
    mailbox = ActorMailbox()
    assert mailbox.try_admit(request("r1"))
    successor = mailbox.complete_frame(request("r1"), tail_to_self=True)
    assert successor is None  # lock retained
    assert mailbox.lock_root == "r1"
    assert mailbox.try_admit(request("r1", step=1, tail_lock=True))


def test_tail_to_self_blocks_queued_requests():
    mailbox = ActorMailbox()
    assert mailbox.try_admit(request("r1"))
    assert not mailbox.try_admit(request("r2"))
    mailbox.complete_frame(request("r1"), tail_to_self=True)
    # The queued r2 must not run; the lock is reserved for r1's successor.
    assert mailbox.lock_root == "r1"
    assert mailbox.try_admit(request("r1", step=1, tail_lock=True))
    successor = mailbox.complete_frame(request("r1", step=1), tail_to_self=False)
    assert successor is not None and successor.request_id == "r2"


def test_completion_releases_lock_to_next_in_order():
    mailbox = ActorMailbox()
    mailbox.try_admit(request("r1"))
    mailbox.try_admit(request("r2"))
    mailbox.try_admit(request("r3"))
    successor = mailbox.complete_frame(request("r1"), tail_to_self=False)
    assert successor.request_id == "r2"
    successor = mailbox.complete_frame(request("r2"), tail_to_self=False)
    assert successor.request_id == "r3"
    assert mailbox.complete_frame(request("r3"), tail_to_self=False) is None
    assert mailbox.idle


def test_reentrant_frame_completion_keeps_root_lock():
    mailbox = ActorMailbox()
    mailbox.try_admit(request("r1"))
    mailbox.try_admit(request("r3", ancestors=("r1",)))
    mailbox.try_admit(request("r4"))
    assert mailbox.complete_frame(
        request("r3", ancestors=("r1",)), tail_to_self=False
    ) is None
    assert mailbox.lock_root == "r1"
    successor = mailbox.complete_frame(request("r1"), tail_to_self=False)
    assert successor.request_id == "r4"


def test_idle_property():
    mailbox = ActorMailbox()
    assert mailbox.idle
    mailbox.try_admit(request("r1"))
    assert not mailbox.idle
